#!/usr/bin/env python3
"""Compare two criterion-shim JSON-lines bench artifacts.

Usage: bench_compare.py BASELINE.json CURRENT.json

Each file is the JSON-lines stream the in-tree criterion shim emits when
``AMNESIA_BENCH_JSON`` is set: one object per completed bench, with at
least ``name`` and ``median_ns_per_iter``. If a name repeats (a bench
re-run within one process), the last record wins.

Prints a per-bench delta table to stdout, appends the same markdown to
``$GITHUB_STEP_SUMMARY`` when that variable is set, and exits non-zero
if any *gated* bench regressed by more than the threshold (25 % on the
median by default, ``AMNESIA_BENCH_REGRESSION_PCT`` to tune).

A missing or empty baseline is not an error: the run establishes the
baseline and exits 0.
"""

import json
import os
import sys

# Benches whose medians gate the job. Everything else is report-only:
# small legs are noisy on shared runners, and parallel legs depend on
# runner core counts.
GATED = (
    "sql/grouped_agg/hot",
    "sql/grouped_agg/frozen",
    "sql/global_agg/frozen",
)

DEFAULT_THRESHOLD_PCT = 25.0


def load(path):
    """Parse a JSON-lines bench artifact into {name: median_ns}."""
    out = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                name = rec.get("name")
                median = rec.get("median_ns_per_iter")
                if isinstance(name, str) and isinstance(median, (int, float)):
                    out[name] = float(median)
    except OSError:
        return None
    return out


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def emit(markdown):
    print(markdown)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as fh:
            fh.write(markdown + "\n")


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} BASELINE.json CURRENT.json", file=sys.stderr)
        return 2

    baseline_path, current_path = argv[1], argv[2]
    current = load(current_path)
    if not current:
        print(f"error: no bench records in {current_path}", file=sys.stderr)
        return 2

    baseline = load(baseline_path)
    if not baseline:
        emit(
            "## Bench deltas\n\n"
            f"No baseline artifact at `{baseline_path}` — "
            f"establishing baseline from {len(current)} benches."
        )
        return 0

    threshold = float(
        os.environ.get("AMNESIA_BENCH_REGRESSION_PCT", DEFAULT_THRESHOLD_PCT)
    )

    lines = [
        "## Bench deltas\n",
        f"Gate: >{threshold:.0f}% median regression on gated benches fails the job.\n",
        "| bench | baseline | current | delta | gated |",
        "|---|---:|---:|---:|:---:|",
    ]
    failures = []
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        gated = name in GATED
        if base is None or base <= 0.0:
            delta = "new"
        else:
            pct = (cur - base) / base * 100.0
            delta = f"{pct:+.1f}%"
            if gated and pct > threshold:
                failures.append((name, base, cur, pct))
        lines.append(
            f"| {name} | {fmt_ns(base) if base else '—'} | {fmt_ns(cur)} "
            f"| {delta} | {'yes' if gated else ''} |"
        )
    for name in sorted(baseline):
        if name not in current:
            lines.append(f"| {name} | {fmt_ns(baseline[name])} | — | removed | |")

    if failures:
        lines.append("")
        for name, base, cur, pct in failures:
            lines.append(
                f"**REGRESSION** `{name}`: {fmt_ns(base)} -> {fmt_ns(cur)} "
                f"({pct:+.1f}% > +{threshold:.0f}%)"
            )
    emit("\n".join(lines))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
