//! # amnesia — a database system that forgets
//!
//! A Rust reproduction of *"A Database System with Amnesia"* (Kersten &
//! Sidirourgos, CIDR 2017): a columnar store that deliberately forgets
//! tuples to stay inside a storage budget, the amnesia policies of the
//! paper (`fifo`, `uniform`, `ante`, `rot`, `area`, and the §4.4
//! extensions), and the simulator that measures how much query precision
//! survives.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`util`] | `amnesia-util` | deterministic RNG, bitmaps, stats, ASCII charts |
//! | [`distrib`] | `amnesia-distrib` | serial/uniform/normal/zipfian generators, histograms |
//! | [`columnar`] | `amnesia-columnar` | tables, activity marking, zone maps, indexes, compression, cold storage, summaries, vacuum |
//! | [`workload`] | `amnesia-workload` | range/point/aggregate query generators, update batches |
//! | [`engine`] | `amnesia-engine` | executor, planner, joins, cost model, forget-visibility modes |
//! | [`sql`] | `amnesia-sql` | SQL lexer/parser/binder/executor over amnesiac tables |
//! | [`core`] | `amnesia-core` | policies, budgets, metrics, the simulator, experiments |
//!
//! ## Quickstart
//!
//! ```
//! use amnesia::prelude::*;
//!
//! let cfg = SimConfig::builder()
//!     .dbsize(500)
//!     .domain(50_000)
//!     .update_fraction(0.2)
//!     .batches(5)
//!     .queries_per_batch(100)
//!     .distribution(DistributionKind::zipfian_default())
//!     .policy(PolicyKind::Rot { high_water_age: 2 })
//!     .seed(1)
//!     .build()?;
//! let report = Simulator::new(cfg)?.run()?;
//! println!("precision per batch: {:?}", report.precision_series());
//! # Ok::<(), amnesia::prelude::Error>(())
//! ```

#![warn(rust_2018_idioms)]

pub use amnesia_columnar as columnar;
pub use amnesia_core as core;
pub use amnesia_distrib as distrib;
pub use amnesia_engine as engine;
pub use amnesia_sql as sql;
pub use amnesia_util as util;
pub use amnesia_workload as workload;

/// Most-used types in one import.
pub mod prelude {
    pub use amnesia_columnar::{
        Database, ForeignKey, PersistentTable, ReferentialAction, RowId, Schema, SyncPolicy, Table,
        Value,
    };
    pub use amnesia_core::budget::BudgetMode;
    pub use amnesia_core::config::SimConfig;
    pub use amnesia_core::metrics::{AmnesiaMap, SimReport};
    pub use amnesia_core::policy::{AmnesiaPolicy, PolicyContext, PolicyKind};
    pub use amnesia_core::sim::Simulator;
    pub use amnesia_core::store::{AmnesiacStore, ForgetMode};
    pub use amnesia_distrib::DistributionKind;
    pub use amnesia_util::{Bitmap, Error, Result, SimRng};
    pub use amnesia_workload::{AggKind, Query, QueryGenKind, RangePredicate};
}
