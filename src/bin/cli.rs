//! `amnesia-cli` — an interactive shell for the database with amnesia.
//!
//! ```text
//! $ cargo run --release --bin amnesia-cli
//! amnesia> \create sensors reading
//! amnesia> \load sensors zipf 5000
//! amnesia> SELECT COUNT(*), AVG(reading) FROM sensors
//! amnesia> \forget sensors rot 2000
//! amnesia> SELECT COUNT(*), AVG(reading) FROM sensors
//! amnesia> \quit
//! ```
//!
//! SQL statements run against the in-memory catalog through
//! `amnesia-sql`; `\`-commands manage tables, generate data, advance
//! epochs and — the point of the exercise — forget tuples under any of
//! the paper's amnesia policies.

use std::io::{BufRead, Write};

type CliResult<T> = std::result::Result<T, String>;

use amnesia::distrib::DistributionKind;
use amnesia::prelude::*;
use amnesia::sql::{run, QueryOutcome};

/// Interactive session state.
struct Session {
    db: Database,
    epoch: u64,
    rng: SimRng,
    domain: i64,
}

impl Session {
    fn new(seed: u64) -> Self {
        Self {
            db: Database::new(),
            epoch: 0,
            rng: SimRng::new(seed),
            domain: 100_000,
        }
    }

    /// Process one input line, returning the text to print.
    fn process(&mut self, line: &str) -> CliResult<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            return Ok(String::new());
        }
        if let Some(rest) = line.strip_prefix('\\') {
            return self.meta(rest);
        }
        match run(&self.db, line) {
            Ok(QueryOutcome::Rows(rs)) => Ok(format!("{}\n({} rows)", rs.render(), rs.rows.len())),
            Ok(QueryOutcome::Plan(plan)) => Ok(plan),
            Err(e) => Err(e.render(line)),
        }
    }

    fn meta(&mut self, cmd: &str) -> CliResult<String> {
        let parts: Vec<&str> = cmd.split_whitespace().collect();
        match parts.as_slice() {
            ["help"] | ["h"] => Ok(HELP.trim().to_string()),
            ["tables"] | ["d"] => {
                if self.db.num_tables() == 0 {
                    return Ok("no tables — \\create one".into());
                }
                let mut out = String::new();
                for id in 0..self.db.num_tables() {
                    let t = self.db.table(id);
                    let cols: Vec<&str> = t
                        .schema()
                        .columns()
                        .iter()
                        .map(|c| c.name.as_str())
                        .collect();
                    out.push_str(&format!(
                        "{} ({}) — {} active / {} physical rows\n",
                        self.db.table_name(id).unwrap_or("?"),
                        cols.join(", "),
                        t.active_rows(),
                        t.num_rows()
                    ));
                }
                Ok(out.trim_end().to_string())
            }
            ["create", name, cols @ ..] if !cols.is_empty() => {
                if self.db.table_id(name).is_some() {
                    return Err(format!("table `{name}` already exists"));
                }
                self.db.add_table(
                    *name,
                    Schema::new(cols.iter().map(|c| c.to_string()).collect()),
                );
                Ok(format!(
                    "created table {name} with {} column(s)",
                    cols.len()
                ))
            }
            ["load", table, dist, n] => {
                let id = self.table_id(table)?;
                if self.db.table(id).schema().arity() != 1 {
                    return Err("\\load needs a single-column table".into());
                }
                let n: usize = n.parse().map_err(|_| format!("bad count `{n}`"))?;
                let kind = match *dist {
                    "serial" => DistributionKind::Serial,
                    "uniform" => DistributionKind::Uniform,
                    "normal" => DistributionKind::normal_default(),
                    "zipf" | "zipfian" => DistributionKind::zipfian_default(),
                    other => return Err(format!("unknown distribution `{other}`")),
                };
                let mut d = kind.build(self.domain, self.rng.next_u64());
                let values: Vec<i64> = (0..n).map(|_| d.sample(&mut self.rng)).collect();
                self.db
                    .table_mut(id)
                    .insert_batch(&values, self.epoch)
                    .map_err(|e| e.to_string())?;
                Ok(format!(
                    "loaded {n} {dist} values into {table} at epoch {}",
                    self.epoch
                ))
            }
            ["insert", table, rows @ ..] if !rows.is_empty() => {
                let id = self.table_id(table)?;
                let arity = self.db.table(id).schema().arity();
                let mut count = 0;
                for row in rows {
                    let values: Vec<i64> = row
                        .split(',')
                        .map(|v| v.trim().parse().map_err(|_| format!("bad value `{v}`")))
                        .collect::<CliResult<_>>()?;
                    if values.len() != arity {
                        return Err(format!(
                            "row `{row}` has {} values, table has {arity} columns",
                            values.len()
                        ));
                    }
                    self.db
                        .table_mut(id)
                        .insert(&values, self.epoch)
                        .map_err(|e| e.to_string())?;
                    count += 1;
                }
                Ok(format!("inserted {count} row(s) at epoch {}", self.epoch))
            }
            ["forget", table, policy, n] => {
                let id = self.table_id(table)?;
                let n: usize = n.parse().map_err(|_| format!("bad count `{n}`"))?;
                let kind = parse_policy(policy)?;
                let mut p = kind.build();
                let victims = {
                    let ctx = PolicyContext {
                        table: self.db.table(id),
                        epoch: self.epoch,
                    };
                    p.select_victims(&ctx, n, &mut self.rng)
                };
                let forgotten = victims.len();
                for v in victims {
                    self.db
                        .table_mut(id)
                        .forget(v, self.epoch)
                        .map_err(|e| e.to_string())?;
                }
                Ok(format!(
                    "forgot {forgotten} tuple(s) from {table} under `{}` — {} remain active",
                    kind.name(),
                    self.db.table(id).active_rows()
                ))
            }
            ["epoch"] => {
                self.epoch += 1;
                Ok(format!("advanced to epoch {}", self.epoch))
            }
            ["domain", v] => {
                self.domain = v.parse().map_err(|_| format!("bad domain `{v}`"))?;
                Ok(format!("value domain set to 0..{}", self.domain))
            }
            ["quit"] | ["q"] => Err("quit".into()),
            other => Err(format!(
                "unknown command \\{} — try \\help",
                other.first().copied().unwrap_or("")
            )),
        }
    }

    fn table_id(&self, name: &str) -> CliResult<usize> {
        self.db
            .table_id(name)
            .ok_or_else(|| format!("unknown table `{name}`"))
    }
}

/// Parse a policy name into its recipe with the defaults the paper and
/// the repro experiments use.
fn parse_policy(name: &str) -> CliResult<PolicyKind> {
    Ok(match name {
        "fifo" => PolicyKind::Fifo,
        "uniform" => PolicyKind::Uniform,
        "ante" | "anterograde" => PolicyKind::Anterograde { bias: 3.0 },
        "rot" => PolicyKind::Rot { high_water_age: 2 },
        "area" => PolicyKind::Area,
        "lru" => PolicyKind::Lru,
        "overuse" => PolicyKind::Overuse,
        "ttl" => PolicyKind::Ttl { max_age: 3 },
        "pair" => PolicyKind::Pair,
        "aligned" => PolicyKind::Aligned { bins: 32 },
        "cost" => PolicyKind::CostBased {
            bins: 64,
            gamma: 1.0,
        },
        "ebbinghaus" => PolicyKind::Ebbinghaus {
            base_strength: 1.0,
            rehearsal_boost: 1.0,
        },
        "decay" => PolicyKind::Decay {
            alpha: 0.4,
            protect_age: 1,
        },
        other => return Err(format!("unknown policy `{other}` — try \\help")),
    })
}

const HELP: &str = r#"
SQL:   SELECT [cols | COUNT/SUM/AVG/MIN/MAX(col)] FROM t [JOIN u ON a = b]
       [WHERE pred [AND ...]] [GROUP BY col] [ORDER BY col [DESC]] [LIMIT n]
       EXPLAIN SELECT ...
Meta:  \create <table> <col> [col ...]   make a table
       \load <table> <dist> <n>          generate data (serial|uniform|normal|zipf)
       \insert <table> <v1,v2> [...]     insert literal rows
       \forget <table> <policy> <n>      forget n tuples (fifo|uniform|ante|rot|
                                         area|lru|overuse|ttl|pair|aligned|cost|
                                         ebbinghaus|decay)
       \epoch                            advance the logical clock
       \domain <n>                       set the \load value domain
       \tables                           list tables
       \quit                             leave
"#;

fn main() {
    let mut session = Session::new(0xC1D8_2017);
    let stdin = std::io::stdin();
    let interactive = std::env::args().all(|a| a != "--batch");
    let mut out = std::io::stdout();
    if interactive {
        println!("amnesia-cli — a database system that forgets. \\help for help.");
    }
    loop {
        if interactive {
            print!("amnesia> ");
            out.flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.process(&line) {
            Ok(text) if text.is_empty() => {}
            Ok(text) => println!("{text}"),
            Err(e) if e == "quit" => break,
            Err(e) => println!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(s: &mut Session, line: &str) -> String {
        s.process(line).unwrap_or_else(|e| panic!("`{line}`: {e}"))
    }

    #[test]
    fn create_load_query_forget_flow() {
        let mut s = Session::new(1);
        ok(&mut s, r"\create sensors reading");
        ok(&mut s, r"\load sensors uniform 500");
        let before = ok(&mut s, "SELECT COUNT(*) FROM sensors");
        assert!(before.contains("500"), "{before}");
        let msg = ok(&mut s, r"\forget sensors rot 200");
        assert!(msg.contains("300 remain active"), "{msg}");
        let after = ok(&mut s, "SELECT COUNT(*) FROM sensors");
        assert!(after.contains("300"), "{after}");
    }

    #[test]
    fn insert_literal_rows_and_join() {
        let mut s = Session::new(2);
        ok(&mut s, r"\create customers id region");
        ok(&mut s, r"\create orders customer_id amount");
        ok(&mut s, r"\insert customers 1,10 2,20");
        ok(&mut s, r"\insert orders 1,100 1,50 2,75");
        let out = ok(
            &mut s,
            "SELECT c.region, SUM(o.amount) AS total FROM customers c \
             JOIN orders o ON c.id = o.customer_id GROUP BY c.region ORDER BY total DESC",
        );
        assert!(out.contains("150"), "{out}");
        assert!(out.contains("(2 rows)"), "{out}");
    }

    #[test]
    fn every_advertised_policy_parses() {
        for name in [
            "fifo",
            "uniform",
            "ante",
            "rot",
            "area",
            "lru",
            "overuse",
            "ttl",
            "pair",
            "aligned",
            "cost",
            "ebbinghaus",
            "decay",
        ] {
            assert!(parse_policy(name).is_ok(), "{name}");
        }
        assert!(parse_policy("lethe").is_err());
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new(3);
        assert!(s.process(r"\forget nope fifo 10").is_err());
        assert!(s.process(r"\load nope uniform 10").is_err());
        assert!(s.process(r"\bogus").is_err());
        assert!(s.process("SELECT * FROM missing").is_err());
        // Session still works afterwards.
        ok(&mut s, r"\create t a");
        ok(&mut s, r"\insert t 5");
        let out = ok(&mut s, "SELECT * FROM t");
        assert!(out.contains("(1 rows)"));
    }

    #[test]
    fn meta_state_commands() {
        let mut s = Session::new(4);
        assert!(ok(&mut s, r"\epoch").contains("epoch 1"));
        assert!(ok(&mut s, r"\domain 5000").contains("5000"));
        ok(&mut s, r"\create t a");
        let tables = ok(&mut s, r"\tables");
        assert!(tables.contains("t (a)"), "{tables}");
        assert!(ok(&mut s, r"\help").contains("\\forget"));
        // Comments and blank lines are silent.
        assert_eq!(ok(&mut s, "-- nothing"), "");
        assert_eq!(ok(&mut s, "   "), "");
        // quit signals through the error channel.
        assert_eq!(s.process(r"\quit").unwrap_err(), "quit");
    }

    #[test]
    fn arity_mismatch_and_duplicates_rejected() {
        let mut s = Session::new(5);
        ok(&mut s, r"\create t a b");
        assert!(s.process(r"\insert t 1").is_err());
        assert!(s.process(r"\create t x").is_err());
        assert!(s.process(r"\load t uniform 10").is_err(), "multi-col load");
    }
}
