//! Quickstart: run the amnesia simulator end to end and read its report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 1000-tuple database under a fixed storage budget, streams ten
//! 20 %-sized update batches through it while firing the paper's range
//! queries, lets the *rot* policy forget unpopular tuples, and prints the
//! precision curve plus the retention heatmap.

use amnesia::prelude::*;
use amnesia::util::ascii;

fn main() -> Result<()> {
    let cfg = SimConfig::builder()
        .dbsize(1000)
        .domain(100_000)
        .update_fraction(0.20)
        .batches(10)
        .queries_per_batch(1000)
        .distribution(DistributionKind::zipfian_default())
        .policy(PolicyKind::Rot { high_water_age: 2 })
        .seed(0xC1D8_2017)
        .build()?;

    println!(
        "running: {} policy, {} data, dbsize={}",
        cfg.policy.name(),
        cfg.distribution.name(),
        cfg.dbsize
    );

    let report = Simulator::new(cfg)?.run()?;

    println!("\nper-batch precision (E = avg RF / avg(RF+MF)):");
    let mut table = ascii::TextTable::new(vec!["batch", "precision E", "mean PF", "missed/query"]);
    for b in &report.batches {
        table.row(vec![
            b.batch.to_string(),
            format!("{:.4}", b.e_margin),
            format!("{:.4}", b.mean_pf),
            format!("{:.1}", b.mean_mf),
        ]);
    }
    println!("{}", table.render());

    println!("retention by insertion epoch (bright = still active):");
    println!("{}", report.render_map());

    println!(
        "storage: {} tuples active of {} ever inserted ({} forgotten, ~{} KiB hot)",
        report.storage.final_active_rows,
        report.storage.total_rows_inserted,
        report.storage.rows_forgotten,
        report.storage.table_bytes / 1024,
    );
    Ok(())
}
