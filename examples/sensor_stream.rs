//! Streaming sensors: when FIFO amnesia is exactly right — and when it
//! isn't.
//!
//! ```sh
//! cargo run --release --example sensor_stream
//! ```
//!
//! Paper §3.1: "Streaming database applications are good examples for this
//! kind of amnesia, where all you can see is what's in the stream buffer",
//! and §4.2: "If the user is mostly interested in the recently inserted
//! data then a FIFO style amnesia suffices."
//!
//! A sensor emits monotonically drifting readings (serial timestamps ×
//! drifting values). Two dashboards query it: a *live* dashboard that only
//! looks at fresh values, and an *audit* dashboard that ranges over the
//! whole history. We compare FIFO against rot under both.

use amnesia::prelude::*;
use amnesia::util::ascii;

fn run(policy: PolicyKind, query_gen: QueryGenKind) -> Result<Vec<f64>> {
    let cfg = SimConfig::builder()
        .dbsize(500)
        .domain(10_000)
        .update_fraction(0.40)
        .batches(12)
        .queries_per_batch(300)
        // Sensor readings drift upward over time: a serial pattern in the
        // value space, like timestamps or a monotone counter.
        .distribution(DistributionKind::Serial)
        .policy(policy)
        .query_gen(query_gen)
        .seed(7)
        .build()?;
    Ok(Simulator::new(cfg)?.run()?.precision_series())
}

fn main() -> Result<()> {
    // Live dashboard: ranges over the freshest 10 % of the value space.
    let live = QueryGenKind::RecentRange {
        selectivity: 0.02,
        recency_frac: 0.10,
    };
    // Audit dashboard: ranges anywhere over the value space seen so far
    // (for serial data, value space ≈ full history).
    let audit = QueryGenKind::UniformRange { selectivity: 0.02 };

    let mut table = ascii::TextTable::new(vec!["workload", "policy", "precision@12"]);
    let mut series = Vec::new();
    for (wl_name, wl) in [("live", live), ("audit", audit)] {
        for policy in [PolicyKind::Fifo, PolicyKind::Rot { high_water_age: 2 }] {
            let s = run(policy.clone(), wl.clone())?;
            table.row(vec![
                wl_name.to_string(),
                policy.name().to_string(),
                format!("{:.4}", s.last().copied().unwrap_or(1.0)),
            ]);
            series.push((format!("{wl_name}/{}", policy.name()), s));
        }
    }

    println!("sensor stream: 500-tuple buffer, 40% volatility, 12 batches\n");
    println!("{}", table.render());
    println!("{}", ascii::line_chart(&series, 0.0, 1.0, 12));
    println!(
        "reading: for a live dashboard the stream buffer IS the fresh data — \
         FIFO (and rot, which\nnever evicts what the dashboard touches) stay \
         perfect. Audits over full history collapse\ntoward the floor \
         dbsize/total for every policy: once the window dropped it, no \
         strategy\ncan answer for it (paper §4.2)."
    );
    Ok(())
}
