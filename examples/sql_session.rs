//! SQL over an amnesiac database: the same query, asked over time, sees
//! fewer and fewer of the old facts.
//!
//! ```sh
//! cargo run --release --example sql_session
//! # or run your own statement against the demo schema:
//! cargo run --release --example sql_session -- "SELECT COUNT(*) FROM orders"
//! ```
//!
//! Builds a customers/orders database, then alternates SQL query rounds
//! with update + amnesia rounds (TTL forgetting on orders, cascade-safe
//! forgetting on customers). Watch `SUM(amount)` drift as the store
//! forgets — the §1 property that forgotten data "will never show up in
//! query results", now visible through a SQL surface.

use amnesia::prelude::*;
use amnesia::sql::{run, QueryOutcome};
use amnesia::util::SimRng;

fn show(db: &Database, sql: &str) {
    println!("\namnesia> {sql}");
    match run(db, sql) {
        Ok(QueryOutcome::Rows(rs)) => {
            println!("{}", rs.render());
            // The unified ExecStats: the same accounting the engine's
            // executor and the benches report.
            let s = &rs.stats;
            println!(
                "({} rows; scanned {} tuples, {} blocks pruned, \
                 {} join pairs, {} groups; plan {:?})",
                rs.rows.len(),
                s.rows_scanned,
                s.blocks_pruned,
                s.join_pairs,
                s.groups,
                s.plan
            );
        }
        Ok(QueryOutcome::Plan(plan)) => println!("{plan}"),
        Err(e) => println!("{}", e.render(sql)),
    }
}

fn main() -> Result<()> {
    let mut rng = SimRng::new(0xC1D8_2017);
    let mut db = Database::new();
    let customers = db.add_table("customers", Schema::new(vec!["id", "region"]));
    let orders = db.add_table("orders", Schema::new(vec!["customer_id", "amount", "day"]));
    db.add_foreign_key(ForeignKey {
        child_table: orders,
        child_col: 0,
        parent_table: customers,
        parent_col: 0,
    })
    .map_err(|e| Error::Storage(e.to_string()))?;

    // Epoch 0: 40 customers across 4 regions, 200 orders.
    for id in 0..40i64 {
        db.table_mut(customers).insert(&[id, id % 4], 0)?;
    }
    for day in 0..200i64 {
        let cid = rng.range_i64(0, 40);
        let amount = rng.range_i64(5, 500);
        db.table_mut(orders).insert(&[cid, amount, day], 0)?;
    }

    // A user session: ad-hoc statement from the command line, or the tour.
    if let Some(stmt) = std::env::args().nth(1) {
        show(&db, &stmt);
        return Ok(());
    }

    println!("== day 0: full recall ==");
    show(
        &db,
        "SELECT COUNT(*) AS orders, SUM(amount) AS revenue FROM orders",
    );
    show(
        &db,
        "SELECT c.region, COUNT(*) AS n, AVG(o.amount) AS mean FROM customers c \
         JOIN orders o ON c.id = o.customer_id GROUP BY c.region ORDER BY mean DESC",
    );
    show(
        &db,
        "EXPLAIN SELECT c.region, AVG(o.amount) FROM customers c \
         JOIN orders o ON c.id = o.customer_id WHERE o.amount > 100 GROUP BY c.region",
    );

    // Amnesia epochs: every epoch inserts fresh orders and lets orders
    // older than 2 epochs expire (a privacy-style TTL), keeping the
    // store at its budget. Customers without active orders fade too.
    let budget = 200;
    let mut ttl = PolicyKind::Ttl { max_age: 2 }.build();
    for epoch in 1..=4u64 {
        for day in 0..60i64 {
            let cid = rng.range_i64(0, 40);
            let amount = rng.range_i64(5, 500);
            db.table_mut(orders)
                .insert(&[cid, amount, epoch as i64 * 200 + day], epoch)?;
        }
        let excess = db.table(orders).active_rows().saturating_sub(budget);
        let victims = {
            let ctx = PolicyContext {
                table: db.table(orders),
                epoch,
            };
            ttl.select_victims(&ctx, excess, &mut rng)
        };
        for v in victims {
            db.table_mut(orders).forget(v, epoch)?;
        }
        println!(
            "\n== epoch {epoch}: +60 orders, {} forgotten, {} active ==",
            excess,
            db.table(orders).active_rows()
        );
        show(
            &db,
            "SELECT COUNT(*) AS orders, SUM(amount) AS revenue FROM orders",
        );
    }

    println!("\n== the oldest days are gone from every answer ==");
    show(
        &db,
        "SELECT MIN(day) AS oldest_day, MAX(day) AS newest_day FROM orders",
    );
    show(
        &db,
        "SELECT day FROM orders WHERE day < 50 ORDER BY day LIMIT 5",
    );

    // Referential amnesia: forgetting a customer cascades to its orders.
    let victim = db
        .table(customers)
        .iter_active()
        .next()
        .expect("a customer");
    let forgotten = db
        .forget(customers, victim, 5, ReferentialAction::Cascade)
        .map_err(|e| Error::Storage(e.to_string()))?;
    println!(
        "\n== cascade-forgot customer {victim} and {} dependent order(s) ==",
        forgotten.len() - 1
    );
    show(&db, "SELECT COUNT(*) AS customers_left FROM customers");
    assert!(db.dangling_references().is_empty(), "integrity holds");
    println!("\nreferential integrity holds: no dangling foreign keys.");
    Ok(())
}
