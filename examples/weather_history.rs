//! Weather archive: domain-tailored amnesia with summaries.
//!
//! ```sh
//! cargo run --release --example weather_history
//! ```
//!
//! Paper §5: "in a database with historical weather information, data from
//! areas that have constant weather patterns can be forgotten in a few
//! weeks time, where for areas that exhibit strange meteorological
//! phenomena the data should be kept for longer periods."
//!
//! We model two stations feeding one table: a *steady* coastal station
//! (tight normal around 15 °C) and a *volatile* desert station (wide
//! normal). An [`AmnesiacStore`] in `Summarize` mode forgets under a
//! distribution-aligned policy, so climate aggregates survive even though
//! most raw steady-station readings rot away — and the whole-table average
//! stays exact thanks to the summaries.

use amnesia::columnar::RowId;
use amnesia::prelude::*;
use amnesia::util::ascii;

/// Temperatures in tenths of a degree, offset to keep them positive.
fn station_mix() -> DistributionKind {
    DistributionKind::Mixture {
        // Steady coastal station: 15.0 ± 1 °C.
        first: Box::new(DistributionKind::Normal { sd_frac: 0.02 }),
        // Volatile desert station: same mean, ±10 °C swings.
        second: Box::new(DistributionKind::Normal { sd_frac: 0.20 }),
        weight: 0.7,
    }
}

fn main() -> Result<()> {
    let dbsize = 2000usize;
    let batches = 15u64;
    let per_batch = 800usize;
    let domain = 600i64; // 0..60.0 °C in tenths

    let mut rng = SimRng::new(0xEA7);
    let mut dist = station_mix().build(domain, 0xEA7);
    let mut policy = PolicyKind::Aligned { bins: 24 }.build();
    let mut store = AmnesiacStore::new(ForgetMode::Summarize).with_zonemap();

    // Ledger for verification only (a real deployment has no such thing).
    let mut all_readings: Vec<i64> = Vec::new();

    let initial: Vec<i64> = (0..dbsize).map(|_| dist.sample(&mut rng)).collect();
    all_readings.extend_from_slice(&initial);
    store.insert_batch(&initial, 0)?;

    for week in 1..=batches {
        let fresh: Vec<i64> = (0..per_batch).map(|_| dist.sample(&mut rng)).collect();
        all_readings.extend_from_slice(&fresh);
        store.insert_batch(&fresh, week)?;

        let need = store.table().active_rows().saturating_sub(dbsize);
        let victims = {
            let ctx = PolicyContext {
                table: store.table(),
                epoch: week,
            };
            policy.select_victims(&ctx, need, &mut rng)
        };
        store.forget_batch(&victims, week)?;
        store.end_batch()?;
    }

    // --- climate report ----------------------------------------------------
    let exact_avg = all_readings.iter().map(|&v| v as f64).sum::<f64>() / all_readings.len() as f64;
    let stored_avg = store
        .query(&Query::Aggregate {
            kind: AggKind::Avg,
            predicate: None,
        })
        .output
        .agg()
        .flatten()
        .unwrap_or(f64::NAN);
    let stored_count = store
        .query(&Query::Aggregate {
            kind: AggKind::Count,
            predicate: None,
        })
        .output
        .agg()
        .flatten()
        .unwrap_or(0.0);

    let fp = store.footprint();
    let mut t = ascii::TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "readings ingested".to_string(),
        all_readings.len().to_string(),
    ]);
    t.row(vec!["raw tuples kept".to_string(), fp.hot_rows.to_string()]);
    t.row(vec![
        "summary bytes".to_string(),
        fp.summary_bytes.to_string(),
    ]);
    t.row(vec![
        "AVG (exact history)".to_string(),
        format!("{:.2} °C", exact_avg / 10.0),
    ]);
    t.row(vec![
        "AVG (amnesiac + summaries)".to_string(),
        format!("{:.2} °C", stored_avg / 10.0),
    ]);
    t.row(vec![
        "COUNT (amnesiac + summaries)".to_string(),
        format!("{stored_count:.0}"),
    ]);
    println!("weather archive after {batches} weeks\n\n{}", t.render());

    // Hot/volatile readings should still be individually queryable: the
    // aligned policy keeps the active sample faithful to history.
    let extremes = store.query(&Query::Range(RangePredicate::new(450, 600)));
    println!(
        "heatwave readings (>45 °C) still individually queryable: {}",
        extremes.output.cardinality()
    );

    // Distribution check: the surviving sample mirrors history.
    let table = store.table();
    let mut sample_hot = 0usize;
    let mut sample_n = 0usize;
    for r in table.iter_active() {
        sample_n += 1;
        if table.value(0, RowId::from(r.as_usize())) > 450 {
            sample_hot += 1;
        }
    }
    let hist_hot = all_readings.iter().filter(|&&v| v > 450).count();
    println!(
        "fraction >45 °C — history: {:.4}, surviving sample: {:.4}",
        hist_hot as f64 / all_readings.len() as f64,
        sample_hot as f64 / sample_n.max(1) as f64,
    );
    Ok(())
}
