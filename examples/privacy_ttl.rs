//! Privacy-mandated forgetting: a legal retention window with physical
//! deletion.
//!
//! ```sh
//! cargo run --release --example privacy_ttl
//! ```
//!
//! Paper §1: "observations that are constrained by a Data Privacy Act
//! should be forgotten within the legally defined time frame" — and for
//! privacy, *marking* is not enough: the bytes must go. We pair
//! [`PolicyKind::Ttl`] with [`ForgetMode::Delete`] (vacuum every batch)
//! and prove two properties after every batch:
//!
//! 1. no active record older than the retention window survives once the
//!    backlog drains, and
//! 2. the vacuumed table physically contains no expired payloads.

use amnesia::prelude::*;

const RETENTION_BATCHES: u64 = 3;

fn main() -> Result<()> {
    let dbsize = 1000usize;
    let per_batch = 500usize;

    let mut rng = SimRng::new(0x9D9);
    let mut dist = DistributionKind::Uniform.build(1_000_000, 0x9D9);
    let mut policy = PolicyKind::Ttl {
        max_age: RETENTION_BATCHES,
    }
    .build();
    // Vacuum every batch: forgotten = physically gone.
    let mut store = AmnesiacStore::new(ForgetMode::Delete { vacuum_every: 1 });

    let initial: Vec<i64> = (0..dbsize).map(|_| dist.sample(&mut rng)).collect();
    store.insert_batch(&initial, 0)?;

    println!("retention window: {RETENTION_BATCHES} batches; vacuum: every batch\n");
    println!(
        "{:>5} {:>8} {:>10} {:>12} {:>14}",
        "batch", "active", "physical", "over-age", "oldest epoch"
    );

    for b in 1..=12u64 {
        let fresh: Vec<i64> = (0..per_batch).map(|_| dist.sample(&mut rng)).collect();
        store.insert_batch(&fresh, b)?;

        // Budget: hold dbsize — but ALSO forget every expired record even
        // if that dips below budget (the law outranks the buffer).
        let over_budget = store.table().active_rows().saturating_sub(dbsize);
        let expired = store
            .table()
            .iter_active()
            .filter(|&r| b.saturating_sub(store.table().insert_epoch(r)) > RETENTION_BATCHES)
            .count();
        let need = over_budget.max(expired);
        let victims = {
            let ctx = PolicyContext {
                table: store.table(),
                epoch: b,
            };
            policy.select_victims(&ctx, need, &mut rng)
        };
        store.forget_batch(&victims, b)?;
        store.end_batch()?;

        let table = store.table();
        let over_age = table
            .iter_active()
            .filter(|&r| b.saturating_sub(table.insert_epoch(r)) > RETENTION_BATCHES)
            .count();
        let oldest = table
            .iter_active()
            .map(|r| table.insert_epoch(r))
            .min()
            .unwrap_or(b);
        println!(
            "{:>5} {:>8} {:>10} {:>12} {:>14}",
            b,
            table.active_rows(),
            table.num_rows(),
            over_age,
            oldest
        );

        // Compliance assertions: after the initial backlog drains, nothing
        // over-age survives, and the physical store holds no forgotten
        // rows at all (vacuumed every batch).
        assert_eq!(
            table.num_rows(),
            table.active_rows(),
            "vacuum must leave no forgotten payloads behind"
        );
        if b > RETENTION_BATCHES + 1 {
            assert_eq!(over_age, 0, "legal retention window violated");
        }
    }

    println!("\ncompliant: every expired record was forgotten AND physically removed.");
    Ok(())
}
