//! Durability for an amnesiac store: snapshots, WAL, crash recovery.
//!
//! ```sh
//! cargo run --release --example durable_amnesia
//! ```
//!
//! The paper's §5 escape hatch — "recover a backup version of the
//! database from cold storage explicitly" — needs an actual backup
//! mechanism. This example runs the fixed-budget amnesia loop on a
//! [`PersistentTable`], checkpoints mid-run, simulates a crash by
//! tearing bytes off the WAL tail, and shows recovery keeping every
//! acknowledged batch while dropping only the torn suffix.

use amnesia::columnar::persist::PersistentTable;
use amnesia::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("amnesia-durable-demo");
    let _ = std::fs::remove_dir_all(&dir);

    let dbsize = 1000usize;
    let mut rng = SimRng::new(0xC1D8_2017);
    let mut policy = PolicyKind::Area.build();

    // Epoch 0: initial load.
    let mut pt = PersistentTable::create(&dir, Schema::single("reading"))?;
    let mut next = 0i64;
    let initial: Vec<i64> = (0..dbsize as i64).collect();
    next += dbsize as i64;
    pt.insert_batch(&initial, 0)?;
    println!("created durable store at {}", dir.display());

    // Five update batches under the fixed budget, WAL-logged.
    for b in 1..=5u64 {
        let fresh: Vec<i64> = (next..next + 200).collect();
        next += 200;
        pt.insert_batch(&fresh, b)?;
        let excess = pt.table().active_rows() - dbsize;
        let victims = {
            let ctx = PolicyContext {
                table: pt.table(),
                epoch: b,
            };
            policy.select_victims(&ctx, excess, &mut rng)
        };
        for v in victims {
            pt.forget(v, b)?;
        }
        pt.sync()?;
        println!(
            "batch {b}: {} physical rows, {} active (budget), {} WAL records",
            pt.table().num_rows(),
            pt.table().active_rows(),
            pt.records_since_checkpoint()
        );
        if b == 3 {
            pt.checkpoint()?;
            println!("batch {b}: checkpoint — snapshot written, WAL truncated");
        }
    }

    let rows_before = pt.table().num_rows();
    let active_before = pt.table().active_rows();
    drop(pt);

    // Crash: tear 5 bytes off the log tail (a half-written record).
    let wal_path = dir.join("table.wal");
    let bytes = std::fs::read(&wal_path)?;
    std::fs::write(&wal_path, &bytes[..bytes.len().saturating_sub(5)])?;
    println!("\nsimulated crash: tore 5 bytes off {}", wal_path.display());

    // Recovery: snapshot + valid WAL prefix.
    let recovered = PersistentTable::open(&dir)?;
    println!(
        "recovered: clean={}, {} physical rows (live run had {}), {} active (live had {})",
        recovered.recovered_clean(),
        recovered.table().num_rows(),
        rows_before,
        recovered.table().active_rows(),
        active_before,
    );
    assert!(!recovered.recovered_clean(), "the tear must be detected");
    assert!(recovered.table().num_rows() <= rows_before);

    // The budget discipline resumes exactly where the valid prefix ends.
    let mut recovered = recovered;
    let over = recovered.table().active_rows().saturating_sub(dbsize);
    if over > 0 {
        let victims = {
            let ctx = PolicyContext {
                table: recovered.table(),
                epoch: 6,
            };
            policy.select_victims(&ctx, over, &mut rng)
        };
        for v in victims {
            recovered.forget(v, 6)?;
        }
        println!("re-trimmed {over} tuples lost to the torn forget records");
    }
    recovered.checkpoint()?;
    println!(
        "final state: {} active rows, checkpointed — ready for the next session",
        recovered.table().active_rows()
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
