//! Durability for an amnesiac store: snapshots, WAL, crash recovery.
//!
//! ```sh
//! cargo run --release --example durable_amnesia
//! ```
//!
//! The paper's §5 escape hatch — "recover a backup version of the
//! database from cold storage explicitly" — needs an actual backup
//! mechanism. This example runs the fixed-budget amnesia loop on a
//! [`PersistentTable`], checkpoints mid-run, simulates a crash by
//! tearing bytes off the newest WAL segment, and shows recovery keeping
//! every acknowledged batch while dropping only the torn suffix. It
//! then freezes and physically drops fully-forgotten blocks, shredding
//! the WAL segments that still carried their values — durable amnesia,
//! not just logical amnesia.

use amnesia::columnar::persist::PersistentTable;
use amnesia::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("amnesia-durable-demo");
    let _ = std::fs::remove_dir_all(&dir);

    let dbsize = 1000usize;
    let mut rng = SimRng::new(0xC1D8_2017);
    let mut policy = PolicyKind::Area.build();

    // Epoch 0: initial load.
    let mut pt = PersistentTable::create(&dir, Schema::single("reading"))?;
    let mut next = 0i64;
    let initial: Vec<i64> = (0..dbsize as i64).collect();
    next += dbsize as i64;
    pt.insert_batch(&initial, 0)?;
    println!("created durable store at {}", dir.display());

    // Five update batches under the fixed budget, WAL-logged.
    for b in 1..=5u64 {
        let fresh: Vec<i64> = (next..next + 200).collect();
        next += 200;
        pt.insert_batch(&fresh, b)?;
        let excess = pt.table().active_rows() - dbsize;
        let victims = {
            let ctx = PolicyContext {
                table: pt.table(),
                epoch: b,
            };
            policy.select_victims(&ctx, excess, &mut rng)
        };
        for v in victims {
            pt.forget(v, b)?;
        }
        pt.sync()?;
        println!(
            "batch {b}: {} physical rows, {} active (budget), {} WAL records",
            pt.table().num_rows(),
            pt.table().active_rows(),
            pt.records_since_checkpoint()
        );
        if b == 3 {
            pt.checkpoint()?;
            println!("batch {b}: checkpoint — snapshot written, WAL truncated");
        }
    }

    let rows_before = pt.table().num_rows();
    let active_before = pt.table().active_rows();
    drop(pt);

    // Crash: tear 5 bytes off the newest WAL segment (a half-written
    // record). The log is a sequence of `wal-<index>.seg` files; only
    // the highest-numbered one is being appended to.
    let newest_seg = {
        let mut segs: Vec<_> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
            })
            .collect();
        segs.sort();
        segs.pop().expect("a live store always has a WAL segment")
    };
    let bytes = std::fs::read(&newest_seg)?;
    std::fs::write(&newest_seg, &bytes[..bytes.len().saturating_sub(5)])?;
    println!(
        "\nsimulated crash: tore 5 bytes off {}",
        newest_seg.display()
    );

    // Recovery: snapshot + valid WAL prefix.
    let recovered = PersistentTable::open(&dir)?;
    println!(
        "recovered: clean={}, {} physical rows (live run had {}), {} active (live had {})",
        recovered.recovered_clean(),
        recovered.table().num_rows(),
        rows_before,
        recovered.table().active_rows(),
        active_before,
    );
    assert!(!recovered.recovered_clean(), "the tear must be detected");
    assert!(recovered.table().num_rows() <= rows_before);

    // The budget discipline resumes exactly where the valid prefix ends.
    let mut recovered = recovered;
    let over = recovered.table().active_rows().saturating_sub(dbsize);
    if over > 0 {
        let victims = {
            let ctx = PolicyContext {
                table: recovered.table(),
                epoch: 6,
            };
            policy.select_victims(&ctx, over, &mut rng)
        };
        for v in victims {
            recovered.forget(v, 6)?;
        }
        println!("re-trimmed {over} tuples lost to the torn forget records");
    }
    recovered.checkpoint()?;
    println!(
        "final state: {} active rows, checkpointed — ready for the next session",
        recovered.table().active_rows()
    );

    // Physical amnesia: retire the oldest block outright. Forget every
    // surviving row in block 0, freeze it, and drop it — the drop
    // rewrites and shreds the WAL segments that still carried those
    // values, so the forgotten readings cannot be read back off disk.
    let block_rows = 1024u64;
    for r in 0..block_rows {
        recovered.forget(RowId(r), 7)?;
    }
    let frozen = recovered.freeze_upto(block_rows as usize)?;
    let (dropped, bytes_freed) = recovered.drop_forgotten_blocks()?;
    let stats = recovered.stats();
    println!(
        "physical amnesia: froze {frozen} block(s), dropped {dropped} ({bytes_freed} bytes \
         freed), shredded {} WAL segment(s) ({} bytes overwritten before unlink)",
        stats.segments_shredded, stats.bytes_shredded,
    );
    assert!(dropped >= 1, "block 0 was fully forgotten and frozen");

    // The shredded store still recovers — to the post-drop layout.
    let reopened = PersistentTable::open(&dir)?;
    println!(
        "reopened after shred: clean={}, {} active rows, {} block(s) dropped on disk too",
        reopened.recovered_clean(),
        reopened.table().active_rows(),
        reopened.blocks_dropped(),
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
