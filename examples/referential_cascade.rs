//! Referential amnesia: forgetting with foreign keys (paper §5).
//!
//! ```sh
//! cargo run --release --example referential_cascade
//! ```
//!
//! "Should forgetting a key value be forbidden unless it is not
//! referenced any more? Or should we cascade by forgetting all related
//! tuples?" — we run a small shop schema
//! (`customers ← orders ← line_items`) under both answers and verify that
//! neither ever leaves a dangling reference.

use amnesia::columnar::{Database, ForeignKey, ReferentialAction, RowId, Schema};
use amnesia::prelude::*;

fn build_shop(rng: &mut SimRng) -> (Database, usize, usize, usize) {
    let mut db = Database::new();
    let customers = db.add_table("customers", Schema::single("id"));
    let orders = db.add_table("orders", Schema::new(vec!["order_id", "customer_id"]));
    let items = db.add_table("line_items", Schema::new(vec!["order_id", "qty"]));
    db.add_foreign_key(ForeignKey {
        child_table: orders,
        child_col: 1,
        parent_table: customers,
        parent_col: 0,
    })
    .unwrap();
    db.add_foreign_key(ForeignKey {
        child_table: items,
        child_col: 0,
        parent_table: orders,
        parent_col: 0,
    })
    .unwrap();

    // 50 customers, ~3 orders each, ~2 line items per order.
    let mut order_id = 0i64;
    for cid in 0..50i64 {
        db.table_mut(customers).insert(&[cid], 0).unwrap();
        for _ in 0..rng.index(6) {
            db.table_mut(orders).insert(&[order_id, cid], 0).unwrap();
            for _ in 0..rng.index(4) {
                db.table_mut(items)
                    .insert(&[order_id, rng.range_i64(1, 10)], 0)
                    .unwrap();
            }
            order_id += 1;
        }
    }
    (db, customers, orders, items)
}

fn main() -> Result<()> {
    let mut rng = SimRng::new(0xFADE);
    let (mut db, customers, orders, items) = build_shop(&mut rng);
    println!(
        "shop: {} customers, {} orders, {} line items\n",
        db.table(customers).active_rows(),
        db.table(orders).active_rows(),
        db.table(items).active_rows()
    );

    // --- RESTRICT: privacy request denied while orders exist ------------
    let victim = RowId(0);
    match db.forget(customers, victim, 1, ReferentialAction::Restrict) {
        Err(e) => println!("restrict: {e}"),
        Ok(_) => println!("restrict: customer 0 had no orders — forgotten"),
    }

    // --- CASCADE: GDPR-style erasure takes the whole subtree ------------
    let forgotten = db.forget(customers, victim, 2, ReferentialAction::Cascade)?;
    let by_table = |t: usize| forgotten.iter().filter(|(ti, _)| *ti == t).count();
    println!(
        "cascade:  forgetting customer 0 took {} tuple(s): {} customer, {} order(s), {} item(s)",
        forgotten.len(),
        by_table(customers),
        by_table(orders),
        by_table(items),
    );
    assert!(db.dangling_references().is_empty());

    // --- TTL sweep with cascade: age out the oldest half of customers ---
    let mut erased = 0usize;
    for cid in 1..25u64 {
        erased += db
            .forget(customers, RowId(cid), 3, ReferentialAction::Cascade)?
            .len();
    }
    println!(
        "ttl sweep: erased 24 more customers → {erased} tuples total; \
         dangling references: {}",
        db.dangling_references().len()
    );
    assert!(db.dangling_references().is_empty());

    println!(
        "\nremaining active: {} customers, {} orders, {} items — integrity holds.",
        db.table(customers).active_rows(),
        db.table(orders).active_rows(),
        db.table(items).active_rows()
    );
    Ok(())
}
