//! Property tests of the hash-join kernel against a brute-force
//! nested-loop model, across random tables and forget patterns.

use amnesia::engine::join::{hash_join, hash_join_count, join_precision};
use amnesia::engine::ForgetVisibility;
use amnesia::prelude::*;
use proptest::prelude::*;

fn build(values: &[i64], forget: &[usize]) -> Table {
    let mut t = Table::new(Schema::single("k"));
    if !values.is_empty() {
        t.insert_batch(values, 0).unwrap();
    }
    for &f in forget {
        if !values.is_empty() {
            let _ = t.forget(RowId((f % values.len()) as u64), 1);
        }
    }
    t
}

/// Brute-force nested-loop join over the chosen visibility.
fn model_join(left: &Table, right: &Table, vis: ForgetVisibility) -> Vec<(RowId, RowId)> {
    let rows = |t: &Table| -> Vec<RowId> {
        match vis {
            ForgetVisibility::ActiveOnly => t.active_row_ids(),
            ForgetVisibility::ScanSeesForgotten => (0..t.num_rows()).map(RowId::from).collect(),
        }
    };
    let mut out = Vec::new();
    for l in rows(left) {
        for r in rows(right) {
            if left.value(0, l) == right.value(0, r) {
                out.push((l, r));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_join_matches_nested_loop(
        left_vals in proptest::collection::vec(0i64..30, 0..60),
        right_vals in proptest::collection::vec(0i64..30, 0..60),
        lf in proptest::collection::vec(0usize..100, 0..20),
        rf in proptest::collection::vec(0usize..100, 0..20),
    ) {
        let left = build(&left_vals, &lf);
        let right = build(&right_vals, &rf);
        for vis in [ForgetVisibility::ActiveOnly, ForgetVisibility::ScanSeesForgotten] {
            let mut expected = model_join(&left, &right, vis);
            let mut got = hash_join(&left, 0, &right, 0, vis).pairs;
            expected.sort();
            got.sort();
            prop_assert_eq!(&got, &expected, "{:?}", vis);
            prop_assert_eq!(
                hash_join_count(&left, 0, &right, 0, vis),
                expected.len(),
                "count-only must agree"
            );
        }
    }

    #[test]
    fn precision_is_a_valid_ratio_and_monotone_in_forgetting(
        vals in proptest::collection::vec(0i64..20, 1..50),
    ) {
        let left = build(&vals, &[]);
        let mut right = build(&vals, &[]);
        let p0 = join_precision(&left, 0, &right, 0);
        prop_assert_eq!(p0, Some(1.0), "nothing forgotten yet");
        // Forget right-side rows one at a time: precision never rises.
        let mut last = 1.0;
        for r in 0..right.num_rows() {
            right.forget(RowId(r as u64), 1).unwrap();
            if let Some(p) = join_precision(&left, 0, &right, 0) {
                prop_assert!(p <= last + 1e-12, "precision rose: {p} > {last}");
                prop_assert!((0.0..=1.0).contains(&p));
                last = p;
            }
        }
    }

    #[test]
    fn tiered_hash_join_matches_nested_loop(
        left_vals in proptest::collection::vec(0i64..30, 0..200),
        right_vals in proptest::collection::vec(0i64..30, 0..200),
        lf in proptest::collection::vec(0usize..300, 0..40),
        rf in proptest::collection::vec(0usize..300, 0..40),
        freeze_left in 0usize..4,
        freeze_right in 0usize..4,
    ) {
        // Same logical tables, but with 64-row tier blocks and a random
        // amount of each side frozen: answers must match the nested-loop
        // model exactly, frozen or not.
        let build_tiered = |values: &[i64], forget: &[usize], upto: usize| {
            let mut t = Table::with_block_rows(Schema::single("k"), 64);
            if !values.is_empty() {
                t.insert_batch(values, 0).unwrap();
            }
            for &f in forget {
                if !values.is_empty() {
                    let _ = t.forget(RowId((f % values.len()) as u64), 1);
                }
            }
            t.freeze_upto(upto * 64);
            t
        };
        let left = build_tiered(&left_vals, &lf, freeze_left);
        let right = build_tiered(&right_vals, &rf, freeze_right);
        let mut expected = model_join(&left, &right, ForgetVisibility::ActiveOnly);
        let result = hash_join(&left, 0, &right, 0, ForgetVisibility::ActiveOnly);
        let mut got = result.pairs;
        expected.sort();
        got.sort();
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(
            hash_join_count(&left, 0, &right, 0, ForgetVisibility::ActiveOnly),
            expected.len()
        );
        prop_assert_eq!(
            result.stats.probe_rows_skipped <= right.active_rows(),
            true
        );
    }

    #[test]
    fn join_stats_are_consistent(
        left_vals in proptest::collection::vec(0i64..15, 0..40),
        right_vals in proptest::collection::vec(0i64..15, 0..40),
    ) {
        let left = build(&left_vals, &[]);
        let right = build(&right_vals, &[]);
        let r = hash_join(&left, 0, &right, 0, ForgetVisibility::ActiveOnly);
        prop_assert_eq!(r.stats.build_rows, left_vals.len());
        prop_assert_eq!(r.stats.probe_rows, right_vals.len());
        prop_assert_eq!(r.stats.output_pairs, r.pairs.len());
        let distinct: std::collections::HashSet<i64> =
            left_vals.iter().copied().collect();
        prop_assert_eq!(r.stats.build_distinct_keys, distinct.len());
    }
}
