//! Cross-crate checks: the SQL surface must agree exactly with the
//! engine kernels on the amnesiac visibility semantics.
//!
//! The second half is the physical-plan equivalence suite: every SQL
//! query shape, executed over a half-frozen (and recompressed) table
//! through the lowered `PhysicalPlan`, must return exactly what (a) the
//! same query over a never-frozen flat twin returns and (b) a
//! row-at-a-time reference interpreter computes — across codecs × block
//! sizes — and frozen-only queries must finish with **zero** block
//! decodes.

use amnesia::columnar::compress::{block_decodes, Encoding};
use amnesia::engine::kernels;
use amnesia::prelude::*;
use amnesia::sql::plan::{BoundFilter, BoundItem, Catalog as SqlCatalog};
use amnesia::sql::{bind, parse, run, Datum, QueryOutcome, Statement};
use proptest::prelude::*;
use std::collections::HashMap;

/// One-table database plus a model vector of `(value, active)`.
fn build(values: &[i64], forget: &[usize]) -> (Database, Vec<(i64, bool)>) {
    let mut db = Database::new();
    let t = db.add_table("t", Schema::single("a"));
    db.table_mut(t).insert_batch(values, 0).unwrap();
    let mut model: Vec<(i64, bool)> = values.iter().map(|&v| (v, true)).collect();
    for &f in forget {
        if !values.is_empty() {
            let idx = f % values.len();
            db.table_mut(t).forget(RowId(idx as u64), 1).unwrap();
            model[idx].1 = false;
        }
    }
    (db, model)
}

fn sql_rows(db: &Database, sql: &str) -> Vec<Vec<Datum>> {
    match run(db, sql).unwrap() {
        QueryOutcome::Rows(rs) => rs.rows,
        QueryOutcome::Plan(p) => panic!("unexpected plan {p}"),
    }
}

fn sql_scalar(db: &Database, sql: &str) -> Datum {
    let rows = sql_rows(db, sql);
    assert_eq!(rows.len(), 1, "{sql}");
    rows[0][0]
}

#[test]
fn sql_count_matches_engine_kernel() {
    let values: Vec<i64> = (0..500).map(|i| (i * 37) % 1000).collect();
    let (db, _) = build(&values, &[1, 5, 9, 13, 200, 201, 499]);
    let table = db.table(db.table_id("t").unwrap());
    for (lo, hi) in [(0i64, 100i64), (250, 750), (990, 1000), (500, 500)] {
        let engine_count = kernels::count_active_matches(table, 0, RangePredicate::new(lo, hi));
        // SQL BETWEEN is inclusive: [lo, hi-1] == [lo, hi).
        let sql = format!("SELECT COUNT(*) FROM t WHERE a BETWEEN {lo} AND {}", hi - 1);
        assert_eq!(
            sql_scalar(&db, &sql),
            Datum::Int(engine_count as i64),
            "range [{lo}, {hi})"
        );
    }
}

#[test]
fn sql_avg_matches_engine_kernel() {
    let values: Vec<i64> = (0..300).map(|i| (i * 13) % 777).collect();
    let (db, _) = build(&values, &[2, 4, 8, 16, 32, 64, 128, 256]);
    let table = db.table(db.table_id("t").unwrap());
    let (engine_avg, _) =
        kernels::aggregate_active(table, 0, Some(RangePredicate::new(100, 600)), AggKind::Avg);
    match sql_scalar(&db, "SELECT AVG(a) FROM t WHERE a BETWEEN 100 AND 599") {
        Datum::Float(v) => {
            let expected = engine_avg.unwrap();
            assert!((v - expected).abs() < 1e-9, "sql {v} engine {expected}");
        }
        other => panic!("expected float, got {other:?}"),
    }
}

#[test]
fn forgotten_tuples_never_appear_in_sql_results() {
    let values: Vec<i64> = (0..100).collect();
    let (db, model) = build(&values, &[10, 20, 30, 40]);
    let rows = sql_rows(&db, "SELECT a FROM t ORDER BY a");
    let got: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    let expected: Vec<i64> = model
        .iter()
        .filter(|(_, active)| *active)
        .map(|(v, _)| *v)
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn sql_sees_the_simulator_store() {
    // The simulator's table is a plain columnar table: wire it into a
    // database and query it through SQL mid-simulation.
    let cfg = SimConfig::builder()
        .dbsize(200)
        .domain(10_000)
        .update_fraction(0.2)
        .batches(4)
        .queries_per_batch(20)
        .distribution(DistributionKind::Uniform)
        .policy(PolicyKind::Uniform)
        .seed(7)
        .build()
        .unwrap();
    let mut sim = Simulator::new(cfg).unwrap();
    for _ in 0..4 {
        sim.step().unwrap();
    }
    assert_eq!(sim.table().active_rows(), 200);

    let mut db = Database::new();
    let t = db.add_table("t", Schema::single("a"));
    // Rebuild from the simulator table's physical rows.
    let table = sim.table();
    for r in 0..table.num_rows() {
        let id = RowId::from(r);
        db.table_mut(t).insert(&[table.value(0, id)], 0).unwrap();
        if !table.activity().is_active(id) {
            db.table_mut(t).forget(id, 1).unwrap();
        }
    }
    let n = sql_scalar(&db, "SELECT COUNT(*) FROM t");
    assert_eq!(n, Datum::Int(200), "SQL sees exactly the active budget");
}

// ---------------------------------------------------------------------
// Physical-plan equivalence: tiered == flat == row-at-a-time reference.
// ---------------------------------------------------------------------

/// A catalog over explicitly-built tables (block sizes and codecs the
/// `Database` constructor doesn't expose).
struct TestCatalog {
    tables: Vec<(String, Table)>,
}

impl SqlCatalog for TestCatalog {
    fn resolve(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|(n, _)| n.clone()).collect()
    }
}

/// Row-at-a-time reference interpreter for a bound query: `iter_active`
/// with per-row `Table::value` reads and a scalar `HashMap` — exactly
/// the execution shape the physical plan replaced, kept here as the
/// behavioral oracle.
fn reference_execute(catalog: &TestCatalog, sql: &str) -> Vec<Vec<Datum>> {
    let stmt = parse(sql).unwrap();
    let select = match stmt {
        Statement::Select(s) | Statement::Explain(s) => s,
    };
    let q = bind(catalog, &select).unwrap();
    let tables: Vec<&Table> = q
        .tables
        .iter()
        .map(|(n, _)| catalog.resolve(n).unwrap())
        .collect();

    let scan = |slot: usize| -> Vec<RowId> {
        let filters: Vec<&BoundFilter> = q
            .filters
            .iter()
            .filter(|f| f.column().slot == slot)
            .collect();
        tables[slot]
            .iter_active()
            .filter(|&r| {
                filters
                    .iter()
                    .all(|f| f.matches(tables[slot].value(f.column().col, r)))
            })
            .collect()
    };

    // Joined (or single-table) row stream: [left row, right row].
    let rows: Vec<[RowId; 2]> = match &q.join {
        Some((l, r)) => {
            let mut build: HashMap<i64, Vec<RowId>> = HashMap::new();
            for &lr in &scan(0) {
                build
                    .entry(tables[0].value(l.col, lr))
                    .or_default()
                    .push(lr);
            }
            let mut out = Vec::new();
            for &rr in &scan(1) {
                if let Some(ls) = build.get(&tables[1].value(r.col, rr)) {
                    out.extend(ls.iter().map(|&lr| [lr, rr]));
                }
            }
            out
        }
        None => scan(0).into_iter().map(|r| [r, RowId(0)]).collect(),
    };

    let value_of = |slot: usize, col: usize, row: &[RowId; 2]| tables[slot].value(col, row[slot]);

    let mut out: Vec<Vec<Datum>> = if q.has_aggregates() || q.group_by.is_some() {
        // (key, per-item (count, sum, min, max)) in first-seen order.
        type Acc = (u64, i128, i64, i64);
        let mut groups: Vec<(Option<i64>, Vec<Acc>)> = Vec::new();
        if q.group_by.is_none() {
            groups.push((None, vec![(0, 0, i64::MAX, i64::MIN); q.items.len()]));
        }
        for row in &rows {
            let key = q.group_by.as_ref().map(|g| value_of(g.slot, g.col, row));
            let slot = match groups.iter().position(|(k, _)| *k == key) {
                Some(s) => s,
                None => {
                    groups.push((key, vec![(0, 0, i64::MAX, i64::MIN); q.items.len()]));
                    groups.len() - 1
                }
            };
            for (i, item) in q.items.iter().enumerate() {
                let acc = &mut groups[slot].1[i];
                match item {
                    BoundItem::Aggregate { arg: Some(c), .. } => {
                        let v = value_of(c.slot, c.col, row);
                        acc.0 += 1;
                        acc.1 += v as i128;
                        acc.2 = acc.2.min(v);
                        acc.3 = acc.3.max(v);
                    }
                    BoundItem::Aggregate { arg: None, .. } => acc.0 += 1,
                    BoundItem::Column(_) => {}
                }
            }
        }
        groups
            .into_iter()
            .map(|(key, accs)| {
                q.items
                    .iter()
                    .zip(accs)
                    .map(|(item, (count, sum, min, max))| match item {
                        BoundItem::Column(_) => Datum::Int(key.expect("group key")),
                        BoundItem::Aggregate { func, .. } => {
                            use amnesia::sql::ast::AggFunc;
                            if count == 0 {
                                return match func {
                                    AggFunc::Count => Datum::Int(0),
                                    _ => Datum::Null,
                                };
                            }
                            match func {
                                AggFunc::Count => Datum::Int(count as i64),
                                AggFunc::Sum => match i64::try_from(sum) {
                                    Ok(v) => Datum::Int(v),
                                    Err(_) => Datum::Float(sum as f64),
                                },
                                AggFunc::Avg => Datum::Float(sum as f64 / count as f64),
                                AggFunc::Min => Datum::Int(min),
                                AggFunc::Max => Datum::Int(max),
                            }
                        }
                    })
                    .collect()
            })
            .collect()
    } else {
        rows.iter()
            .map(|row| {
                q.items
                    .iter()
                    .map(|item| match item {
                        BoundItem::Column(c) => Datum::Int(value_of(c.slot, c.col, row)),
                        BoundItem::Aggregate { .. } => unreachable!(),
                    })
                    .collect()
            })
            .collect()
    };

    if let Some((idx, order)) = q.order_by {
        out.sort_by(|a, b| {
            let ord = a[idx].total_cmp(&b[idx]);
            match order {
                amnesia::sql::ast::SortOrder::Asc => ord,
                amnesia::sql::ast::SortOrder::Desc => ord.reverse(),
            }
        });
    }
    if let Some(limit) = q.limit {
        out.truncate(limit as usize);
    }
    out
}

fn run_rows(catalog: &TestCatalog, sql: &str) -> Vec<Vec<Datum>> {
    match run(catalog, sql).unwrap() {
        QueryOutcome::Rows(rs) => rs.rows,
        QueryOutcome::Plan(p) => panic!("unexpected plan {p}"),
    }
}

/// The query shapes the suite sweeps: projections, conjunctions,
/// negation, grouped and global aggregates, join, order, limit.
fn query_shapes(lo: i64, hi: i64, ne: i64) -> Vec<String> {
    vec![
        "SELECT g, a, b FROM t".to_string(),
        format!("SELECT a FROM t WHERE a BETWEEN {lo} AND {hi} AND b > 40 AND g <> {ne}"),
        format!(
            "SELECT g, COUNT(*) AS n, SUM(a) AS s, MIN(b) AS lo, MAX(a) AS hi, AVG(a) AS m \
             FROM t WHERE a >= {lo} AND b <> 13 GROUP BY g ORDER BY g"
        ),
        format!("SELECT COUNT(*), SUM(b), AVG(b) FROM t WHERE a BETWEEN {lo} AND {hi}"),
        format!("SELECT a, b FROM t WHERE g = {ne} ORDER BY a DESC LIMIT 7"),
        format!(
            "SELECT t.g, SUM(u.w) AS tw FROM t JOIN u ON t.a = u.k \
             WHERE u.w BETWEEN 5 AND 90 AND t.b <= 50 GROUP BY t.g ORDER BY tw DESC LIMIT 9"
        ),
        "SELECT t.a, u.w FROM t JOIN u ON t.a = u.k WHERE u.w > 50".to_string(),
    ]
}

/// Build the tiered table + flat twin pair for one codec/block-size
/// configuration, with forgets on both sides of the freeze boundary and
/// an optional recompression pass.
fn tiered_and_flat(
    rows: &[(i64, i64, i64)],
    forget: &[usize],
    block_rows: usize,
    encoding: Option<Encoding>,
    freeze_frac: f64,
    recompress: bool,
) -> (Table, Table) {
    let schema = Schema::new(vec!["g", "a", "b"]);
    let mut tiered = Table::with_block_rows(schema.clone(), block_rows);
    let mut flat = Table::new(schema);
    for &(g, a, b) in rows {
        tiered.insert(&[g, a, b], 0).unwrap();
        flat.insert(&[g, a, b], 0).unwrap();
    }
    if let Some(enc) = encoding {
        for c in 0..3 {
            tiered.pin_encoding(c, Some(enc));
        }
    }
    for &f in forget {
        let r = RowId((f % rows.len().max(1)) as u64);
        tiered.forget(r, 1).unwrap();
        flat.forget(r, 1).unwrap();
    }
    tiered.freeze_upto((rows.len() as f64 * freeze_frac) as usize);
    if recompress {
        tiered.recompress_frozen(1.0);
    }
    (tiered, flat)
}

/// `u(k, w)` join partner table (kept hot in the flat twin, frozen in
/// the tiered one).
fn partner(n: usize, freeze: bool) -> Table {
    let mut t = Table::new(Schema::new(vec!["k", "w"]));
    for i in 0..n as i64 {
        t.insert(&[i % 97, (i * 31) % 100], 0).unwrap();
    }
    for r in (0..n as u64).step_by(6) {
        t.forget(RowId(r), 1).unwrap();
    }
    if freeze {
        t.freeze_upto(n);
    }
    t
}

#[test]
fn sql_over_tiered_tables_matches_flat_twin_and_reference() {
    let mut rng = SimRng::new(0x5EED);
    let rows: Vec<(i64, i64, i64)> = (0..3_000)
        .map(|i| ((i / 100) % 7, rng.range_i64(0, 120), rng.range_i64(0, 100)))
        .collect();
    let forget: Vec<usize> = (0..400).map(|_| rng.range_i64(0, 3_000) as usize).collect();
    for encoding in [
        None,
        Some(Encoding::Rle),
        Some(Encoding::Dict),
        Some(Encoding::ForPack),
        Some(Encoding::Delta),
    ] {
        for block_rows in [128usize, 1024] {
            for recompress in [false, true] {
                let (tiered, flat) =
                    tiered_and_flat(&rows, &forget, block_rows, encoding, 0.7, recompress);
                assert!(tiered.has_frozen(), "suite must cover frozen blocks");
                let tiered_cat = TestCatalog {
                    tables: vec![("t".into(), tiered), ("u".into(), partner(1_500, true))],
                };
                let flat_cat = TestCatalog {
                    tables: vec![("t".into(), flat), ("u".into(), partner(1_500, false))],
                };
                for q in query_shapes(20, 90, 3) {
                    let got = run_rows(&tiered_cat, &q);
                    let flat_rows = run_rows(&flat_cat, &q);
                    let want = reference_execute(&flat_cat, &q);
                    let ctx = format!(
                        "{encoding:?} block_rows={block_rows} recompress={recompress} q={q}"
                    );
                    assert_eq!(got, flat_rows, "tiered == flat: {ctx}");
                    assert_eq!(got, want, "tiered == reference: {ctx}");
                }
            }
        }
    }
}

#[test]
fn frozen_only_queries_decode_zero_blocks() {
    let mut rng = SimRng::new(7);
    let rows: Vec<(i64, i64, i64)> = (0..4_096)
        .map(|i| ((i / 512) % 8, rng.range_i64(0, 200), rng.range_i64(0, 50)))
        .collect();
    for encoding in [None, Some(Encoding::Rle), Some(Encoding::Dict)] {
        let (tiered, flat) =
            tiered_and_flat(&rows, &[1, 65, 1030, 2049], 1024, encoding, 1.0, false);
        assert_eq!(tiered.col_tier(0).hot_values().len(), 0, "fully frozen");
        let cat = TestCatalog {
            tables: vec![("t".into(), tiered)],
        };
        let flat_cat = TestCatalog {
            tables: vec![("t".into(), flat)],
        };
        let queries = [
            "SELECT g, COUNT(*) AS n, SUM(a) AS s FROM t \
             WHERE a BETWEEN 20 AND 150 AND b > 5 GROUP BY g ORDER BY s DESC",
            "SELECT COUNT(*), SUM(a), MIN(a), MAX(b), AVG(b) FROM t WHERE a >= 10 AND b <> 7",
            "SELECT a FROM t WHERE a BETWEEN 40 AND 45 AND b <= 20",
        ];
        for q in queries {
            let before = block_decodes();
            let got = run_rows(&cat, q);
            assert_eq!(
                block_decodes(),
                before,
                "{encoding:?} {q}: frozen SQL must not decode blocks"
            );
            assert_eq!(got, run_rows(&flat_cat, q), "{encoding:?} {q}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Randomized freeze/forget/recompress interleavings: SQL answers
    // over the mutating tiered table always equal the flat twin's and
    // the row-at-a-time reference's.
    #[test]
    fn sql_equivalence_under_random_tiering(
        seed in 0u64..1_000,
        n in 300usize..1_200,
        freeze_frac in 0.0f64..1.0,
        forget in proptest::collection::vec(0usize..4_096, 0..120),
        lo in 0i64..60,
        width in 1i64..80,
    ) {
        let recompress = seed % 2 == 0;
        let mut rng = SimRng::new(seed);
        let rows: Vec<(i64, i64, i64)> = (0..n)
            .map(|i| ((i as i64 / 50) % 5, rng.range_i64(0, 120), rng.range_i64(0, 100)))
            .collect();
        let (tiered, flat) =
            tiered_and_flat(&rows, &forget, 128, None, freeze_frac, recompress);
        let tiered_cat = TestCatalog { tables: vec![("t".into(), tiered), ("u".into(), partner(400, true))] };
        let flat_cat = TestCatalog { tables: vec![("t".into(), flat), ("u".into(), partner(400, false))] };
        for q in query_shapes(lo, lo + width, 2) {
            let got = run_rows(&tiered_cat, &q);
            prop_assert_eq!(&got, &run_rows(&flat_cat, &q), "tiered == flat: {}", &q);
            prop_assert_eq!(&got, &reference_execute(&flat_cat, &q), "tiered == reference: {}", &q);
            // Morsel-parallel dispatch rides the same random freeze/
            // forget/recompress interleavings (7 workers: deliberately
            // non-power-of-two).
            prop_assert_eq!(&got, &run_rows_at(&tiered_cat, &q, 7), "parallel == serial: {}", &q);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sql_range_count_agrees_with_model(
        values in proptest::collection::vec(-1000i64..1000, 1..120),
        forget in proptest::collection::vec(0usize..1000, 0..40),
        lo in -1100i64..1100,
        width in 0i64..800,
    ) {
        let (db, model) = build(&values, &forget);
        let hi = lo + width;
        let expected = model
            .iter()
            .filter(|(v, active)| *active && *v >= lo && *v <= hi)
            .count() as i64;
        let sql = format!("SELECT COUNT(*) FROM t WHERE a BETWEEN {lo} AND {hi}");
        prop_assert_eq!(sql_scalar(&db, &sql), Datum::Int(expected));
    }

    #[test]
    fn sql_sum_agrees_with_model(
        values in proptest::collection::vec(-500i64..500, 1..100),
        forget in proptest::collection::vec(0usize..500, 0..30),
    ) {
        let (db, model) = build(&values, &forget);
        let expected: i64 = model.iter().filter(|(_, a)| *a).map(|(v, _)| v).sum();
        let active = model.iter().filter(|(_, a)| *a).count();
        match sql_scalar(&db, "SELECT SUM(a) FROM t") {
            Datum::Int(v) => prop_assert_eq!(v, expected),
            Datum::Null => prop_assert_eq!(active, 0),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------
// Morsel scheduler: SQL through ExecMode::Parallel == serial.
// ---------------------------------------------------------------------

use amnesia::engine::{ExecMode, Executor};
use amnesia::sql::run_with;

/// Run `sql` through an executor pinned to `threads` workers with small
/// morsels, so the few-thousand-row suite tables split into many
/// morsels per stage.
fn run_rows_at(catalog: &TestCatalog, sql: &str, threads: usize) -> Vec<Vec<Datum>> {
    let mode = if threads <= 1 {
        ExecMode::Serial
    } else {
        ExecMode::Parallel(threads)
    };
    let executor = Executor::default()
        .with_exec_mode(mode)
        .with_morsel_rows(128);
    match run_with(catalog, sql, &executor).unwrap() {
        QueryOutcome::Rows(rs) => rs.rows,
        QueryOutcome::Plan(p) => panic!("unexpected plan {p}"),
    }
}

/// Every SQL query shape, over every codec × block size × recompress
/// configuration, at 1/2/7/8 worker threads (non-power-of-two on
/// purpose: uneven morsel partitions are where merge-order bugs live):
/// the parallel rows must be byte-identical to the serial rows and to
/// the row-at-a-time reference.
#[test]
fn sql_parallel_equals_serial_across_tiers() {
    let mut rng = SimRng::new(0xC0FFEE);
    let rows: Vec<(i64, i64, i64)> = (0..3_000)
        .map(|i| ((i / 100) % 7, rng.range_i64(0, 120), rng.range_i64(0, 100)))
        .collect();
    let forget: Vec<usize> = (0..400).map(|_| rng.range_i64(0, 3_000) as usize).collect();
    for encoding in [
        None,
        Some(Encoding::Rle),
        Some(Encoding::Dict),
        Some(Encoding::ForPack),
        Some(Encoding::Delta),
    ] {
        for block_rows in [128usize, 1024] {
            for recompress in [false, true] {
                let (tiered, _) =
                    tiered_and_flat(&rows, &forget, block_rows, encoding, 0.7, recompress);
                let cat = TestCatalog {
                    tables: vec![("t".into(), tiered), ("u".into(), partner(1_500, true))],
                };
                for q in query_shapes(20, 90, 3) {
                    let serial = run_rows_at(&cat, &q, 1);
                    let ctx = format!(
                        "{encoding:?} block_rows={block_rows} recompress={recompress} q={q}"
                    );
                    assert_eq!(
                        serial,
                        run_rows(&cat, &q),
                        "pinned serial == default: {ctx}"
                    );
                    for threads in [2usize, 7, 8] {
                        assert_eq!(
                            run_rows_at(&cat, &q, threads),
                            serial,
                            "parallel ({threads} threads) == serial: {ctx}"
                        );
                    }
                }
            }
        }
    }
}

/// The zero-decode invariant survives parallel dispatch: a frozen-only
/// query fanned out over morsel workers must not decode a single block
/// more than the serial path (which decodes none).
#[test]
fn parallel_frozen_queries_decode_zero_blocks() {
    let mut rng = SimRng::new(7);
    let rows: Vec<(i64, i64, i64)> = (0..4_096)
        .map(|i| ((i / 512) % 8, rng.range_i64(0, 200), rng.range_i64(0, 50)))
        .collect();
    for encoding in [None, Some(Encoding::Rle), Some(Encoding::Dict)] {
        let (tiered, _) = tiered_and_flat(&rows, &[1, 65, 1030, 2049], 1024, encoding, 1.0, false);
        assert_eq!(tiered.col_tier(0).hot_values().len(), 0, "fully frozen");
        let cat = TestCatalog {
            tables: vec![("t".into(), tiered)],
        };
        let queries = [
            "SELECT g, COUNT(*) AS n, SUM(a) AS s FROM t \
             WHERE a BETWEEN 20 AND 150 AND b > 5 GROUP BY g ORDER BY s DESC",
            "SELECT COUNT(*), SUM(a), MIN(a), MAX(b), AVG(b) FROM t WHERE a >= 10 AND b <> 7",
            "SELECT a FROM t WHERE a BETWEEN 40 AND 45 AND b <= 20",
        ];
        for q in queries {
            let serial = run_rows_at(&cat, q, 1);
            for threads in [2usize, 8] {
                let before = block_decodes();
                let got = run_rows_at(&cat, q, threads);
                assert_eq!(
                    block_decodes(),
                    before,
                    "{encoding:?} {q}: parallel ({threads} threads) frozen SQL must not \
                     decode blocks"
                );
                assert_eq!(got, serial, "{encoding:?} {q} at {threads} threads");
            }
        }
    }
}
