//! Cross-crate checks: the SQL surface must agree exactly with the
//! engine kernels on the amnesiac visibility semantics.

use amnesia::engine::kernels;
use amnesia::prelude::*;
use amnesia::sql::{run, Datum, QueryOutcome};
use proptest::prelude::*;

/// One-table database plus a model vector of `(value, active)`.
fn build(values: &[i64], forget: &[usize]) -> (Database, Vec<(i64, bool)>) {
    let mut db = Database::new();
    let t = db.add_table("t", Schema::single("a"));
    db.table_mut(t).insert_batch(values, 0).unwrap();
    let mut model: Vec<(i64, bool)> = values.iter().map(|&v| (v, true)).collect();
    for &f in forget {
        if !values.is_empty() {
            let idx = f % values.len();
            db.table_mut(t).forget(RowId(idx as u64), 1).unwrap();
            model[idx].1 = false;
        }
    }
    (db, model)
}

fn sql_rows(db: &Database, sql: &str) -> Vec<Vec<Datum>> {
    match run(db, sql).unwrap() {
        QueryOutcome::Rows(rs) => rs.rows,
        QueryOutcome::Plan(p) => panic!("unexpected plan {p}"),
    }
}

fn sql_scalar(db: &Database, sql: &str) -> Datum {
    let rows = sql_rows(db, sql);
    assert_eq!(rows.len(), 1, "{sql}");
    rows[0][0]
}

#[test]
fn sql_count_matches_engine_kernel() {
    let values: Vec<i64> = (0..500).map(|i| (i * 37) % 1000).collect();
    let (db, _) = build(&values, &[1, 5, 9, 13, 200, 201, 499]);
    let table = db.table(db.table_id("t").unwrap());
    for (lo, hi) in [(0i64, 100i64), (250, 750), (990, 1000), (500, 500)] {
        let engine_count = kernels::count_active_matches(table, 0, RangePredicate::new(lo, hi));
        // SQL BETWEEN is inclusive: [lo, hi-1] == [lo, hi).
        let sql = format!("SELECT COUNT(*) FROM t WHERE a BETWEEN {lo} AND {}", hi - 1);
        assert_eq!(
            sql_scalar(&db, &sql),
            Datum::Int(engine_count as i64),
            "range [{lo}, {hi})"
        );
    }
}

#[test]
fn sql_avg_matches_engine_kernel() {
    let values: Vec<i64> = (0..300).map(|i| (i * 13) % 777).collect();
    let (db, _) = build(&values, &[2, 4, 8, 16, 32, 64, 128, 256]);
    let table = db.table(db.table_id("t").unwrap());
    let (engine_avg, _) =
        kernels::aggregate_active(table, 0, Some(RangePredicate::new(100, 600)), AggKind::Avg);
    match sql_scalar(&db, "SELECT AVG(a) FROM t WHERE a BETWEEN 100 AND 599") {
        Datum::Float(v) => {
            let expected = engine_avg.unwrap();
            assert!((v - expected).abs() < 1e-9, "sql {v} engine {expected}");
        }
        other => panic!("expected float, got {other:?}"),
    }
}

#[test]
fn forgotten_tuples_never_appear_in_sql_results() {
    let values: Vec<i64> = (0..100).collect();
    let (db, model) = build(&values, &[10, 20, 30, 40]);
    let rows = sql_rows(&db, "SELECT a FROM t ORDER BY a");
    let got: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    let expected: Vec<i64> = model
        .iter()
        .filter(|(_, active)| *active)
        .map(|(v, _)| *v)
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn sql_sees_the_simulator_store() {
    // The simulator's table is a plain columnar table: wire it into a
    // database and query it through SQL mid-simulation.
    let cfg = SimConfig::builder()
        .dbsize(200)
        .domain(10_000)
        .update_fraction(0.2)
        .batches(4)
        .queries_per_batch(20)
        .distribution(DistributionKind::Uniform)
        .policy(PolicyKind::Uniform)
        .seed(7)
        .build()
        .unwrap();
    let mut sim = Simulator::new(cfg).unwrap();
    for _ in 0..4 {
        sim.step().unwrap();
    }
    assert_eq!(sim.table().active_rows(), 200);

    let mut db = Database::new();
    let t = db.add_table("t", Schema::single("a"));
    // Rebuild from the simulator table's physical rows.
    let table = sim.table();
    for r in 0..table.num_rows() {
        let id = RowId::from(r);
        db.table_mut(t).insert(&[table.value(0, id)], 0).unwrap();
        if !table.activity().is_active(id) {
            db.table_mut(t).forget(id, 1).unwrap();
        }
    }
    let n = sql_scalar(&db, "SELECT COUNT(*) FROM t");
    assert_eq!(n, Datum::Int(200), "SQL sees exactly the active budget");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sql_range_count_agrees_with_model(
        values in proptest::collection::vec(-1000i64..1000, 1..120),
        forget in proptest::collection::vec(0usize..1000, 0..40),
        lo in -1100i64..1100,
        width in 0i64..800,
    ) {
        let (db, model) = build(&values, &forget);
        let hi = lo + width;
        let expected = model
            .iter()
            .filter(|(v, active)| *active && *v >= lo && *v <= hi)
            .count() as i64;
        let sql = format!("SELECT COUNT(*) FROM t WHERE a BETWEEN {lo} AND {hi}");
        prop_assert_eq!(sql_scalar(&db, &sql), Datum::Int(expected));
    }

    #[test]
    fn sql_sum_agrees_with_model(
        values in proptest::collection::vec(-500i64..500, 1..100),
        forget in proptest::collection::vec(0usize..500, 0..30),
    ) {
        let (db, model) = build(&values, &forget);
        let expected: i64 = model.iter().filter(|(_, a)| *a).map(|(v, _)| v).sum();
        let active = model.iter().filter(|(_, a)| *a).count();
        match sql_scalar(&db, "SELECT SUM(a) FROM t") {
            Datum::Int(v) => prop_assert_eq!(v, expected),
            Datum::Null => prop_assert_eq!(active, 0),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
