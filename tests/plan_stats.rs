//! Cost-based planning suites: estimation quality (bounded q-error
//! across value distributions, codecs and block sizes) and plan
//! equivalence (the cost-driven executor returns rows byte-identical to
//! the syntactic-order oracle, serial and parallel, with zero extra
//! block decodes).

use amnesia::columnar::compress::{block_decodes, Encoding};
use amnesia::columnar::{Schema, Table};
use amnesia::engine::exec::PlanTag;
use amnesia::engine::physical::JoinSpec;
use amnesia::engine::{
    q_error, ColPred, ColumnStats, CostModel, ExecMode, Executor, PhysItem, PhysScan, PhysicalPlan,
    PlanHint, SortDir,
};

/// Deterministic LCG so the suites never depend on an external RNG.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> i64 {
        (self.next() % n) as i64
    }
}

/// Build a single-column table, freeze every full block.
fn frozen_column(values: &[i64], block_rows: usize, enc: Option<Encoding>) -> Table {
    let mut t = Table::with_block_rows(Schema::single("v"), block_rows);
    if enc.is_some() {
        t.pin_encoding(0, enc);
    }
    t.insert_batch(values, 0).unwrap();
    t.freeze_upto((values.len() / block_rows) * block_rows);
    t
}

/// The value distributions of the estimation suite.
fn distributions(n: usize) -> Vec<(&'static str, Vec<i64>)> {
    let mut rng = Lcg(42);
    let uniform: Vec<i64> = (0..n).map(|_| rng.below(10_000)).collect();
    // Zipf-like skew: an inverse-power transform of a uniform variate
    // piles most of the mass on small values with a long tail.
    let zipf: Vec<i64> = (0..n)
        .map(|_| {
            let u = (rng.next() % 1_000_000) as f64 / 1_000_000.0;
            (10_000.0 * u * u * u) as i64
        })
        .collect();
    let sorted: Vec<i64> = (0..n as i64).collect();
    let constant: Vec<i64> = vec![7; n];
    vec![
        ("uniform", uniform),
        ("zipf", zipf),
        ("sorted", sorted),
        ("constant", constant),
    ]
}

#[test]
fn estimation_quality_bounded_q_error_across_shapes() {
    let n = 8192;
    let model = CostModel::default();
    let codecs = [None, Some(Encoding::ForPack), Some(Encoding::Dict)];
    let mut worst: (f64, String) = (1.0, String::new());
    for (dist, values) in distributions(n) {
        for block_rows in [256usize, 1024] {
            for enc in codecs {
                // Rle only for the shape it can encode well.
                let enc = if dist == "constant" {
                    Some(Encoding::Rle)
                } else {
                    enc
                };
                let t = frozen_column(&values, block_rows, enc);
                let stats = ColumnStats::from_tier(t.col_tier(0), &model);
                for (lo, hi) in [(0i64, 999), (0, 4999), (2500, 7499), (7, 7)] {
                    let p = ColPred::range(0, lo, hi);
                    let actual = values.iter().filter(|&&v| lo <= v && v <= hi).count();
                    let q = q_error(stats.estimate_pred(&p), actual as f64);
                    let ctx = format!(
                        "dist={dist} block_rows={block_rows} enc={enc:?} range=[{lo},{hi}]"
                    );
                    if q > worst.0 {
                        worst = (q, ctx.clone());
                    }
                    // Per-shape bounds: exact shapes must be near-exact,
                    // skewed shapes merely bounded. A *point* predicate
                    // on skewed data is the block-mass histogram's known
                    // blind spot (per-block mass spreads uniformly over
                    // `[min, max]`, so a heavy value inside a wide block
                    // dilutes) — bounded, but loosely.
                    let bound = match (dist, lo == hi) {
                        ("sorted" | "constant", _) => 2.0,
                        ("uniform", _) => 3.0,
                        ("zipf", true) => 64.0,
                        _ => 12.0,
                    };
                    assert!(q <= bound, "q-error {q:.2} over bound {bound}: {ctx}");
                }
            }
        }
    }
    eprintln!("worst q-error {:.2} at {}", worst.0, worst.1);
}

/// Three-column table (`g`, `a`, `b`): `g` cycles, `a` trends with the
/// row id (tight block metas), `b` is uniform noise (useless metas).
fn plan_table(n: usize, block_rows: usize, enc: Option<Encoding>) -> Table {
    let mut t = Table::with_block_rows(Schema::new(vec!["g", "a", "b"]), block_rows);
    if enc.is_some() {
        for c in 0..3 {
            t.pin_encoding(c, enc);
        }
    }
    let mut rng = Lcg(7);
    for i in 0..n as i64 {
        t.insert(&[i % 23, (i / 4) + rng.below(32), rng.below(1000)], 0)
            .unwrap();
    }
    t.freeze_upto((n / block_rows) * block_rows);
    let mut forget = Lcg(99);
    for _ in 0..n / 8 {
        let _ = t.forget(amnesia::columnar::RowId(forget.below(n as u64) as u64), 1);
    }
    t
}

fn multi_pred_plan(hint: PlanHint) -> PhysicalPlan {
    PhysicalPlan {
        scans: vec![PhysScan {
            // Written worst-first: the wide noise predicate leads, the
            // selective trending predicate trails.
            preds: vec![
                ColPred::range(2, 0, 899),
                ColPred::range(1, 100, 400),
                ColPred::range(0, 0, 20),
            ],
            label: "Scan t [active-only]".into(),
        }],
        join: None,
        items: vec![
            PhysItem::Column {
                slot: 0,
                col: 0,
                display: "g".into(),
            },
            PhysItem::Column {
                slot: 0,
                col: 1,
                display: "a".into(),
            },
        ],
        group_by: None,
        order_by: Some((1, SortDir::Asc)),
        limit: None,
        hint,
    }
}

#[test]
fn cost_based_scan_equals_syntactic_oracle() {
    for enc in [
        None,
        Some(Encoding::ForPack),
        Some(Encoding::Dict),
        Some(Encoding::Delta),
    ] {
        for block_rows in [256usize, 1024] {
            let t = plan_table(4096, block_rows, enc);
            let tables = [&t];
            let oracle = Executor::default()
                .with_exec_mode(ExecMode::Serial)
                .execute_plan(&tables, &[], &multi_pred_plan(PlanHint::SyntacticOrder));
            for mode in [ExecMode::Serial, ExecMode::Parallel(8)] {
                let before = block_decodes();
                let cost = Executor::default().with_exec_mode(mode).execute_plan(
                    &tables,
                    &[],
                    &multi_pred_plan(PlanHint::CostBased),
                );
                assert_eq!(
                    cost.rows, oracle.rows,
                    "cost-based != syntactic (enc={enc:?} block_rows={block_rows} mode={mode:?})"
                );
                assert_eq!(
                    block_decodes() - before,
                    0,
                    "cost-ordered scan decoded blocks (enc={enc:?} mode={mode:?})"
                );
                // The cost path must also record its estimates.
                assert!(!cost.stats.stage_estimates.is_empty());
                assert_eq!(cost.stats.pred_stats.len(), 3);
            }
            // The oracle records none.
            assert!(oracle.stats.stage_estimates.is_empty());
            assert!(oracle.stats.pred_stats.is_empty());
        }
    }
}

fn join_plan(hint: PlanHint, right_pred: bool) -> PhysicalPlan {
    PhysicalPlan {
        scans: vec![
            PhysScan {
                preds: vec![],
                label: "Scan parent [active-only]".into(),
            },
            PhysScan {
                preds: if right_pred {
                    vec![ColPred::range(1, 0, 600)]
                } else {
                    vec![]
                },
                label: "Scan child [active-only]".into(),
            },
        ],
        join: Some(JoinSpec {
            left_col: 0,
            right_col: 0,
            display: "parent.k = child.fk".into(),
        }),
        items: vec![
            PhysItem::Column {
                slot: 0,
                col: 1,
                display: "pv".into(),
            },
            PhysItem::Column {
                slot: 1,
                col: 1,
                display: "cv".into(),
            },
        ],
        group_by: None,
        order_by: None,
        limit: None,
        hint,
    }
}

/// parent(k, v) large, child(fk, v) small and filtered — the syntactic
/// build side (slot 0) is the *larger* side, so the cost model should
/// swap the build to slot 1 and still return identical pairs.
#[test]
fn join_build_side_swap_preserves_rows() {
    let mut parent = Table::with_block_rows(Schema::new(vec!["k", "v"]), 256);
    let mut child = Table::with_block_rows(Schema::new(vec!["fk", "v"]), 256);
    let mut rng = Lcg(5);
    for i in 0..4096i64 {
        parent.insert(&[i % 997, rng.below(1000)], 0).unwrap();
    }
    for _ in 0..512 {
        child.insert(&[rng.below(997), rng.below(1000)], 0).unwrap();
    }
    parent.freeze_upto(4096);
    child.freeze_upto(512);
    let tables = [&parent, &child];
    let oracle = Executor::default()
        .with_exec_mode(ExecMode::Serial)
        .execute_plan(&tables, &[], &join_plan(PlanHint::SyntacticOrder, true));
    for mode in [ExecMode::Serial, ExecMode::Parallel(8)] {
        let cost = Executor::default().with_exec_mode(mode).execute_plan(
            &tables,
            &[],
            &join_plan(PlanHint::CostBased, true),
        );
        assert_eq!(
            cost.rows, oracle.rows,
            "swapped build side changed rows ({mode:?})"
        );
        assert_eq!(
            cost.stats.build_side,
            Some(1),
            "expected the smaller filtered child as build side ({mode:?})"
        );
    }
    assert_eq!(oracle.stats.build_side, None);
}

/// Both join keys frozen-sorted: the cost-based executor takes the merge
/// path (no hash table), with pairs identical to the hash oracle, in
/// serial and parallel modes alike.
#[test]
fn merge_join_on_sorted_keys_matches_hash_oracle() {
    let mut parent = Table::with_block_rows(Schema::new(vec!["k", "v"]), 256);
    let mut child = Table::with_block_rows(Schema::new(vec!["fk", "v"]), 256);
    let mut rng = Lcg(11);
    for i in 0..2048i64 {
        parent.insert(&[i, rng.below(1000)], 0).unwrap();
    }
    // Sorted foreign keys (each parent key 0..=1023 twice).
    for i in 0..2048i64 {
        child.insert(&[i / 2, rng.below(1000)], 0).unwrap();
    }
    parent.freeze_upto(2048);
    child.freeze_upto(2048);
    assert!(parent.col_tier(0).sorted_hint() && child.col_tier(0).sorted_hint());
    let tables = [&parent, &child];
    let oracle = Executor::default()
        .with_exec_mode(ExecMode::Serial)
        .execute_plan(&tables, &[], &join_plan(PlanHint::SyntacticOrder, false));
    for mode in [ExecMode::Serial, ExecMode::Parallel(8)] {
        let cost = Executor::default().with_exec_mode(mode).execute_plan(
            &tables,
            &[],
            &join_plan(PlanHint::CostBased, false),
        );
        assert_eq!(cost.rows, oracle.rows, "merge join changed rows ({mode:?})");
        assert_eq!(
            cost.stats.plan,
            PlanTag::MergeJoin,
            "expected merge join ({mode:?})"
        );
        assert_eq!(cost.stats.join_pairs, oracle.stats.join_pairs);
    }
}

/// The executed-EXPLAIN renderer surfaces estimates, actuals, the
/// chosen predicate order and per-predicate pruning.
#[test]
fn explain_executed_prints_estimates_and_cost_order() {
    let t = plan_table(4096, 256, None);
    let tables = [&t];
    let plan = multi_pred_plan(PlanHint::CostBased);
    let result = Executor::default()
        .with_exec_mode(ExecMode::Serial)
        .execute_plan(&tables, &[], &plan);
    let text = plan.explain_executed(Some(&tables), &result.stats);
    assert!(text.contains("est≈"), "{text}");
    assert!(text.contains("act="), "{text}");
    assert!(text.contains("cost-order:"), "{text}");
    assert!(text.contains("pruned"), "{text}");
    // Estimates track actuals on this table.
    for e in &result.stats.stage_estimates {
        assert!(
            q_error(e.est_rows, e.actual_rows as f64) < 8.0,
            "stage {} est {} vs act {}",
            e.label,
            e.est_rows,
            e.actual_rows
        );
    }
}

/// Satellite: per-block access counters tick when frozen blocks survive
/// pruning and are actually scanned.
#[test]
fn block_access_counters_tick_on_scans() {
    let t = plan_table(4096, 256, None);
    let before = t.block_accesses();
    let tables = [&t];
    let _ = Executor::default()
        .with_exec_mode(ExecMode::Serial)
        .execute_plan(&tables, &[], &multi_pred_plan(PlanHint::CostBased));
    assert!(
        t.block_accesses() > before,
        "scanning frozen blocks must bump the access counters"
    );
}
