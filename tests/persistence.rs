//! Property tests of the durability layer: snapshots are lossless,
//! recovery equals the live state, and damage only ever truncates
//! history (never corrupts it silently).

use amnesia::columnar::persist::{replay, snapshot, PersistentTable, Wal, WalRecord};
use amnesia::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "amn-proptest-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Apply a scripted workload to both a plain table and a persistent one.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Forget(usize),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec(-10_000i64..10_000, 1..20).prop_map(Op::Insert),
        4 => (0usize..10_000).prop_map(Op::Forget),
        1 => Just(Op::Checkpoint),
    ]
}

fn tables_equal(a: &Table, b: &Table) -> bool {
    if a.num_rows() != b.num_rows() || a.active_rows() != b.active_rows() {
        return false;
    }
    (0..a.num_rows()).all(|r| {
        let id = RowId::from(r);
        a.value(0, id) == b.value(0, id)
            && a.insert_epoch(id) == b.insert_epoch(id)
            && a.activity().is_active(id) == b.activity().is_active(id)
            && a.activity().died_at(id) == b.activity().died_at(id)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_round_trip_is_lossless(
        values in proptest::collection::vec(-100_000i64..100_000, 0..300),
        forget in proptest::collection::vec(0usize..1000, 0..80),
        touches in proptest::collection::vec(0usize..1000, 0..40),
    ) {
        let mut t = Table::new(Schema::single("a"));
        if !values.is_empty() {
            t.insert_batch(&values, 0).unwrap();
        }
        for (i, &f) in forget.iter().enumerate() {
            if !values.is_empty() {
                let _ = t.forget(RowId((f % values.len()) as u64), 1 + (i as u64 % 3));
            }
        }
        for &x in &touches {
            if !values.is_empty() {
                t.access_mut().touch(RowId((x % values.len()) as u64), 2);
            }
        }
        let restored = snapshot::decode(&snapshot::encode(&t)).unwrap();
        prop_assert!(tables_equal(&t, &restored));
        // Access stats round-trip too.
        for r in 0..t.num_rows() {
            let id = RowId::from(r);
            prop_assert_eq!(t.access().frequency(id), restored.access().frequency(id));
        }
    }

    #[test]
    fn recovery_equals_live_state(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let dir = tmp_dir("rec");
        let mut reference = Table::new(Schema::single("a"));
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        let mut epoch = 0u64;
        for op in &ops {
            match op {
                Op::Insert(values) => {
                    reference.insert_batch(values, epoch).unwrap();
                    pt.insert_batch(values, epoch).unwrap();
                    epoch += 1;
                }
                Op::Forget(i) => {
                    if reference.num_rows() > 0 {
                        let row = RowId((i % reference.num_rows()) as u64);
                        reference.forget(row, epoch).unwrap();
                        pt.forget(row, epoch).unwrap();
                    }
                }
                Op::Checkpoint => pt.checkpoint().unwrap(),
            }
        }
        pt.sync().unwrap();
        drop(pt);
        let recovered = PersistentTable::open(&dir).unwrap();
        prop_assert!(recovered.recovered_clean());
        prop_assert!(tables_equal(&reference, recovered.table()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_wal_yields_a_strict_prefix(
        n_records in 1usize..12,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmp_dir("cut");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.wal");
        let mut wal = Wal::open(&path).unwrap();
        let records: Vec<WalRecord> = (0..n_records)
            .map(|i| {
                if i % 3 == 2 {
                    WalRecord::Forget { epoch: i as u64, row: RowId(i as u64) }
                } else {
                    WalRecord::Insert {
                        epoch: i as u64,
                        rows: vec![vec![i as i64, -(i as i64)]],
                    }
                }
            })
            .collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let outcome = replay(&path).unwrap();
        // Prefix property: recovered records exactly match the head of
        // what was written.
        prop_assert_eq!(&records[..outcome.records.len()], &outcome.records[..]);
        prop_assert!(outcome.valid_bytes as usize <= cut);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn persistent_amnesia_loop_survives_restarts() {
    // Run the paper's fixed-budget loop, restarting from disk every
    // other batch: the precision story must be unaffected by crashes.
    let dir = tmp_dir("loop");
    let dbsize = 150usize;
    let mut rng = SimRng::new(99);
    let mut policy = PolicyKind::Uniform.build();
    let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
    let mut next = 0i64;
    let values: Vec<i64> = (0..dbsize as i64).collect();
    next += dbsize as i64;
    pt.insert_batch(&values, 0).unwrap();
    for b in 1..=6u64 {
        let fresh: Vec<i64> = (next..next + 30).collect();
        next += 30;
        pt.insert_batch(&fresh, b).unwrap();
        let excess = pt.table().active_rows() - dbsize;
        let victims = {
            let ctx = PolicyContext {
                table: pt.table(),
                epoch: b,
            };
            policy.select_victims(&ctx, excess, &mut rng)
        };
        for v in victims {
            pt.forget(v, b).unwrap();
        }
        assert_eq!(
            pt.table().active_rows(),
            dbsize,
            "budget holds at batch {b}"
        );
        pt.sync().unwrap();
        if b % 2 == 0 {
            // "Crash" and recover.
            pt.checkpoint().unwrap();
            drop(pt);
            pt = PersistentTable::open(&dir).unwrap();
            assert!(pt.recovered_clean());
            assert_eq!(pt.table().active_rows(), dbsize, "budget survives restart");
        }
    }
    assert_eq!(pt.table().num_rows(), dbsize + 6 * 30);
    std::fs::remove_dir_all(&dir).ok();
}

/// Backward compat: a checked-in version-1 (pre-tier) snapshot must keep
/// loading into a fully-hot table. The fixture was written by the PR-2
/// era encoder (preserved as `encode_v1` in the snapshot unit tests):
/// a 500-row two-column table, every 7th row forgotten at epoch 3, every
/// 11th row touched twice.
#[test]
fn v1_pre_tier_snapshot_fixture_still_loads() {
    let bytes = include_bytes!("fixtures/v1_pre_tier.snap");
    let t = snapshot::decode(bytes).expect("v1 fixture must decode");
    assert_eq!(t.num_rows(), 500);
    assert_eq!(t.schema().arity(), 2);
    assert_eq!(t.schema().index_of("k"), Some(0));
    assert_eq!(t.schema().index_of("v"), Some(1));
    assert!(!t.has_frozen(), "v1 predates tiering: restore is fully hot");
    assert_eq!(t.forgotten_rows(), 500usize.div_ceil(7));
    // Column k held 0..500 serially; spot-check values and marks.
    assert_eq!(t.value(0, RowId(123)), 123);
    assert!(!t.activity().is_active(RowId(0)), "row 0 was forgotten");
    assert_eq!(t.activity().died_at(RowId(7)), Some(3));
    assert!(t.activity().is_active(RowId(1)));
    assert_eq!(t.access().frequency(RowId(11)), 2.0);
    assert_eq!(t.max_seen(0), Some(499));
    // The restored table round-trips through the *current* format and
    // can immediately freeze — the tier machinery owns it from here.
    let mut again = snapshot::decode(&snapshot::encode(&t)).unwrap();
    assert_eq!(again.num_rows(), t.num_rows());
    assert_eq!(again.active_rows(), t.active_rows());
    for r in 0..t.num_rows() {
        let id = RowId::from(r);
        assert_eq!(again.value(0, id), t.value(0, id));
        assert_eq!(again.value(1, id), t.value(1, id));
    }
    for i in 500..1100i64 {
        again.insert(&[i, 0], 5).unwrap();
    }
    again.freeze_upto(1024);
    assert!(again.has_frozen());
    assert_eq!(again.value(0, RowId(123)), 123);
}
