//! Property tests of the durability layer: snapshots are lossless,
//! recovery equals the live state, and damage only ever truncates
//! history (never corrupts it silently).
//!
//! The fault-injection half drives the segmented WAL through scripted
//! crashes ([`FaultVfs`]) at every storage-operation boundary and checks
//! the two invariants the tentpole promises: recovery lands on exactly
//! the acknowledged prefix (tier layout included), and a shredded drop
//! leaves no forgotten value's encoded bytes anywhere in the directory.

use amnesia::columnar::persist::{
    recover_segments, replay, snapshot, Fault, FaultKind, FaultVfs, PersistentTable, SegmentedWal,
    SharedVfs, StdVfs, SyncPolicy, Wal, WalRecord,
};
use amnesia::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "amn-proptest-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Apply a scripted workload to both a plain table and a persistent one.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<i64>),
    Forget(usize),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec(-10_000i64..10_000, 1..20).prop_map(Op::Insert),
        4 => (0usize..10_000).prop_map(Op::Forget),
        1 => Just(Op::Checkpoint),
    ]
}

fn tables_equal(a: &Table, b: &Table) -> bool {
    if a.num_rows() != b.num_rows() || a.active_rows() != b.active_rows() {
        return false;
    }
    (0..a.num_rows()).all(|r| {
        let id = RowId::from(r);
        a.value(0, id) == b.value(0, id)
            && a.insert_epoch(id) == b.insert_epoch(id)
            && a.activity().is_active(id) == b.activity().is_active(id)
            && a.activity().died_at(id) == b.activity().died_at(id)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_round_trip_is_lossless(
        values in proptest::collection::vec(-100_000i64..100_000, 0..300),
        forget in proptest::collection::vec(0usize..1000, 0..80),
        touches in proptest::collection::vec(0usize..1000, 0..40),
    ) {
        let mut t = Table::new(Schema::single("a"));
        if !values.is_empty() {
            t.insert_batch(&values, 0).unwrap();
        }
        for (i, &f) in forget.iter().enumerate() {
            if !values.is_empty() {
                let _ = t.forget(RowId((f % values.len()) as u64), 1 + (i as u64 % 3));
            }
        }
        for &x in &touches {
            if !values.is_empty() {
                t.access_mut().touch(RowId((x % values.len()) as u64), 2);
            }
        }
        let restored = snapshot::decode(&snapshot::encode(&t)).unwrap();
        prop_assert!(tables_equal(&t, &restored));
        // Access stats round-trip too.
        for r in 0..t.num_rows() {
            let id = RowId::from(r);
            prop_assert_eq!(t.access().frequency(id), restored.access().frequency(id));
        }
    }

    #[test]
    fn recovery_equals_live_state(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let dir = tmp_dir("rec");
        let mut reference = Table::new(Schema::single("a"));
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        let mut epoch = 0u64;
        for op in &ops {
            match op {
                Op::Insert(values) => {
                    reference.insert_batch(values, epoch).unwrap();
                    pt.insert_batch(values, epoch).unwrap();
                    epoch += 1;
                }
                Op::Forget(i) => {
                    if reference.num_rows() > 0 {
                        let row = RowId((i % reference.num_rows()) as u64);
                        reference.forget(row, epoch).unwrap();
                        pt.forget(row, epoch).unwrap();
                    }
                }
                Op::Checkpoint => pt.checkpoint().unwrap(),
            }
        }
        pt.sync().unwrap();
        drop(pt);
        let recovered = PersistentTable::open(&dir).unwrap();
        prop_assert!(recovered.recovered_clean());
        prop_assert!(tables_equal(&reference, recovered.table()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_wal_yields_a_strict_prefix(
        n_records in 1usize..12,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmp_dir("cut");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.wal");
        let mut wal = Wal::open(&path).unwrap();
        let records: Vec<WalRecord> = (0..n_records)
            .map(|i| {
                if i % 3 == 2 {
                    WalRecord::Forget { epoch: i as u64, row: RowId(i as u64) }
                } else {
                    WalRecord::Insert {
                        epoch: i as u64,
                        rows: vec![vec![i as i64, -(i as i64)]],
                    }
                }
            })
            .collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let outcome = replay(&path).unwrap();
        // Prefix property: recovered records exactly match the head of
        // what was written.
        prop_assert_eq!(&records[..outcome.records.len()], &outcome.records[..]);
        prop_assert!(outcome.valid_bytes as usize <= cut);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn persistent_amnesia_loop_survives_restarts() {
    // Run the paper's fixed-budget loop, restarting from disk every
    // other batch: the precision story must be unaffected by crashes.
    let dir = tmp_dir("loop");
    let dbsize = 150usize;
    let mut rng = SimRng::new(99);
    let mut policy = PolicyKind::Uniform.build();
    let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
    let mut next = 0i64;
    let values: Vec<i64> = (0..dbsize as i64).collect();
    next += dbsize as i64;
    pt.insert_batch(&values, 0).unwrap();
    for b in 1..=6u64 {
        let fresh: Vec<i64> = (next..next + 30).collect();
        next += 30;
        pt.insert_batch(&fresh, b).unwrap();
        let excess = pt.table().active_rows() - dbsize;
        let victims = {
            let ctx = PolicyContext {
                table: pt.table(),
                epoch: b,
            };
            policy.select_victims(&ctx, excess, &mut rng)
        };
        for v in victims {
            pt.forget(v, b).unwrap();
        }
        assert_eq!(
            pt.table().active_rows(),
            dbsize,
            "budget holds at batch {b}"
        );
        pt.sync().unwrap();
        if b % 2 == 0 {
            // "Crash" and recover.
            pt.checkpoint().unwrap();
            drop(pt);
            pt = PersistentTable::open(&dir).unwrap();
            assert!(pt.recovered_clean());
            assert_eq!(pt.table().active_rows(), dbsize, "budget survives restart");
        }
    }
    assert_eq!(pt.table().num_rows(), dbsize + 6 * 30);
    std::fs::remove_dir_all(&dir).ok();
}

/// Backward compat: a checked-in version-1 (pre-tier) snapshot must keep
/// loading into a fully-hot table. The fixture was written by the PR-2
/// era encoder (preserved as `encode_v1` in the snapshot unit tests):
/// a 500-row two-column table, every 7th row forgotten at epoch 3, every
/// 11th row touched twice.
#[test]
fn v1_pre_tier_snapshot_fixture_still_loads() {
    let bytes = include_bytes!("fixtures/v1_pre_tier.snap");
    let t = snapshot::decode(bytes).expect("v1 fixture must decode");
    assert_eq!(t.num_rows(), 500);
    assert_eq!(t.schema().arity(), 2);
    assert_eq!(t.schema().index_of("k"), Some(0));
    assert_eq!(t.schema().index_of("v"), Some(1));
    assert!(!t.has_frozen(), "v1 predates tiering: restore is fully hot");
    assert_eq!(t.forgotten_rows(), 500usize.div_ceil(7));
    // Column k held 0..500 serially; spot-check values and marks.
    assert_eq!(t.value(0, RowId(123)), 123);
    assert!(!t.activity().is_active(RowId(0)), "row 0 was forgotten");
    assert_eq!(t.activity().died_at(RowId(7)), Some(3));
    assert!(t.activity().is_active(RowId(1)));
    assert_eq!(t.access().frequency(RowId(11)), 2.0);
    assert_eq!(t.max_seen(0), Some(499));
    // The restored table round-trips through the *current* format and
    // can immediately freeze — the tier machinery owns it from here.
    let mut again = snapshot::decode(&snapshot::encode(&t)).unwrap();
    assert_eq!(again.num_rows(), t.num_rows());
    assert_eq!(again.active_rows(), t.active_rows());
    for r in 0..t.num_rows() {
        let id = RowId::from(r);
        assert_eq!(again.value(0, id), t.value(0, id));
        assert_eq!(again.value(1, id), t.value(1, id));
    }
    for i in 500..1100i64 {
        again.insert(&[i, 0], 5).unwrap();
    }
    again.freeze_upto(1024);
    assert!(again.has_frozen());
    assert_eq!(again.value(0, RowId(123)), 123);
}

// ---------------------------------------------------------------------------
// Segmented WAL: torn tails across record kinds and segment boundaries.
// ---------------------------------------------------------------------------

fn any_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        3 => (0u64..5, proptest::collection::vec(proptest::collection::vec(-1000i64..1000, 2), 1..4))
            .prop_map(|(epoch, rows)| WalRecord::Insert { epoch, rows }),
        // ≥ 8 rows takes the columnar compressed body path.
        2 => (0u64..5, proptest::collection::vec(-1_000_000i64..1_000_000, 10..40))
            .prop_map(|(epoch, vals)| WalRecord::Insert {
                epoch,
                rows: vals.into_iter().map(|v| vec![v, v ^ 7]).collect(),
            }),
        2 => (0u64..5, 0u64..1000).prop_map(|(epoch, row)| WalRecord::Forget { epoch, row: RowId(row) }),
        1 => (0usize..5000).prop_map(|upto| WalRecord::Freeze { upto }),
        1 => Just(WalRecord::DropBlocks),
        1 => (0u32..=100).prop_map(|x| WalRecord::Recompress { max_active_fraction: x as f64 / 100.0 }),
        1 => (0u64..50).prop_map(|s| WalRecord::Checkpoint { through_seqno: s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cut the newest segment at *any* byte: recovery yields an exact
    /// prefix of what was appended, whatever mix of record kinds the log
    /// held and wherever the segment boundaries fell.
    #[test]
    fn segmented_torn_tail_is_a_prefix_over_all_record_kinds(
        records in proptest::collection::vec(any_record(), 1..25),
        seg_bytes in 96u64..400,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmp_dir("segcut");
        let vfs: SharedVfs = StdVfs::shared();
        let mut wal = SegmentedWal::create(vfs.clone(), &dir, 1).unwrap();
        wal.set_segment_bytes(seg_bytes);
        for r in &records {
            wal.append(r, 0).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        segs.sort();
        let last = segs.last().unwrap();
        let bytes = std::fs::read(last).unwrap();
        let keep = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(last, &bytes[..keep]).unwrap();
        let rec = recover_segments(vfs, &dir, 0, seg_bytes).unwrap();
        prop_assert!(rec.records.len() <= records.len());
        prop_assert_eq!(&records[..rec.records.len()], &rec.records[..]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Crash matrix: scripted faults at storage-operation boundaries.
// ---------------------------------------------------------------------------

/// One logical operation of a durable-table workload.
#[derive(Clone, Debug)]
enum WOp {
    Insert(u64, Vec<i64>),
    Forget(u64, u64),
    Freeze(usize),
    Drop,
    Recompress(f64),
    Checkpoint,
}

fn apply_wop(pt: &mut PersistentTable, op: &WOp) -> Result<()> {
    match op {
        WOp::Insert(e, vs) => pt.insert_batch(vs, *e).map(|_| ()),
        WOp::Forget(e, r) => pt.forget(RowId(*r), *e).map(|_| ()),
        WOp::Freeze(u) => pt.freeze_upto(*u).map(|_| ()),
        WOp::Drop => pt.drop_forgotten_blocks().map(|_| ()),
        WOp::Recompress(f) => pt.recompress_frozen(*f).map(|_| ()),
        WOp::Checkpoint => pt.checkpoint(),
    }
}

/// Replay an op prefix on a plain in-memory table: the state recovery is
/// expected to reproduce. Returns (table, blocks_dropped,
/// blocks_recompressed).
fn reference_state(ops: &[WOp], block_rows: usize) -> (Table, u64, u64) {
    let mut t = Table::with_block_rows(Schema::single("a"), block_rows);
    let (mut dropped, mut recompressed) = (0u64, 0u64);
    for op in ops {
        match op {
            WOp::Insert(e, vs) => {
                t.insert_batch(vs, *e).unwrap();
            }
            WOp::Forget(e, r) => {
                let _ = t.forget(RowId(*r), *e).unwrap();
            }
            WOp::Freeze(u) => {
                t.freeze_upto(*u);
            }
            WOp::Drop => {
                let (d, _) = t.drop_forgotten_blocks();
                dropped += d as u64;
            }
            WOp::Recompress(f) => {
                let (r, _) = t.recompress_frozen(*f);
                recompressed += r as u64;
            }
            WOp::Checkpoint => {}
        }
    }
    (t, dropped, recompressed)
}

/// Row values + activity + tier layout must all agree.
fn states_equal(a: &Table, b: &Table) -> bool {
    tables_equal(a, b)
        && a.frozen_blocks() == b.frozen_blocks()
        && a.dropped_rows() == b.dropped_rows()
        && a.bytes_frozen() == b.bytes_frozen()
}

/// A workload that exercises every WAL record kind against 64-row tier
/// blocks: bulk + trickle inserts, a dead block, a rotten block, a
/// checkpoint, and post-checkpoint tail work.
fn tier_workload() -> Vec<WOp> {
    let mut ops = Vec::new();
    ops.push(WOp::Insert(0, (0..200).collect()));
    ops.push(WOp::Insert(1, (200..205).collect()));
    for r in 0..64 {
        ops.push(WOp::Forget(1, r)); // block 0 fully dead
    }
    ops.push(WOp::Freeze(192));
    ops.push(WOp::Drop);
    for r in (64..128).filter(|r| r % 2 == 0) {
        ops.push(WOp::Forget(2, r)); // rot block 1
    }
    ops.push(WOp::Recompress(0.6));
    ops.push(WOp::Insert(2, (205..260).collect()));
    ops.push(WOp::Checkpoint);
    for r in 130..140 {
        ops.push(WOp::Forget(3, r));
    }
    ops
}

/// Run `ops` against a fault-injected backend, then recover with the
/// real backend and demand the recovered state equals either the
/// acknowledged prefix or acknowledged + the one in-flight op.
fn check_crash_point(ops: &[WOp], fault: Fault, block_rows: usize, tag: &str) {
    let dir = tmp_dir(tag);
    let fvfs = Arc::new(FaultVfs::with_faults(vec![fault]));
    let shared: SharedVfs = fvfs.clone();
    let table = Table::with_block_rows(Schema::single("a"), block_rows);
    let mut acked = 0usize;
    let mut inflight = false;
    match PersistentTable::create_with_table(shared, &dir, table, SyncPolicy::PerRecord) {
        Ok(mut pt) => {
            for op in ops {
                match apply_wop(&mut pt, op) {
                    Ok(()) => acked += 1,
                    Err(_) => {
                        inflight = true;
                        break;
                    }
                }
            }
        }
        Err(_) => {
            // The crash hit table creation itself: recovery may find a
            // valid empty table or (pre-snapshot) nothing at all.
            if let Ok(rec) = PersistentTable::open(&dir) {
                assert_eq!(rec.table().num_rows(), 0, "fault {fault:?}");
            }
            std::fs::remove_dir_all(&dir).ok();
            return;
        }
    }
    let rec = PersistentTable::open(&dir)
        .unwrap_or_else(|e| panic!("recovery after fault {fault:?} must succeed: {e}"));
    let mut prefixes = vec![&ops[..acked]];
    if inflight {
        prefixes.push(&ops[..acked + 1]);
    }
    let matched = prefixes.iter().any(|p| {
        let (t, d, r) = reference_state(p, block_rows);
        states_equal(&t, rec.table()) && d == rec.blocks_dropped() && r == rec.blocks_recompressed()
    });
    assert!(
        matched,
        "fault {fault:?}: recovered state (rows {}, frozen {}, dropped-blocks {}) \
         matches neither the {acked}-op acked prefix nor the in-flight op",
        rec.table().num_rows(),
        rec.table().frozen_blocks(),
        rec.blocks_dropped(),
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Count the storage ops the workload performs when nothing fails.
fn recorded_op_count(ops: &[WOp], block_rows: usize, tag: &str) -> usize {
    let dir = tmp_dir(tag);
    let fvfs = Arc::new(FaultVfs::new());
    let shared: SharedVfs = fvfs.clone();
    let table = Table::with_block_rows(Schema::single("a"), block_rows);
    let mut pt = PersistentTable::create_with_table(shared, &dir, table, SyncPolicy::PerRecord)
        .expect("recording run");
    for op in ops {
        apply_wop(&mut pt, op).expect("recording run");
    }
    drop(pt);
    let n = fvfs.op_count() as usize;
    std::fs::remove_dir_all(&dir).ok();
    n
}

/// Crash at a spread of storage-operation boundaries across the tiering
/// workload — every tier transition, the shred, the checkpoint and the
/// appends all get hit. The full every-op sweep runs in the env-gated
/// torture test below.
#[test]
fn crash_points_recover_the_acknowledged_prefix_and_tier_layout() {
    let ops = tier_workload();
    let n = recorded_op_count(&ops, 64, "cm-rec");
    assert!(n > 50, "workload too small to matter: {n} storage ops");
    let stride = (n / 48).max(1);
    for k in (0..n).step_by(stride) {
        check_crash_point(
            &ops,
            Fault {
                at_op: k as u64,
                kind: FaultKind::Crash,
            },
            64,
            "cm-crash",
        );
        check_crash_point(
            &ops,
            Fault {
                at_op: k as u64,
                kind: FaultKind::TornWrite { keep: 3 },
            },
            64,
            "cm-torn",
        );
    }
}

/// Full fault matrix, every storage op × {crash, torn, error}, over a
/// seeded random workload. Heavy: run with
/// `AMNESIA_FAULT_MATRIX=<seed> cargo test --test persistence -- --ignored`.
#[test]
#[ignore = "torture leg: set AMNESIA_FAULT_MATRIX and run with --ignored"]
fn fault_matrix_torture() {
    let seed: u64 = std::env::var("AMNESIA_FAULT_MATRIX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC1DA);
    let mut rng = SimRng::new(seed);
    let mut ops = Vec::new();
    let mut rows = 0u64;
    let mut epoch = 0u64;
    for _ in 0..120 {
        match rng.next_u64() % 10 {
            0..=3 => {
                let n = 1 + rng.next_u64() % 40;
                ops.push(WOp::Insert(
                    epoch,
                    (0..n).map(|i| (rows + i) as i64 * 3 - 50).collect(),
                ));
                rows += n;
                epoch += 1;
            }
            4..=6 => {
                if rows > 0 {
                    ops.push(WOp::Forget(epoch, rng.next_u64() % rows));
                }
            }
            7 => ops.push(WOp::Freeze((rng.next_u64() % (rows + 1)) as usize)),
            8 => ops.push(WOp::Drop),
            _ => {
                if rng.next_u64().is_multiple_of(2) {
                    ops.push(WOp::Recompress(0.5));
                } else {
                    ops.push(WOp::Checkpoint);
                }
            }
        }
    }
    let n = recorded_op_count(&ops, 64, "torture-rec");
    for k in 0..n {
        check_crash_point(
            &ops,
            Fault {
                at_op: k as u64,
                kind: FaultKind::Crash,
            },
            64,
            "torture-crash",
        );
        check_crash_point(
            &ops,
            Fault {
                at_op: k as u64,
                kind: FaultKind::TornWrite { keep: 5 },
            },
            64,
            "torture-torn",
        );
        check_crash_point(
            &ops,
            Fault {
                at_op: k as u64,
                kind: FaultKind::Error,
            },
            64,
            "torture-err",
        );
    }
}

// ---------------------------------------------------------------------------
// Shredding: forgotten values must not survive anywhere in the directory.
// ---------------------------------------------------------------------------

/// The WAL's zigzag-LEB128 encoding of `v` (mirrors
/// `compress::varint::write_signed`).
fn zigzag_bytes(v: i64) -> Vec<u8> {
    let mut u = ((v << 1) ^ (v >> 63)) as u64;
    let mut out = Vec::new();
    loop {
        let b = (u & 0x7F) as u8;
        u >>= 7;
        if u == 0 {
            out.push(b);
            return out;
        }
        out.push(b | 0x80);
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

fn dir_files(dir: &std::path::Path) -> Vec<(PathBuf, Vec<u8>)> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .map(|p| {
            let bytes = std::fs::read(&p).unwrap();
            (p, bytes)
        })
        .collect()
}

#[test]
fn shred_leaves_no_forgotten_value_bytes_in_the_directory() {
    let dir = tmp_dir("shred-scan");
    let table = Table::with_block_rows(Schema::single("a"), 64);
    let mut pt =
        PersistentTable::create_with_table(StdVfs::shared(), &dir, table, SyncPolicy::PerRecord)
            .unwrap();
    // High-entropy sentinels: every zigzag encoding is 8–9 distinctive
    // bytes, so a directory scan can prove presence and absence. Bits
    // 61–63 are masked off so no sentinel becomes the column's global
    // min/max-seen — those two values are the paper's sanctioned
    // "summary" of forgotten data and legitimately persist.
    let sentinels: Vec<i64> = (0..64u64)
        .map(|i| {
            ((0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(0x0DDB_1A5E))
                & 0x0FFF_FFFF_FFFF_FFFF)
                | 0x0100_0000_0000_0000) as i64
        })
        .collect();
    // One row per record: the row-major WAL body carries each value's
    // zigzag varint verbatim.
    for (i, &s) in sentinels.iter().enumerate() {
        pt.insert(&[s], i as u64).unwrap();
    }
    // A hot tail of survivors behind the sentinel block, bracketing the
    // sentinels so they never own the column-level min/max summary.
    pt.insert_batch(&(0..62).collect::<Vec<i64>>(), 99).unwrap();
    pt.insert(&[i64::MAX - 1], 99).unwrap();
    pt.insert(&[i64::MIN + 1], 99).unwrap();
    pt.sync().unwrap();
    // The log currently holds every sentinel's encoding.
    let files = dir_files(&dir);
    for &s in &sentinels {
        assert!(
            files.iter().any(|(_, b)| contains(b, &zigzag_bytes(s))),
            "sentinel {s:#x} should be on disk before the drop"
        );
    }
    // Forget the whole sentinel block, freeze it, drop it: the drop
    // rewrites the snapshot and shreds every covered segment.
    for r in 0..64 {
        pt.forget(RowId(r), 100).unwrap();
    }
    pt.freeze_upto(64).unwrap();
    let (blocks, _) = pt.drop_forgotten_blocks().unwrap();
    assert_eq!(blocks, 1, "the sentinel block must drop");
    assert!(pt.stats().segments_shredded > 0, "drop must shred");
    drop(pt);
    // Scan every byte of every file left in the directory: neither the
    // varint nor the raw little-endian encoding of any sentinel survives.
    for (path, bytes) in dir_files(&dir) {
        for &s in &sentinels {
            assert!(
                !contains(&bytes, &zigzag_bytes(s)),
                "sentinel {s:#x} varint survives in {}",
                path.display()
            );
            assert!(
                !contains(&bytes, &s.to_le_bytes()),
                "sentinel {s:#x} LE bytes survive in {}",
                path.display()
            );
        }
    }
    // The survivors did survive.
    let rec = PersistentTable::open(&dir).unwrap();
    assert_eq!(rec.table().num_rows(), 128);
    assert_eq!(rec.table().active_rows(), 64);
    assert_eq!(rec.table().value(0, RowId(100)), 36);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Torn-tail repair happens in place (no read-whole-file rewrite).
// ---------------------------------------------------------------------------

#[test]
fn torn_tail_repair_truncates_in_place() {
    let dir = tmp_dir("repair");
    let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
    for i in 0..20 {
        pt.insert(&[i], 0).unwrap();
    }
    pt.sync().unwrap();
    drop(pt);
    // Tear the newest segment three bytes short (inside the last frame's
    // CRC).
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    let seg = segs.last().unwrap();
    let len = std::fs::metadata(seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(seg).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);
    // Reopen through a recording FaultVfs: the repair must be an
    // in-place truncate of the segment, never a read-and-rewrite.
    let fvfs = Arc::new(FaultVfs::new());
    let shared: SharedVfs = fvfs.clone();
    let rec = PersistentTable::open_with(shared, &dir).unwrap();
    assert!(!rec.recovered_clean(), "a record was torn");
    assert_eq!(rec.table().num_rows(), 19, "the torn record is gone");
    let log = fvfs.op_log();
    assert!(
        log.iter()
            .any(|l| l.starts_with("truncate") && l.contains(".seg")),
        "repair must truncate in place: {log:?}"
    );
    assert!(
        !log.iter()
            .any(|l| l.starts_with("write_file") && l.contains(".seg")),
        "repair must not rewrite the segment wholesale: {log:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Group commit: sync policies and what survives a torn crash.
// ---------------------------------------------------------------------------

#[test]
fn sync_policies_keep_the_acknowledged_prefix_under_torn_appends() {
    for policy in [
        SyncPolicy::PerRecord,
        SyncPolicy::PerBatch,
        SyncPolicy::Manual,
    ] {
        // Count append ops in a clean run: 30 inserts + 3 manual syncs.
        let total_inserts = 30i64;
        for k in (0..45).step_by(4) {
            let dir = tmp_dir(&format!("gc-{policy:?}-{k}"));
            let fvfs = Arc::new(FaultVfs::torn_at(k, 6));
            let shared: SharedVfs = fvfs.clone();
            let created = PersistentTable::create_with(shared, &dir, Schema::single("a"), policy);
            let Ok(mut pt) = created else {
                std::fs::remove_dir_all(&dir).ok();
                continue;
            };
            let mut acked = 0i64;
            let mut synced = 0i64;
            'run: for i in 0..total_inserts {
                match pt.insert(&[i], 0) {
                    Ok(_) => acked += 1,
                    Err(_) => break 'run,
                }
                if (i + 1) % 10 == 0 {
                    match pt.sync() {
                        Ok(()) => synced = acked,
                        Err(_) => break 'run,
                    }
                }
            }
            if policy == SyncPolicy::PerRecord {
                synced = acked;
            }
            drop(pt);
            let rec = PersistentTable::open(&dir)
                .unwrap_or_else(|e| panic!("{policy:?} crash at {k}: {e}"));
            let n = rec.table().num_rows() as i64;
            // Prefix: the recovered rows are exactly the first n inserts.
            for r in 0..n {
                assert_eq!(
                    rec.table().value(0, RowId(r as u64)),
                    r,
                    "{policy:?} at {k}"
                );
            }
            // Everything explicitly made durable must be there; nothing
            // beyond the acknowledged ops plus the one in flight.
            assert!(
                n >= synced,
                "{policy:?} at {k}: lost synced rows ({n} < {synced})"
            );
            assert!(
                n <= acked + 1,
                "{policy:?} at {k}: invented rows ({n} > {acked}+1)"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
