//! Regression suite for the flat-only panic paths tiering left behind.
//!
//! `Table::col_values` deliberately panics once a column holds frozen
//! blocks, so any engine entry point that forgot to go tier-aware fails
//! loudly instead of scanning stale data. This suite drives **every
//! public kernel, executor, auxiliary-structure and SQL path** over a
//! half-frozen table (frozen prefix + hot tail, forgets on both sides of
//! the boundary) and checks the answers against a never-frozen twin — if
//! a straggler still reaches for the flat slice, the panic surfaces
//! here, and if one silently materializes wrong data, the twin
//! comparison catches it.
//!
//! The second half is the recompression-safety property test: frozen
//! blocks squash *forgotten* rows' values onto active neighbours when
//! they re-encode, so every structure built **before** the squash — word
//! zone maps, sorted indexes, join hash tables — must either be
//! invalidated or keep answering exactly. They keep answering exactly,
//! because all of them consult the activity map before trusting a value;
//! the interleaved property test pins that contract.

use amnesia::columnar::vacuum::vacuum;
use amnesia::columnar::{Database, Imprints, SortedIndex, WordZoneMap, ZoneMap};
use amnesia::engine::exec::PlanTag;
use amnesia::engine::join::{hash_join, hash_join_count, join_precision};
use amnesia::engine::{kernels, parallel, Aux, CostModel, Executor, ForgetVisibility};
use amnesia::prelude::*;
use amnesia::sql;
use amnesia::workload::query::RangePredicate;
use amnesia::workload::Query as EngineQuery;

/// A half-frozen table (4 frozen blocks + hot tail) and its never-frozen
/// twin, with forgets scattered across both tiers.
fn half_frozen_pair() -> (Table, Table) {
    let mut rng = SimRng::new(97);
    let values: Vec<i64> = (0..6_000).map(|_| rng.range_i64(0, 900)).collect();
    let mut flat = Table::new(Schema::single("a"));
    flat.insert_batch(&values, 0).unwrap();
    let mut tiered = flat.clone();
    for r in (0..6_000u64).step_by(7) {
        flat.forget(RowId(r), 1).unwrap();
        tiered.forget(RowId(r), 1).unwrap();
    }
    tiered.freeze_upto(4_100); // rounds down to 4 blocks of 1024
    assert_eq!(tiered.frozen_blocks(), 4);
    assert!(!tiered.col_tier(0).hot_values().is_empty());
    (tiered, flat)
}

#[test]
fn every_kernel_path_survives_a_half_frozen_table() {
    let (tiered, flat) = half_frozen_pair();
    let pred = RangePredicate::new(200, 500);
    let want_rows = kernels::range_scan_active(&flat, 0, pred);

    // Serial kernels.
    assert_eq!(kernels::range_scan_active(&tiered, 0, pred), want_rows);
    assert_eq!(kernels::range_scan_tiered(&tiered, 0, pred).0, want_rows);
    assert_eq!(
        kernels::range_scan_all(&tiered, 0, pred),
        kernels::range_scan_all(&flat, 0, pred)
    );
    assert_eq!(
        kernels::count_active_matches(&tiered, 0, pred),
        want_rows.len()
    );
    let blocks: Vec<usize> = (0..6).collect();
    assert_eq!(
        kernels::range_scan_blocks(&tiered, 0, pred, &blocks, 1024),
        kernels::range_scan_blocks(&flat, 0, pred, &blocks, 1024)
    );
    assert_eq!(
        kernels::aggregate_rows(&tiered, 0, &want_rows, AggKind::Sum),
        kernels::aggregate_rows(&flat, 0, &want_rows, AggKind::Sum)
    );
    for predicate in [None, Some(pred)] {
        for kind in AggKind::ALL {
            let (want, _) = kernels::aggregate_active(&flat, 0, predicate, kind);
            let (got, _) = kernels::aggregate_active(&tiered, 0, predicate, kind);
            assert_eq!(got, want, "{kind:?} {predicate:?}");
        }
        let (state, _) = kernels::aggregate_state_tiered(&tiered, 0, predicate);
        let (want_state, _) = kernels::aggregate_state_active(&flat, 0, predicate);
        assert_eq!(state.count(), want_state.count());
        assert_eq!(state.sum(), want_state.sum());
    }

    // Zone-map wrappers dispatch tiered once blocks are frozen; the zone
    // map itself is built (tier-aware) from the frozen table.
    let wz = WordZoneMap::build(&tiered, 0);
    assert_eq!(
        kernels::range_scan_active_zoned(&tiered, 0, &wz, pred).0,
        want_rows
    );
    assert_eq!(
        kernels::count_active_matches_zoned(&tiered, 0, &wz, pred).0,
        want_rows.len()
    );
    let (zstate, _) = kernels::aggregate_state_active_zoned(&tiered, 0, &wz, Some(pred));
    let (want_state, _) = kernels::aggregate_state_active(&flat, 0, Some(pred));
    assert_eq!(zstate.count(), want_state.count());

    // Compressed-snapshot kernels materialize via the tier-aware dense
    // path, never the flat slice.
    let seg = tiered.compress_column(0);
    assert_eq!(
        kernels::range_scan_compressed(&tiered, &seg, pred),
        want_rows
    );
    assert_eq!(
        kernels::count_compressed(&tiered, &seg, pred),
        want_rows.len()
    );

    // Parallel kernels chunk at tier boundaries.
    for threads in [1usize, 3, 8] {
        assert_eq!(
            parallel::par_range_scan_active(&tiered, 0, pred, threads),
            want_rows
        );
        assert_eq!(
            parallel::par_range_scan_tiered(&tiered, 0, pred, threads),
            want_rows
        );
        assert_eq!(
            parallel::par_range_scan_compressed(&tiered, &seg, pred, threads),
            want_rows
        );
        for kind in AggKind::ALL {
            let (want, _) = kernels::aggregate_active(&flat, 0, Some(pred), kind);
            let (got, _) = parallel::par_aggregate_active(&tiered, 0, Some(pred), kind, threads);
            match (want, got) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{kind:?}"),
                (a, b) => assert_eq!(a, b, "{kind:?}"),
            }
            let (got, _) = parallel::par_aggregate_tiered(&tiered, 0, Some(pred), kind, threads);
            match (want, got) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{kind:?}"),
                (a, b) => assert_eq!(a, b, "{kind:?}"),
            }
        }
    }
}

#[test]
fn every_executor_path_survives_a_half_frozen_table() {
    let (tiered, flat) = half_frozen_pair();
    // Auxiliary structures all build tier-aware from the frozen table.
    let zm = ZoneMap::build(&tiered, 0);
    let wz = WordZoneMap::build(&tiered, 0);
    let mut idx = SortedIndex::build(&tiered, 0);
    idx.rebuild(&tiered);
    let imp = Imprints::build(&tiered, 0, 16);
    assert!(imp.memory_bytes() > 0);
    let auxes: Vec<Aux<'_>> = vec![
        Aux::default(),
        Aux {
            zonemap: Some(&zm),
            ..Default::default()
        },
        Aux {
            word_zones: Some(&wz),
            ..Default::default()
        },
        Aux {
            index: Some(&idx),
            ..Default::default()
        },
        Aux {
            zonemap: Some(&zm),
            word_zones: Some(&wz),
            index: Some(&idx),
            ..Default::default()
        },
    ];
    let queries = [
        EngineQuery::Range(RangePredicate::new(100, 260)),
        EngineQuery::Point(333),
        EngineQuery::Aggregate {
            kind: AggKind::Avg,
            predicate: Some(RangePredicate::new(50, 700)),
        },
        EngineQuery::Aggregate {
            kind: AggKind::Sum,
            predicate: None,
        },
    ];
    for mode in [
        ForgetVisibility::ActiveOnly,
        ForgetVisibility::ScanSeesForgotten,
    ] {
        let ex = Executor::new(mode, CostModel::default());
        for q in &queries {
            let want = ex.execute(&flat, 0, q, &Aux::default());
            for (i, aux) in auxes.iter().enumerate() {
                let got = ex.execute(&tiered, 0, q, aux);
                match (&got.output, &want.output) {
                    // An index probe returns value order where scans
                    // return insertion order; the *set* must agree.
                    (
                        amnesia::engine::QueryOutput::Rows(g),
                        amnesia::engine::QueryOutput::Rows(w),
                    ) => {
                        let mut g = g.clone();
                        let mut w = w.clone();
                        g.sort();
                        w.sort();
                        assert_eq!(g, w, "{mode:?} {q:?} aux#{i}");
                    }
                    (g, w) => assert_eq!(g, w, "{mode:?} {q:?} aux#{i}"),
                }
            }
        }
    }

    // The join surface: executor-level stats and the raw kernels.
    let ex = Executor::default();
    let (r, stats) = ex.execute_join(&tiered, 0, &flat, 0);
    let want = hash_join(&flat, 0, &flat, 0, ForgetVisibility::ActiveOnly);
    assert_eq!(r.pairs, want.pairs, "frozen build side");
    assert_eq!(stats.plan, PlanTag::TieredJoin);
    assert_eq!(stats.result_rows, want.stats.output_pairs);
    let (r2, stats2) = ex.execute_join(&flat, 0, &tiered, 0);
    assert_eq!(r2.pairs, want.pairs, "frozen probe side");
    assert_eq!(stats2.plan, PlanTag::TieredJoin);
    let (_, flat_stats) = ex.execute_join(&flat, 0, &flat, 0);
    assert_eq!(flat_stats.plan, PlanTag::FullScan, "hot join is not tiered");
    assert_eq!(
        hash_join_count(&tiered, 0, &tiered, 0, ForgetVisibility::ActiveOnly),
        want.stats.output_pairs
    );
    assert_eq!(
        join_precision(&tiered, 0, &flat, 0),
        join_precision(&flat, 0, &flat, 0),
        "precision mixes both visibility regimes over frozen blocks"
    );

    // Vacuum compacts through the codec point-read paths.
    let kept = vacuum(&tiered);
    assert_eq!(kept.table.num_rows(), flat.active_rows());
}

#[test]
fn sql_paths_survive_half_frozen_tables() {
    // Two-table SQL join + filters + aggregates over frozen storage: the
    // SQL executor reads through `Table::value`, which must hit the codec
    // point-access paths, never the flat slice.
    let mut db = Database::new();
    let parent = db.add_table("parent", Schema::new(vec!["key", "grp"]));
    let child = db.add_table("child", Schema::new(vec!["fk", "amount"]));
    for i in 0..3_000i64 {
        db.table_mut(parent).insert(&[i, i % 10], 0).unwrap();
    }
    for i in 0..3_000i64 {
        db.table_mut(child).insert(&[i % 500, i], 0).unwrap();
    }
    for r in (0..3_000u64).step_by(9) {
        db.table_mut(parent).forget(RowId(r), 1).unwrap();
    }
    let q = "SELECT p.grp, COUNT(*) AS n, SUM(c.amount) AS total \
             FROM parent p JOIN child c ON p.key = c.fk \
             WHERE c.amount BETWEEN 100 AND 2500 \
             GROUP BY p.grp ORDER BY total DESC LIMIT 5";
    let hot = match sql::run(&db, q).unwrap() {
        sql::QueryOutcome::Rows(rs) => rs,
        _ => unreachable!(),
    };
    db.table_mut(parent).freeze_upto(3_000);
    db.table_mut(child).freeze_upto(2_048);
    assert!(db.table(parent).has_frozen());
    let frozen = match sql::run(&db, q).unwrap() {
        sql::QueryOutcome::Rows(rs) => rs,
        _ => unreachable!(),
    };
    assert_eq!(frozen.rows, hot.rows, "SQL answers survive freezing");
}

/// Satellite: `recompress_frozen` mutates stored values at *forgotten*
/// positions (squashing them onto active neighbours). Structures built
/// before the squash — word zone maps, sorted indexes, join hash tables
/// (rebuilt per call but probing recompressed blocks) — must keep
/// answering exactly, because every one of them filters through the
/// activity map before trusting a value. Interleave recompression with
/// zoned scans, index probes and joins against a flat twin to prove it.
#[test]
fn recompress_keeps_zones_indexes_and_joins_correct() {
    for seed in [5u64, 6, 7] {
        let mut rng = SimRng::new(seed);
        let mut flat = Table::new(Schema::single("a"));
        let mut tiered = Table::with_block_rows(Schema::single("a"), 256);
        let ctx = format!("seed={seed}");
        // Aux structures built ONCE up front and deliberately left stale
        // across forgets and recompressions (note_forget only, no sync).
        let values: Vec<i64> = (0..4_096).map(|_| rng.range_i64(0, 300)).collect();
        flat.insert_batch(&values, 0).unwrap();
        tiered.insert_batch(&values, 0).unwrap();
        tiered.freeze_upto(4_096);
        let mut wz = WordZoneMap::build(&tiered, 0);
        let mut idx = SortedIndex::build(&tiered, 0);
        for step in 0..8 {
            // Forget a burst on both twins.
            for _ in 0..300 {
                if let Some(r) = flat.random_active(&mut rng) {
                    flat.forget(r, step).unwrap();
                    tiered.forget(r, step).unwrap();
                    wz.note_forget(r);
                    idx.note_forget();
                }
            }
            // Recompress rotten blocks: forgotten positions' values are
            // physically rewritten under the stale structures' feet.
            let (reencoded, _) = tiered.recompress_frozen(0.9);
            if step > 2 {
                assert!(
                    reencoded == 0 || tiered.bytes_frozen() > 0,
                    "recompression keeps payloads live {ctx}"
                );
            }
            for pred in [
                RangePredicate::new(0, 300),
                RangePredicate::new(rng.range_i64(0, 250), rng.range_i64(100, 300)),
            ] {
                let want = kernels::range_scan_active(&flat, 0, pred);
                // Zoned scan with the stale map: bounds are stale-wide,
                // never stale-narrow.
                let (got, _) = kernels::range_scan_active_zoned(&tiered, 0, &wz, pred);
                assert_eq!(got, want, "zoned {ctx} step {step} {pred:?}");
                // Index probe with stale entries: activity filtering
                // hides both forgotten rows and their squashed values.
                let mut via_index = idx.probe_range_active(&tiered, pred.lo, pred.hi_inclusive());
                via_index.sort();
                let mut want_sorted = want.clone();
                want_sorted.sort();
                assert_eq!(via_index, want_sorted, "index {ctx} step {step}");
            }
            // Joins rebuild their hash table per call, but build and
            // probe both stream the *recompressed* payloads.
            let want = hash_join(&flat, 0, &flat, 0, ForgetVisibility::ActiveOnly);
            let got = hash_join(&tiered, 0, &tiered, 0, ForgetVisibility::ActiveOnly);
            assert_eq!(got.pairs, want.pairs, "join {ctx} step {step}");
            assert_eq!(
                hash_join_count(&tiered, 0, &tiered, 0, ForgetVisibility::ActiveOnly),
                want.stats.output_pairs,
                "join count {ctx} step {step}"
            );
        }
    }
}
