//! Property tests: the word-at-a-time vectorized kernels, the
//! row-at-a-time scalar references, the parallel kernels, the fused
//! compressed-block kernels (every codec), and the word-zone-pruned
//! kernels all compute identical answers — across randomized tables,
//! forget patterns (none / a quarter / everything), and the
//! word-boundary sizes where masking bugs live (0, 1, 63, 64, 65, 1023,
//! 1024, 1025).

use amnesia::columnar::compress::{block_decodes, Encoding};
use amnesia::columnar::vacuum::vacuum;
use amnesia::columnar::{SegmentedColumn, WordZoneMap};
use amnesia::engine::batch::{self, scalar};
use amnesia::engine::join::{hash_join, hash_join_count};
use amnesia::engine::kernels;
use amnesia::engine::parallel::{
    par_aggregate_active, par_hash_join, par_range_scan_active, par_range_scan_compressed,
};
use amnesia::engine::ForgetVisibility;
use amnesia::prelude::*;
use amnesia::workload::query::RangePredicate;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 8, 64];

/// How much of the table a forget pattern erases.
#[derive(Debug, Clone, Copy)]
enum ForgetPattern {
    None,
    Quarter,
    All,
}

fn forget_pattern() -> impl Strategy<Value = ForgetPattern> {
    prop_oneof![
        Just(ForgetPattern::None),
        Just(ForgetPattern::Quarter),
        Just(ForgetPattern::All),
    ]
}

fn build_table(values: &[i64], pattern: ForgetPattern, seed: u64) -> Table {
    let mut t = Table::new(Schema::single("a"));
    if !values.is_empty() {
        t.insert_batch(values, 0).unwrap();
    }
    match pattern {
        ForgetPattern::None => {}
        ForgetPattern::Quarter => {
            let mut rng = SimRng::new(seed);
            for _ in 0..values.len() / 4 {
                if let Some(r) = t.random_active(&mut rng) {
                    t.forget(r, 1).unwrap();
                }
            }
        }
        ForgetPattern::All => {
            for r in 0..values.len() {
                t.forget(RowId::from(r), 1).unwrap();
            }
        }
    }
    t
}

fn assert_all_kernels_agree(t: &Table, pred: RangePredicate, ctx: &str) {
    // Scans: vectorized == scalar == parallel (all thread counts).
    let vectorized = kernels::range_scan_active(t, 0, pred);
    let reference = scalar::range_scan_active(t, 0, pred);
    assert_eq!(vectorized, reference, "scan {ctx}");
    for threads in THREAD_COUNTS {
        let par = par_range_scan_active(t, 0, pred, threads);
        assert_eq!(par, reference, "par scan threads={threads} {ctx}");
    }

    // Full (forgotten-inclusive) scan.
    assert_eq!(
        kernels::range_scan_all(t, 0, pred),
        scalar::range_scan_all(t, 0, pred),
        "scan-all {ctx}"
    );

    // Count-only kernel.
    assert_eq!(
        kernels::count_active_matches(t, 0, pred),
        scalar::count_active_matches(t, 0, pred),
        "count {ctx}"
    );
    assert_eq!(
        kernels::count_active_matches(t, 0, pred),
        reference.len(),
        "count==scan-len {ctx}"
    );

    // Aggregates: every kind, with and without the predicate.
    for predicate in [None, Some(pred)] {
        for kind in AggKind::ALL {
            let (want, want_scanned) = scalar::aggregate_active(t, 0, predicate, kind);
            let (got, got_scanned) = kernels::aggregate_active(t, 0, predicate, kind);
            assert_eq!(got, want, "agg {kind:?} pred={predicate:?} {ctx}");
            assert_eq!(got_scanned, want_scanned, "agg scanned {kind:?} {ctx}");
            for threads in THREAD_COUNTS {
                let (par, par_scanned) = par_aggregate_active(t, 0, predicate, kind, threads);
                match (want, par) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-9,
                        "par agg {kind:?} threads={threads} {ctx}: {a} vs {b}"
                    ),
                    (a, b) => assert_eq!(a, b, "par agg {kind:?} threads={threads} {ctx}"),
                }
                assert_eq!(par_scanned, want_scanned, "par agg scanned {kind:?} {ctx}");
            }
        }
    }

    // Blocked (zone-map shaped) scans cover every block partition of the
    // batch size.
    for block_rows in [batch::BATCH_ROWS, 64, 100] {
        let nblocks = t.num_rows().div_ceil(block_rows);
        let blocks: Vec<usize> = (0..nblocks).collect();
        assert_eq!(
            kernels::range_scan_blocks(t, 0, pred, &blocks, block_rows),
            scalar::range_scan_blocks(t, 0, pred, &blocks, block_rows),
            "blocks={block_rows} {ctx}"
        );
    }

    assert_compressed_kernels_agree(t, pred, ctx);
    assert_zoned_kernels_agree(t, pred, ctx);
}

/// Fused compressed scans == decompress-then-scalar-scan, for every codec
/// (pinned per block), the automatic chooser, word-aligned block sizes
/// that land frozen/tail boundaries on and off batch edges, and the
/// parallel block-chunked variant.
fn assert_compressed_kernels_agree(t: &Table, pred: RangePredicate, ctx: &str) {
    let reference = scalar::range_scan_active(t, 0, pred);
    let values = t.col_values(0);
    let mut segs: Vec<(String, SegmentedColumn)> = Vec::new();
    for block_rows in [64usize, 1024] {
        for enc in Encoding::ALL {
            let mut seg = SegmentedColumn::with_encoding(block_rows, enc);
            seg.extend_from_slice(values);
            segs.push((format!("{}@{block_rows}", enc.name()), seg));
        }
        let mut auto = SegmentedColumn::with_block_rows(block_rows);
        auto.extend_from_slice(values);
        segs.push((format!("auto@{block_rows}"), auto));
    }
    for (tag, seg) in &segs {
        // The compressed column must reconstruct the original exactly —
        // otherwise "equivalence" below would prove nothing.
        assert_eq!(seg.len(), values.len(), "{tag} {ctx}");
        let got = kernels::range_scan_compressed(t, seg, pred);
        assert_eq!(got, reference, "compressed {tag} {ctx}");
        assert_eq!(
            kernels::count_compressed(t, seg, pred),
            reference.len(),
            "compressed count {tag} {ctx}"
        );
        for threads in THREAD_COUNTS {
            assert_eq!(
                par_range_scan_compressed(t, seg, pred, threads),
                reference,
                "par compressed {tag} threads={threads} {ctx}"
            );
        }
    }
}

/// Word-zone-pruned kernels == their unpruned counterparts, with fresh
/// and stale (forget-noted but unsynced) zone maps.
fn assert_zoned_kernels_agree(t: &Table, pred: RangePredicate, ctx: &str) {
    let reference = scalar::range_scan_active(t, 0, pred);
    let wz = WordZoneMap::build(t, 0);
    let (rows, _) = kernels::range_scan_active_zoned(t, 0, &wz, pred);
    assert_eq!(rows, reference, "zoned scan {ctx}");
    let (count, _) = kernels::count_active_matches_zoned(t, 0, &wz, pred);
    assert_eq!(count, reference.len(), "zoned count {ctx}");
    for predicate in [None, Some(pred)] {
        let (state, zs) = kernels::aggregate_state_active_zoned(t, 0, &wz, predicate);
        for kind in AggKind::ALL {
            let (want, want_scanned) = scalar::aggregate_active(t, 0, predicate, kind);
            assert_eq!(
                state.finalize(kind),
                want,
                "zoned agg {kind:?} pred={predicate:?} {ctx}"
            );
            assert!(
                zs.rows_scanned <= want_scanned,
                "zones may only shrink work {ctx}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vectorized_equals_scalar_equals_parallel(
        values in proptest::collection::vec(-5_000i64..5_000, 0..700),
        pattern in forget_pattern(),
        lo in -6_000i64..6_000,
        width in 0i64..8_000,
        seed in any::<u64>(),
    ) {
        let t = build_table(&values, pattern, seed);
        let pred = RangePredicate::new(lo, lo.saturating_add(width));
        assert_all_kernels_agree(&t, pred, &format!("n={} {pattern:?}", values.len()));
    }
}

#[test]
fn boundary_sizes_and_forget_patterns() {
    // Deterministic sweep of the sizes where word masking goes wrong.
    for n in [0usize, 1, 63, 64, 65, 1023, 1024, 1025] {
        let mut rng = SimRng::new(n as u64 + 1);
        let values: Vec<i64> = (0..n).map(|_| rng.range_i64(0, 1_000)).collect();
        for pattern in [
            ForgetPattern::None,
            ForgetPattern::Quarter,
            ForgetPattern::All,
        ] {
            let t = build_table(&values, pattern, 99);
            for pred in [
                RangePredicate::new(0, 1_000), // everything
                RangePredicate::new(250, 500), // selective
                RangePredicate::new(900, 100), // empty (inverted)
            ] {
                assert_all_kernels_agree(&t, pred, &format!("n={n} {pattern:?}"));
            }
        }
    }
}

/// Assert a tiered table and its never-frozen twin answer every kernel
/// identically: scans (serial + parallel, all thread counts), counts,
/// aggregates of every kind with and without predicates, and — while no
/// lossy transition has run — the complete-scan regime. The twin's
/// scalar kernels are the ground truth. Runs under whichever SIMD mode
/// the process was started in — CI's matrix covers both native and
/// `AMNESIA_PORTABLE_ONLY`.
///
/// `scan_all_comparable` must be false once a recompression actually
/// re-encoded a block (or a block was dropped): both transitions destroy
/// *forgotten* rows' values by design, so the ScanSeesForgotten regime
/// legitimately diverges from the flat twin afterwards — active-only
/// answers are the invariant that survives every transition.
fn assert_tiered_equals_flat(
    tiered: &Table,
    flat: &Table,
    pred: RangePredicate,
    scan_all_comparable: bool,
    ctx: &str,
) {
    let reference = scalar::range_scan_active(flat, 0, pred);
    assert_eq!(
        kernels::range_scan_active(tiered, 0, pred),
        reference,
        "tiered scan {ctx}"
    );
    let (rows, _) = kernels::range_scan_tiered(tiered, 0, pred);
    assert_eq!(rows, reference, "tiered scan+stats {ctx}");
    assert_eq!(
        kernels::count_active_matches(tiered, 0, pred),
        reference.len(),
        "tiered count {ctx}"
    );
    for threads in THREAD_COUNTS {
        assert_eq!(
            par_range_scan_active(tiered, 0, pred, threads),
            reference,
            "par tiered scan threads={threads} {ctx}"
        );
    }
    for predicate in [None, Some(pred)] {
        for kind in AggKind::ALL {
            let (want, want_scanned) = scalar::aggregate_active(flat, 0, predicate, kind);
            let (got, got_scanned) = kernels::aggregate_active(tiered, 0, predicate, kind);
            assert_eq!(got, want, "tiered agg {kind:?} pred={predicate:?} {ctx}");
            assert!(
                got_scanned <= want_scanned,
                "tiered agg may only shrink work {ctx}"
            );
            for threads in THREAD_COUNTS {
                let (par, _) = par_aggregate_active(tiered, 0, predicate, kind, threads);
                match (want, par) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-9,
                        "par tiered agg {kind:?} threads={threads} {ctx}: {a} vs {b}"
                    ),
                    (a, b) => assert_eq!(a, b, "par tiered agg {kind:?} {ctx}"),
                }
            }
        }
    }
    if scan_all_comparable {
        assert_eq!(
            kernels::range_scan_all(tiered, 0, pred),
            scalar::range_scan_all(flat, 0, pred),
            "tiered scan-all {ctx}"
        );
    }
}

/// The tiered self-join must equal the dense twin's self-join *exactly* —
/// same pairs in the same order (build rows ascend per key, probe rows
/// right-major), same count, across serial and parallel probes. Active-only
/// answers survive every tier transition, so this runs even after lossy
/// recompressions.
fn assert_tiered_join_equals_flat(tiered: &Table, flat: &Table, ctx: &str) {
    let want = hash_join(flat, 0, flat, 0, ForgetVisibility::ActiveOnly);
    let got = hash_join(tiered, 0, tiered, 0, ForgetVisibility::ActiveOnly);
    assert_eq!(got.pairs, want.pairs, "tiered join pairs {ctx}");
    assert_eq!(
        got.stats.build_distinct_keys, want.stats.build_distinct_keys,
        "tiered join distinct keys {ctx}"
    );
    assert_eq!(got.stats.build_rows, want.stats.build_rows, "{ctx}");
    assert_eq!(got.stats.output_pairs, want.stats.output_pairs, "{ctx}");
    assert_eq!(
        hash_join_count(tiered, 0, tiered, 0, ForgetVisibility::ActiveOnly),
        want.stats.output_pairs,
        "tiered join count {ctx}"
    );
    for threads in THREAD_COUNTS {
        let par = par_hash_join(tiered, 0, tiered, 0, ForgetVisibility::ActiveOnly, threads);
        assert_eq!(
            par.pairs, want.pairs,
            "par tiered join threads={threads} {ctx}"
        );
    }
}

/// Randomized freeze/forget/thaw/drop/recompress/vacuum/query
/// interleavings: after every transition the tiered table must keep
/// answering exactly like its never-frozen twin, across block sizes and
/// every pinned codec plus the automatic chooser.
#[test]
fn tiered_interleavings_match_flat_storage() {
    for (block_rows, encoding, seed) in [
        (64usize, None, 1u64),
        (64, Some(Encoding::Rle), 2),
        // Seed 102 previously tripped the scan-all comparison after an
        // RLE recompression — kept as a regression case for the lossy
        // gating.
        (64, Some(Encoding::Rle), 102),
        (64, Some(Encoding::Dict), 3),
        (128, Some(Encoding::Delta), 4),
        (128, Some(Encoding::ForPack), 5),
        (1024, Some(Encoding::Plain), 6),
        (1024, None, 7),
    ] {
        let mut rng = SimRng::new(seed);
        let mut flat = Table::new(Schema::single("a"));
        let mut tiered = Table::with_block_rows(Schema::single("a"), block_rows);
        tiered.pin_encoding(0, encoding);
        let ctx = format!("block_rows={block_rows} enc={encoding:?} seed={seed}");
        // Set once a transition destroys forgotten rows' values (a
        // recompression that actually re-encoded): active-only answers
        // stay exact forever, but the complete-scan regime legitimately
        // diverges from the flat twin. Vacuum rebuilds both twins from
        // survivors only, which makes them byte-identical again.
        let mut lossy = false;
        for step in 0..12 {
            // Mutate: insert a batch, forget some rows, then a random
            // tier transition.
            let n = 100 + (rng.range_i64(0, 400) as usize);
            let values: Vec<i64> = (0..n).map(|_| rng.range_i64(-500, 500)).collect();
            flat.insert_batch(&values, step).unwrap();
            tiered.insert_batch(&values, step).unwrap();
            for _ in 0..n / 3 {
                if let Some(r) = flat.random_active(&mut rng) {
                    flat.forget(r, step).unwrap();
                    tiered.forget(r, step).unwrap();
                }
            }
            match rng.range_i64(0, 6) {
                0 | 1 => {
                    let upto = rng.range_i64(0, flat.num_rows() as i64 + 1) as usize;
                    tiered.freeze_upto(upto);
                }
                2 => {
                    tiered.freeze_upto(tiered.num_rows());
                }
                3 => {
                    let nb = tiered.frozen_blocks();
                    if nb > 0 {
                        tiered.thaw_block(rng.range_i64(0, nb as i64) as usize);
                    }
                }
                4 => {
                    let (reencoded, _) = tiered.recompress_frozen(0.9);
                    lossy |= reencoded > 0;
                }
                _ => {
                    // Vacuum both twins identically; the compacted tiered
                    // table comes back hot (survivor values only, so the
                    // twins are byte-identical again) and refreezes later.
                    let keep_flat = vacuum(&flat);
                    let keep_tiered = vacuum(&tiered);
                    assert_eq!(
                        keep_flat.removed, keep_tiered.removed,
                        "vacuum parity {ctx}"
                    );
                    flat = keep_flat.table;
                    tiered = keep_tiered.table;
                    lossy = false;
                }
            }
            tiered.check_invariants().unwrap();
            assert_eq!(tiered.num_rows(), flat.num_rows(), "{ctx} step {step}");
            // Query: a selective, a covering, and an empty predicate.
            for pred in [
                RangePredicate::new(rng.range_i64(-500, 400), rng.range_i64(-400, 500)),
                RangePredicate::new(-500, 500),
                RangePredicate::new(400, -400),
            ] {
                assert_tiered_equals_flat(
                    &tiered,
                    &flat,
                    pred,
                    !lossy,
                    &format!("{ctx} step {step}"),
                );
            }
            // Joins ride the same interleavings: build and probe must
            // read the exact tier layout this step produced.
            assert_tiered_join_equals_flat(&tiered, &flat, &format!("{ctx} step {step}"));
        }
        // Dropping fully-forgotten blocks keeps active answers intact.
        tiered.freeze_upto(tiered.num_rows());
        let (_, _) = tiered.drop_forgotten_blocks();
        for pred in [
            RangePredicate::new(-500, 500),
            RangePredicate::new(-100, 100),
        ] {
            let reference = scalar::range_scan_active(&flat, 0, pred);
            assert_eq!(
                kernels::range_scan_active(&tiered, 0, pred),
                reference,
                "{ctx} after drop"
            );
        }
    }
}

/// Tiered join == dense-materialized join across every codec × block
/// size × freeze/forget/recompress/drop interleaving, on a two-table
/// (parent/child) shape where the build and probe sides freeze
/// *independently* — left frozen/right hot, left hot/right frozen, both
/// frozen, recompressed, partially dropped. The flat twins are the
/// ground truth; pair order must match bit-for-bit.
#[test]
fn tiered_join_equals_dense_join_across_codecs() {
    for (block_rows, encoding, seed) in [
        (64usize, None, 41u64),
        (64, Some(Encoding::Rle), 42),
        (64, Some(Encoding::Dict), 43),
        (128, Some(Encoding::Delta), 44),
        (128, Some(Encoding::ForPack), 45),
        (1024, Some(Encoding::Plain), 46),
        (1024, None, 47),
    ] {
        let ctx = format!("block_rows={block_rows} enc={encoding:?} seed={seed}");
        let mut rng = SimRng::new(seed);
        // Parent: distinct-ish keys; child: skewed fks — a handful of hot
        // keys so dict/rle structure actually appears in frozen blocks.
        let parent_vals: Vec<i64> = (0..700).map(|i| i % 400).collect();
        let child_vals: Vec<i64> = (0..1_500)
            .map(|_| {
                let r = rng.f64();
                (r * r * 400.0) as i64
            })
            .collect();
        let mut flat_parent = Table::new(Schema::single("k"));
        flat_parent.insert_batch(&parent_vals, 0).unwrap();
        let mut flat_child = Table::new(Schema::single("fk"));
        flat_child.insert_batch(&child_vals, 0).unwrap();
        let mut parent = Table::with_block_rows(Schema::single("k"), block_rows);
        parent.pin_encoding(0, encoding);
        parent.insert_batch(&parent_vals, 0).unwrap();
        let mut child = Table::with_block_rows(Schema::single("fk"), block_rows);
        child.pin_encoding(0, encoding);
        child.insert_batch(&child_vals, 0).unwrap();
        for _ in 0..300 {
            if let Some(r) = flat_parent.random_active(&mut rng) {
                flat_parent.forget(r, 1).unwrap();
                parent.forget(r, 1).unwrap();
            }
            if let Some(r) = flat_child.random_active(&mut rng) {
                flat_child.forget(r, 1).unwrap();
                child.forget(r, 1).unwrap();
            }
        }

        let check = |flat_parent: &Table,
                     flat_child: &Table,
                     parent: &Table,
                     child: &Table,
                     stage: &str| {
            let want = hash_join(flat_parent, 0, flat_child, 0, ForgetVisibility::ActiveOnly);
            let got = hash_join(parent, 0, child, 0, ForgetVisibility::ActiveOnly);
            assert_eq!(got.pairs, want.pairs, "{ctx} {stage}");
            assert_eq!(
                got.stats.build_distinct_keys,
                want.stats.build_distinct_keys
            );
            assert_eq!(
                hash_join_count(parent, 0, child, 0, ForgetVisibility::ActiveOnly),
                want.stats.output_pairs,
                "{ctx} {stage} count"
            );
            for threads in THREAD_COUNTS {
                assert_eq!(
                    par_hash_join(parent, 0, child, 0, ForgetVisibility::ActiveOnly, threads).pairs,
                    want.pairs,
                    "{ctx} {stage} par threads={threads}"
                );
            }
        };

        // Hot × hot (sanity), then every frozen combination.
        check(&flat_parent, &flat_child, &parent, &child, "hot/hot");
        parent.freeze_upto(parent.num_rows());
        check(&flat_parent, &flat_child, &parent, &child, "frozen/hot");
        child.freeze_upto(child.num_rows() / 2);
        check(&flat_parent, &flat_child, &parent, &child, "frozen/mixed");
        child.freeze_upto(child.num_rows());
        check(&flat_parent, &flat_child, &parent, &child, "frozen/frozen");
        // Ground truth (forgotten rows included) holds while no lossy
        // transition has run.
        let truth_want = hash_join(
            &flat_parent,
            0,
            &flat_child,
            0,
            ForgetVisibility::ScanSeesForgotten,
        );
        let truth_got = hash_join(&parent, 0, &child, 0, ForgetVisibility::ScanSeesForgotten);
        assert_eq!(truth_got.pairs, truth_want.pairs, "{ctx} ground truth");
        // Recompress squashes forgotten values; active answers must hold.
        parent.recompress_frozen(0.95);
        child.recompress_frozen(0.95);
        check(&flat_parent, &flat_child, &parent, &child, "recompressed");
        // Forget a whole child block and drop it: its pairs vanish from
        // both twins because the *flat* twin forgets the same rows.
        let doomed: Vec<RowId> = (0..block_rows.min(child.num_rows()))
            .map(RowId::from)
            .collect();
        for &r in &doomed {
            if flat_child.activity().is_active(r) {
                flat_child.forget(r, 2).unwrap();
                child.forget(r, 2).unwrap();
            }
        }
        child.drop_forgotten_blocks();
        check(&flat_parent, &flat_child, &parent, &child, "dropped");
    }
}

/// The acceptance gate for "zero dense materialization": a tiered join
/// over fully frozen RLE/dict tables must not decode a single block —
/// build streams runs/codes, probe stays in compressed space. The
/// per-thread decode counter pins it.
#[test]
fn tiered_join_never_decodes_frozen_blocks() {
    for encoding in [
        Encoding::Rle,
        Encoding::Dict,
        Encoding::ForPack,
        Encoding::Delta,
    ] {
        let mut left = Table::with_block_rows(Schema::single("k"), 256);
        left.pin_encoding(0, Some(encoding));
        left.insert_batch(&(0..2_048).map(|i| i / 8).collect::<Vec<i64>>(), 0)
            .unwrap();
        let mut right = Table::with_block_rows(Schema::single("fk"), 256);
        right.pin_encoding(0, Some(encoding));
        right
            .insert_batch(&(0..2_048).map(|i| i % 300).collect::<Vec<i64>>(), 0)
            .unwrap();
        for r in (0..2_048u64).step_by(5) {
            left.forget(RowId(r), 1).unwrap();
            right.forget(RowId(r), 1).unwrap();
        }
        left.freeze_upto(2_048);
        right.freeze_upto(2_048);
        let dense_want = {
            // Dense reference computed before the counter snapshot (it
            // decodes on purpose).
            let l: Vec<i64> = (0..2_048).map(|r| left.value(0, RowId::from(r))).collect();
            let r: Vec<i64> = (0..2_048)
                .map(|row| right.value(0, RowId::from(row)))
                .collect();
            let mut pairs = Vec::new();
            for probe in right.iter_active() {
                for build in left.iter_active() {
                    if l[build.as_usize()] == r[probe.as_usize()] {
                        pairs.push((build, probe));
                    }
                }
            }
            pairs.sort_by_key(|&(l, r)| (r, l));
            pairs
        };
        let before = block_decodes();
        let got = hash_join(&left, 0, &right, 0, ForgetVisibility::ActiveOnly);
        let count = hash_join_count(&left, 0, &right, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(
            block_decodes() - before,
            0,
            "{encoding:?}: tiered join must not decode any frozen block"
        );
        let mut sorted = got.pairs.clone();
        sorted.sort_by_key(|&(l, r)| (r, l));
        assert_eq!(sorted, dense_want, "{encoding:?}");
        assert_eq!(count, got.pairs.len(), "{encoding:?}");
    }
}

#[test]
fn stale_word_zones_stay_safe() {
    // Build zones first, forget afterwards with note_forget only (no
    // sync): bounds are stale-but-wide, results must stay exact.
    let mut rng = SimRng::new(21);
    let values: Vec<i64> = (0..2_000).map(|_| rng.range_i64(0, 1_000)).collect();
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(&values, 0).unwrap();
    let mut wz = WordZoneMap::build(&t, 0);
    for _ in 0..1_200 {
        if let Some(r) = t.random_active(&mut rng) {
            t.forget(r, 1).unwrap();
            wz.note_forget(r);
        }
    }
    for pred in [
        RangePredicate::new(0, 1_000),
        RangePredicate::new(400, 600),
        RangePredicate::new(990, 2_000),
    ] {
        let (rows, _) = kernels::range_scan_active_zoned(&t, 0, &wz, pred);
        assert_eq!(rows, scalar::range_scan_active(&t, 0, pred), "{pred:?}");
    }
}

#[test]
fn word_zones_hit_the_ninety_percent_bar() {
    // Acceptance setting: sorted column, ~1 % selectivity — at least
    // 90 % of words must be zone-pruned.
    let n = 200_000usize;
    let values: Vec<i64> = (0..n as i64).collect();
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(&values, 0).unwrap();
    let wz = WordZoneMap::build(&t, 0);
    let pred = RangePredicate::new(100_000, 102_000);
    let (rows, stats) = kernels::range_scan_active_zoned(&t, 0, &wz, pred);
    assert_eq!(rows.len(), 2_000);
    let total_words = n.div_ceil(64);
    assert!(
        stats.words_pruned as f64 >= 0.9 * total_words as f64,
        "pruned {} of {} words",
        stats.words_pruned,
        total_words
    );
}

#[test]
fn join_kernels_agree_with_row_at_a_time_reference() {
    use amnesia::engine::join::{hash_join, hash_join_count};
    use amnesia::engine::ForgetVisibility;

    let mut rng = SimRng::new(77);
    let mut left = Table::new(Schema::single("k"));
    let left_vals: Vec<i64> = (0..500).map(|_| rng.range_i64(0, 50)).collect();
    left.insert_batch(&left_vals, 0).unwrap();
    let mut right = Table::new(Schema::single("k"));
    let right_vals: Vec<i64> = (0..800).map(|_| rng.range_i64(0, 50)).collect();
    right.insert_batch(&right_vals, 0).unwrap();
    for _ in 0..150 {
        if let Some(r) = left.random_active(&mut rng) {
            left.forget(r, 1).unwrap();
        }
        if let Some(r) = right.random_active(&mut rng) {
            right.forget(r, 1).unwrap();
        }
    }

    for vis in [
        ForgetVisibility::ActiveOnly,
        ForgetVisibility::ScanSeesForgotten,
    ] {
        let result = hash_join(&left, 0, &right, 0, vis);
        // Row-at-a-time reference join.
        let mut expect = Vec::new();
        let rows = |t: &Table| -> Vec<RowId> {
            match vis {
                ForgetVisibility::ActiveOnly => t.active_row_ids(),
                ForgetVisibility::ScanSeesForgotten => (0..t.num_rows()).map(RowId::from).collect(),
            }
        };
        for &r in &rows(&right) {
            for &l in &rows(&left) {
                if left_vals[l.as_usize()] == right_vals[r.as_usize()] {
                    expect.push((l, r));
                }
            }
        }
        let mut got = result.pairs.clone();
        got.sort();
        expect.sort();
        assert_eq!(got, expect, "{vis:?}");
        assert_eq!(
            hash_join_count(&left, 0, &right, 0, vis),
            expect.len(),
            "{vis:?} count"
        );
    }
}

// ===================================================================
// Morsel scheduler: PhysicalPlan execution, parallel == serial
// ===================================================================

use amnesia::engine::physical::JoinSpec;
use amnesia::engine::{
    ColPred, ExecMode, Executor, PhysItem, PhysScan, PhysicalPlan, PlanHint, SortDir,
};

/// Non-power-of-two worker counts included on purpose: uneven morsel
/// partitions are where merge-order bugs live.
const PLAN_THREADS: [usize; 3] = [2, 7, 8];

/// Small morsels so even the few-thousand-row test tables split into
/// many morsels per stage (the default 16K-row morsel would collapse
/// them all into the serial fallback).
const SMALL_MORSEL: usize = 128;

fn executor(threads: usize) -> Executor {
    let mode = if threads <= 1 {
        ExecMode::Serial
    } else {
        ExecMode::Parallel(threads)
    };
    Executor::default()
        .with_exec_mode(mode)
        .with_morsel_rows(SMALL_MORSEL)
}

/// Run `plan` serially and at every parallel width; the rows must be
/// byte-identical, and parallel execution must not add block decodes
/// beyond what the serial run performs.
fn assert_plan_parallel_equals_serial(tables: &[&Table], plan: &PhysicalPlan, ctx: &str) {
    let serial = executor(1).execute_plan(tables, &[], plan);
    for threads in PLAN_THREADS {
        let before = block_decodes();
        let par = executor(threads).execute_plan(tables, &[], plan);
        let decoded = block_decodes() - before;
        assert_eq!(
            par.rows, serial.rows,
            "plan output diverged at {threads} threads: {ctx}"
        );
        assert_eq!(
            par.stats.rows_scanned, serial.stats.rows_scanned,
            "scan accounting diverged at {threads} threads: {ctx}"
        );
        let fully_frozen = tables
            .iter()
            .all(|t| t.frozen_blocks() * t.block_rows() >= t.num_rows());
        if fully_frozen {
            assert_eq!(
                decoded, 0,
                "parallel plan over fully-frozen tables decoded {decoded} blocks \
                 at {threads} threads: {ctx}"
            );
        }
    }
}

/// The grouped-aggregate plan shape (scan → group → sort → limit).
fn grouped_plan() -> PhysicalPlan {
    PhysicalPlan {
        scans: vec![PhysScan {
            preds: vec![ColPred::range(1, 100, 700), ColPred::range(2, 10, 80)],
            label: "Scan t [active-only]".into(),
        }],
        join: None,
        items: vec![
            PhysItem::Column {
                slot: 0,
                col: 0,
                display: "g".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Count,
                arg: None,
                display: "n".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Sum,
                arg: Some((0, 1)),
                display: "s".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Avg,
                arg: Some((0, 2)),
                display: "m".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Min,
                arg: Some((0, 1)),
                display: "lo".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Max,
                arg: Some((0, 1)),
                display: "hi".into(),
            },
        ],
        group_by: Some((0, 0, "g".into())),
        order_by: Some((2, SortDir::Desc)),
        limit: Some(16),
        hint: PlanHint::CostBased,
    }
}

/// Selective projection with an ORDER BY (exercises the parallel sort
/// merge) and no LIMIT (every surviving row must come back, in order).
fn projection_plan() -> PhysicalPlan {
    PhysicalPlan {
        scans: vec![PhysScan {
            preds: vec![ColPred::range(1, 0, 500)],
            label: "Scan t [active-only]".into(),
        }],
        join: None,
        items: vec![
            PhysItem::Column {
                slot: 0,
                col: 0,
                display: "g".into(),
            },
            PhysItem::Column {
                slot: 0,
                col: 2,
                display: "b".into(),
            },
        ],
        group_by: None,
        order_by: Some((1, SortDir::Asc)),
        limit: None,
        hint: PlanHint::CostBased,
    }
}

/// Global (ungrouped) aggregate — the per-chunk AggState merge path.
fn global_agg_plan() -> PhysicalPlan {
    PhysicalPlan {
        scans: vec![PhysScan {
            preds: vec![ColPred::range(1, 50, 900)],
            label: "Scan t [active-only]".into(),
        }],
        join: None,
        items: vec![
            PhysItem::Aggregate {
                kind: AggKind::Count,
                arg: None,
                display: "n".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Sum,
                arg: Some((0, 2)),
                display: "s".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Avg,
                arg: Some((0, 1)),
                display: "m".into(),
            },
        ],
        group_by: None,
        order_by: None,
        limit: None,
        hint: PlanHint::CostBased,
    }
}

/// A three-column table (`g`, `a`, `b`) under a pinned codec.
fn plan_table(block_rows: usize, encoding: Option<Encoding>, n: usize, seed: u64) -> Table {
    let mut rng = SimRng::new(seed);
    let mut t = Table::with_block_rows(Schema::new(vec!["g", "a", "b"]), block_rows);
    for c in 0..3 {
        t.pin_encoding(c, encoding);
    }
    for i in 0..n {
        // `g` cycles (dict/rle-friendly), `a` trends (delta-friendly),
        // `b` is noise (forpack-friendly).
        t.insert(
            &[
                (i % 23) as i64,
                (i as i64 / 4) % 1_000,
                rng.range_i64(0, 100),
            ],
            0,
        )
        .unwrap();
    }
    t
}

/// `execute_plan` under `ExecMode::Parallel` must match the serial path
/// byte-for-byte across codecs × block sizes × thread counts ×
/// freeze/forget/recompress interleavings, without extra block decodes
/// once the table is fully frozen.
#[test]
fn physical_plans_parallel_equals_serial_across_tiers() {
    for (block_rows, encoding, seed) in [
        (64usize, None, 11u64),
        (64, Some(Encoding::Rle), 12),
        (64, Some(Encoding::Dict), 13),
        (128, Some(Encoding::Delta), 14),
        (128, Some(Encoding::ForPack), 15),
        (256, Some(Encoding::Plain), 16),
        (1024, None, 17),
    ] {
        let ctx = format!("block_rows={block_rows} enc={encoding:?}");
        let mut rng = SimRng::new(seed);
        let mut t = plan_table(block_rows, encoding, 3_000, seed);
        let plans = [grouped_plan(), projection_plan(), global_agg_plan()];
        let check = |t: &Table, stage: &str| {
            for (i, plan) in plans.iter().enumerate() {
                assert_plan_parallel_equals_serial(&[t], plan, &format!("{ctx} plan#{i} {stage}"));
            }
        };
        check(&t, "hot");
        for _ in 0..700 {
            if let Some(r) = t.random_active(&mut rng) {
                t.forget(r, 1).unwrap();
            }
        }
        check(&t, "hot+forgets");
        t.freeze_upto(t.num_rows() / 2);
        check(&t, "half-frozen");
        t.freeze_upto(t.num_rows());
        check(&t, "frozen");
        for _ in 0..400 {
            if let Some(r) = t.random_active(&mut rng) {
                t.forget(r, 2).unwrap();
            }
        }
        check(&t, "frozen+forgets");
        t.recompress_frozen(0.9);
        check(&t, "recompressed");
        for i in 0..900 {
            t.insert(&[i % 23, 400 + (i % 300), rng.range_i64(0, 100)], 3)
                .unwrap();
        }
        check(&t, "regrown-tail");
    }
}

/// The two-table join plan: parallel build/probe/gather must reproduce
/// the serial pair stream exactly, across independent freeze states of
/// the two sides.
#[test]
fn join_plans_parallel_equals_serial_across_tiers() {
    let join_plan = PhysicalPlan {
        scans: vec![
            PhysScan {
                preds: vec![],
                label: "Scan parent [active-only]".into(),
            },
            PhysScan {
                preds: vec![ColPred::range(1, 0, 600)],
                label: "Scan child [active-only]".into(),
            },
        ],
        join: Some(JoinSpec {
            left_col: 0,
            right_col: 0,
            display: "parent.k = child.fk".into(),
        }),
        items: vec![
            PhysItem::Column {
                slot: 0,
                col: 1,
                display: "pa".into(),
            },
            PhysItem::Column {
                slot: 1,
                col: 2,
                display: "cb".into(),
            },
        ],
        group_by: None,
        order_by: None,
        limit: None,
        hint: PlanHint::CostBased,
    };
    let grouped_join_plan = PhysicalPlan {
        items: vec![
            PhysItem::Column {
                slot: 0,
                col: 0,
                display: "k".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Count,
                arg: None,
                display: "n".into(),
            },
            PhysItem::Aggregate {
                kind: AggKind::Sum,
                arg: Some((1, 2)),
                display: "s".into(),
            },
        ],
        group_by: Some((0, 0, "k".into())),
        order_by: Some((2, SortDir::Desc)),
        limit: Some(8),
        ..join_plan.clone()
    };
    for (block_rows, encoding) in [
        (64usize, Some(Encoding::Dict)),
        (64, Some(Encoding::Rle)),
        (128, None),
    ] {
        let ctx = format!("block_rows={block_rows} enc={encoding:?}");
        let mut rng = SimRng::new(31);
        let mut parent = plan_table(block_rows, encoding, 1_200, 32);
        let mut child = plan_table(block_rows, encoding, 2_400, 33);
        for _ in 0..500 {
            if let Some(r) = parent.random_active(&mut rng) {
                parent.forget(r, 1).unwrap();
            }
            if let Some(r) = child.random_active(&mut rng) {
                child.forget(r, 1).unwrap();
            }
        }
        let check = |p: &Table, c: &Table, stage: &str| {
            assert_plan_parallel_equals_serial(&[p, c], &join_plan, &format!("{ctx} {stage}"));
            assert_plan_parallel_equals_serial(
                &[p, c],
                &grouped_join_plan,
                &format!("{ctx} grouped {stage}"),
            );
        };
        check(&parent, &child, "hot/hot");
        parent.freeze_upto(parent.num_rows());
        check(&parent, &child, "frozen/hot");
        child.freeze_upto(child.num_rows() / 2);
        check(&parent, &child, "frozen/mixed");
        child.freeze_upto(child.num_rows());
        check(&parent, &child, "frozen/frozen");
        parent.recompress_frozen(0.95);
        child.recompress_frozen(0.95);
        check(&parent, &child, "recompressed");
    }
}
