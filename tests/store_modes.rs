//! Forget-mode semantics of [`AmnesiacStore`] under a shared randomized
//! workload: each mode's storage/answer trade-off must hold for any
//! insert/forget interleaving.

use amnesia::columnar::MemoryColdStore;
use amnesia::prelude::*;
use proptest::prelude::*;

/// Drive a store through a fixed-budget amnesia loop; returns the ledger
/// of everything inserted.
fn drive(
    store: &mut AmnesiacStore,
    dbsize: usize,
    per_batch: usize,
    batches: u64,
    seed: u64,
) -> Vec<i64> {
    let mut rng = SimRng::new(seed);
    let mut policy = PolicyKind::Uniform.build();
    let mut ledger = Vec::new();

    let initial: Vec<i64> = (0..dbsize as i64).map(|i| i * 3).collect();
    ledger.extend_from_slice(&initial);
    store.insert_batch(&initial, 0).unwrap();

    let mut next = dbsize as i64;
    for b in 1..=batches {
        let fresh: Vec<i64> = (0..per_batch as i64).map(|i| (next + i) * 3).collect();
        next += per_batch as i64;
        ledger.extend_from_slice(&fresh);
        store.insert_batch(&fresh, b).unwrap();
        let need = store.table().active_rows().saturating_sub(dbsize);
        let victims = {
            let ctx = PolicyContext {
                table: store.table(),
                epoch: b,
            };
            policy.select_victims(&ctx, need, &mut rng)
        };
        store.forget_batch(&victims, b).unwrap();
        store.end_batch().unwrap();
    }
    ledger
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn delete_mode_leaves_no_forgotten_payloads(
        dbsize in 20usize..80,
        per_batch in 5usize..40,
        batches in 1u64..6,
        seed in any::<u64>(),
    ) {
        let mut store = AmnesiacStore::new(ForgetMode::Delete { vacuum_every: 1 });
        drive(&mut store, dbsize, per_batch, batches, seed);
        let fp = store.footprint();
        prop_assert_eq!(fp.hot_rows, fp.active_rows, "vacuum must be complete");
        prop_assert_eq!(fp.active_rows, dbsize);
    }

    #[test]
    fn tier_mode_archives_every_forgotten_tuple(
        dbsize in 20usize..80,
        per_batch in 5usize..40,
        batches in 1u64..6,
        seed in any::<u64>(),
    ) {
        let mut store = AmnesiacStore::new(ForgetMode::Tier)
            .with_cold_store(Box::new(MemoryColdStore::new()));
        drive(&mut store, dbsize, per_batch, batches, seed);
        let fp = store.footprint();
        prop_assert_eq!(fp.cold_rows as u64, store.total_forgotten());
        // Every archived tuple is recoverable with its exact payload.
        let table = store.table();
        let forgotten: Vec<RowId> = (0..table.num_rows())
            .map(RowId::from)
            .filter(|&r| !table.activity().is_active(r))
            .collect();
        let expected: Vec<i64> = forgotten.iter().map(|&r| table.value(0, r)).collect();
        for (r, expect) in forgotten.into_iter().zip(expected) {
            let got = store.recover_from_cold(r).unwrap();
            prop_assert_eq!(got, Some(vec![expect]));
        }
    }

    #[test]
    fn summarize_mode_keeps_whole_table_aggregates_exact(
        dbsize in 20usize..80,
        per_batch in 5usize..40,
        batches in 1u64..6,
        seed in any::<u64>(),
    ) {
        let mut store = AmnesiacStore::new(ForgetMode::Summarize);
        let ledger = drive(&mut store, dbsize, per_batch, batches, seed);
        let exact_avg = ledger.iter().map(|&v| v as f64).sum::<f64>() / ledger.len() as f64;
        let got = store
            .query(&Query::Aggregate { kind: AggKind::Avg, predicate: None })
            .output
            .agg()
            .unwrap()
            .unwrap();
        prop_assert!((got - exact_avg).abs() < 1e-6, "avg {got} vs {exact_avg}");
        let count = store
            .query(&Query::Aggregate { kind: AggKind::Count, predicate: None })
            .output
            .agg()
            .unwrap()
            .unwrap();
        prop_assert_eq!(count as usize, ledger.len());
    }

    #[test]
    fn deindex_mode_keeps_range_scans_complete(
        dbsize in 20usize..80,
        per_batch in 5usize..40,
        batches in 1u64..6,
        seed in any::<u64>(),
        lo_frac in 0.0f64..0.9,
    ) {
        let mut store = AmnesiacStore::new(ForgetMode::Deindex);
        let ledger = drive(&mut store, dbsize, per_batch, batches, seed);
        let max = *ledger.iter().max().unwrap();
        let lo = (lo_frac * max as f64) as i64;
        let pred = RangePredicate::new(lo, lo + max / 5 + 1);
        let truth = ledger.iter().filter(|&&v| pred.matches(v)).count();
        let got = store.query(&Query::Range(pred)).output.cardinality();
        prop_assert_eq!(got, truth, "complete scan must fetch all data");
    }

    #[test]
    fn mark_only_mode_returns_active_subset(
        dbsize in 20usize..80,
        per_batch in 5usize..40,
        batches in 1u64..6,
        seed in any::<u64>(),
    ) {
        let mut store = AmnesiacStore::new(ForgetMode::MarkOnly);
        let ledger = drive(&mut store, dbsize, per_batch, batches, seed);
        let max = *ledger.iter().max().unwrap();
        let pred = RangePredicate::new(0, max + 1);
        let got = store.query(&Query::Range(pred)).output.cardinality();
        prop_assert_eq!(got, dbsize, "active-only answer is exactly the budget");
    }
}
