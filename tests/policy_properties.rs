//! Property-based tests of the policy victim contract, driven across
//! random table shapes and victim counts.

use amnesia::prelude::*;
use proptest::prelude::*;

/// Build a table with the given per-epoch batch sizes (serial values),
/// then forget `pre_forgotten` arbitrary rows to create realistic holes.
fn build_table(batch_sizes: &[usize], pre_forget: &[usize]) -> Table {
    let mut t = Table::new(Schema::single("a"));
    let mut next = 0i64;
    for (epoch, &n) in batch_sizes.iter().enumerate() {
        let values: Vec<i64> = (0..n as i64).map(|i| next + i).collect();
        next += n as i64;
        if !values.is_empty() {
            t.insert_batch(&values, epoch as u64).unwrap();
        }
    }
    let total = t.num_rows();
    for &f in pre_forget {
        if total > 0 {
            let _ = t.forget(RowId((f % total) as u64), 1);
        }
    }
    t
}

fn policy_strategies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Fifo,
        PolicyKind::Uniform,
        PolicyKind::Anterograde { bias: 3.0 },
        PolicyKind::Rot { high_water_age: 1 },
        PolicyKind::Overuse,
        PolicyKind::Lru,
        PolicyKind::Area,
        PolicyKind::Ttl { max_age: 2 },
        PolicyKind::Pair,
        PolicyKind::Aligned { bins: 8 },
        PolicyKind::CostBased {
            bins: 32,
            gamma: 1.0,
        },
        PolicyKind::Ebbinghaus {
            base_strength: 1.0,
            rehearsal_boost: 1.0,
        },
        PolicyKind::Decay {
            alpha: 0.4,
            protect_age: 1,
        },
        PolicyKind::Composite(vec![(0.4, PolicyKind::Fifo), (0.6, PolicyKind::Uniform)]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn victims_are_distinct_active_and_counted(
        batch_sizes in proptest::collection::vec(0usize..60, 1..5),
        pre_forget in proptest::collection::vec(0usize..1000, 0..30),
        n_frac in 0.0f64..1.2,
        seed in any::<u64>(),
    ) {
        let table = build_table(&batch_sizes, &pre_forget);
        let active = table.active_rows();
        let n = (n_frac * active as f64) as usize;
        for kind in policy_strategies() {
            let mut policy = kind.build();
            let mut rng = SimRng::new(seed);
            let victims = {
                let ctx = PolicyContext {
                    table: &table,
                    epoch: batch_sizes.len() as u64,
                };
                policy.select_victims(&ctx, n, &mut rng)
            };
            prop_assert_eq!(
                victims.len(),
                n.min(active),
                "{} returned wrong count", kind.name()
            );
            let mut seen = std::collections::HashSet::new();
            for v in &victims {
                prop_assert!(
                    table.activity().is_active(*v),
                    "{} selected inactive victim {v}", kind.name()
                );
                prop_assert!(seen.insert(*v), "{} duplicated victim {v}", kind.name());
            }
        }
    }

    #[test]
    fn selection_is_deterministic_per_seed(
        batch_sizes in proptest::collection::vec(1usize..40, 1..4),
        seed in any::<u64>(),
    ) {
        let table = build_table(&batch_sizes, &[]);
        let n = table.active_rows() / 2;
        for kind in policy_strategies() {
            let pick = |s: u64| {
                let mut policy = kind.build();
                let mut rng = SimRng::new(s);
                let ctx = PolicyContext { table: &table, epoch: 3 };
                policy.select_victims(&ctx, n, &mut rng)
            };
            prop_assert_eq!(pick(seed), pick(seed), "{} not deterministic", kind.name());
        }
    }

    #[test]
    fn forgetting_victims_always_succeeds(
        batch_sizes in proptest::collection::vec(1usize..40, 1..4),
        seed in any::<u64>(),
    ) {
        let mut table = build_table(&batch_sizes, &[]);
        let n = table.active_rows() / 3;
        let mut policy = PolicyKind::Area.build();
        let mut rng = SimRng::new(seed);
        let victims = {
            let ctx = PolicyContext { table: &table, epoch: 9 };
            policy.select_victims(&ctx, n, &mut rng)
        };
        let before = table.active_rows();
        for v in &victims {
            prop_assert!(table.forget(*v, 9).unwrap(), "double forget of {v}");
        }
        prop_assert_eq!(table.active_rows(), before - victims.len());
    }
}

#[test]
fn fifo_is_total_order_stable() {
    // FIFO victims must always be a prefix of the active insertion order,
    // independent of RNG state.
    let table = build_table(&[30, 30], &[3, 7, 11]);
    let mut policy = PolicyKind::Fifo.build();
    let mut rng1 = SimRng::new(1);
    let mut rng2 = SimRng::new(999);
    let ctx = PolicyContext {
        table: &table,
        epoch: 2,
    };
    let v1 = policy.select_victims(&ctx, 10, &mut rng1);
    let v2 = policy.select_victims(&ctx, 10, &mut rng2);
    assert_eq!(v1, v2, "fifo ignores randomness");
    let expected: Vec<RowId> = table.iter_active().take(10).collect();
    assert_eq!(v1, expected);
}
