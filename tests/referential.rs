//! Referential amnesia across policies: forgetting under foreign keys
//! must never leave dangling references, whichever policy picks the
//! victims.

use amnesia::columnar::{Database, ForeignKey, ReferentialAction, Schema};
use amnesia::prelude::*;
use proptest::prelude::*;

/// Build parents (keys 0..n_parents) and children referencing random
/// parents.
fn build_db(n_parents: usize, n_children: usize, seed: u64) -> (Database, usize, usize) {
    let mut rng = SimRng::new(seed);
    let mut db = Database::new();
    let parents = db.add_table("parents", Schema::single("key"));
    let children = db.add_table("children", Schema::new(vec!["parent_key", "payload"]));
    db.add_foreign_key(ForeignKey {
        child_table: children,
        child_col: 0,
        parent_table: parents,
        parent_col: 0,
    })
    .unwrap();
    for k in 0..n_parents as i64 {
        db.table_mut(parents).insert(&[k], 0).unwrap();
    }
    for _ in 0..n_children {
        let k = rng.range_i64(0, n_parents as i64);
        db.table_mut(children)
            .insert(&[k, rng.range_i64(0, 1000)], 0)
            .unwrap();
    }
    (db, parents, children)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cascade_never_dangles(
        n_parents in 2usize..30,
        n_children in 0usize..80,
        kills in proptest::collection::vec(0usize..30, 1..10),
        seed in any::<u64>(),
    ) {
        let (mut db, parents, _children) = build_db(n_parents, n_children, seed);
        for (i, k) in kills.iter().enumerate() {
            let row = RowId((k % n_parents) as u64);
            let _ = db
                .forget(parents, row, i as u64 + 1, ReferentialAction::Cascade)
                .unwrap();
            prop_assert!(db.dangling_references().is_empty());
        }
    }

    #[test]
    fn restrict_either_errors_or_stays_consistent(
        n_parents in 2usize..30,
        n_children in 0usize..80,
        kills in proptest::collection::vec(0usize..30, 1..10),
        seed in any::<u64>(),
    ) {
        let (mut db, parents, children) = build_db(n_parents, n_children, seed);
        for (i, k) in kills.iter().enumerate() {
            let row = RowId((k % n_parents) as u64);
            let active_children_before = db.table(children).active_rows();
            match db.forget(parents, row, i as u64 + 1, ReferentialAction::Restrict) {
                Ok(forgotten) => {
                    // Restrict never touches children.
                    prop_assert!(forgotten.len() <= 1);
                    prop_assert_eq!(
                        db.table(children).active_rows(),
                        active_children_before
                    );
                }
                Err(_) => {
                    // Refusal must be a complete no-op.
                    prop_assert!(db.table(parents).activity().is_active(row));
                }
            }
            prop_assert!(db.dangling_references().is_empty());
        }
    }
}

#[test]
fn policies_drive_referential_forgetting() {
    // A TTL policy picks parent victims; cascading keeps integrity while
    // the parent table holds its budget.
    let (mut db, parents, children) = build_db(100, 300, 99);
    let mut policy = PolicyKind::Ttl { max_age: 0 }.build();
    let mut rng = SimRng::new(100);

    for epoch in 1..=5u64 {
        // Insert 20 new parents per epoch.
        for k in 0..20i64 {
            db.table_mut(parents)
                .insert(&[1000 + epoch as i64 * 100 + k], epoch)
                .unwrap();
        }
        let victims = {
            let ctx = PolicyContext {
                table: db.table(parents),
                epoch,
            };
            policy.select_victims(&ctx, 20, &mut rng)
        };
        for v in victims {
            // Victims may already be gone through an earlier cascade —
            // Database::forget treats that as a no-op.
            db.forget(parents, v, epoch, ReferentialAction::Cascade)
                .unwrap();
        }
        assert!(db.dangling_references().is_empty(), "epoch {epoch}");
    }
    // Children of forgotten parents are gone too.
    assert!(db.table(children).active_rows() < 300);
}
