//! Property tests of micro-model estimates: whatever the data, the
//! histogram interpolation must stay inside hard bounds and agree with
//! exact totals at the extremes.

use amnesia::columnar::micromodel::{MicroModel, ModelStore, ValueRange};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn estimates_are_bounded_and_exact_at_extremes(
        values in proptest::collection::vec(-10_000i64..10_000, 1..400),
        bins in 1usize..64,
        lo in -11_000i64..11_000,
        width in 0i64..15_000,
    ) {
        let m = MicroModel::fit(3, &values, bins);

        // Totals are exact.
        let t = m.totals();
        prop_assert_eq!(t.count, values.len() as f64);
        prop_assert_eq!(t.sum, values.iter().map(|&v| v as f64).sum::<f64>());
        prop_assert_eq!(t.min, values.iter().min().copied());
        prop_assert_eq!(t.max, values.iter().max().copied());

        // Any range estimate is bounded by the totals.
        let est = m.estimate(ValueRange { lo, hi: lo + width });
        prop_assert!(est.count >= 0.0);
        prop_assert!(est.count <= t.count + 1e-9, "{} > {}", est.count, t.count);

        // The all-covering range reproduces the totals exactly.
        let vmin = *values.iter().min().unwrap();
        let vmax = *values.iter().max().unwrap();
        let full = m.estimate(ValueRange { lo: vmin, hi: vmax + 1 });
        prop_assert!((full.count - t.count).abs() < 1e-6);
        prop_assert!((full.sum - t.sum).abs() < 1e-4 * (1.0 + t.sum.abs()));

        // A disjoint range estimates nothing.
        let disjoint = m.estimate(ValueRange { lo: vmax + 10, hi: vmax + 100 });
        prop_assert_eq!(disjoint.count, 0.0);
    }

    #[test]
    fn estimates_are_monotone_in_range_inclusion(
        values in proptest::collection::vec(0i64..5000, 1..300),
        bins in 1usize..64,
        lo in 0i64..5000,
        w1 in 0i64..2000,
        w2 in 0i64..2000,
    ) {
        let m = MicroModel::fit(0, &values, bins);
        let (small, large) = (w1.min(w2), w1.max(w2));
        let e_small = m.estimate(ValueRange { lo, hi: lo + small });
        let e_large = m.estimate(ValueRange { lo, hi: lo + large });
        prop_assert!(
            e_small.count <= e_large.count + 1e-9,
            "wider range estimated less: {} vs {}",
            e_small.count,
            e_large.count
        );
    }

    #[test]
    fn count_error_is_bounded_by_boundary_bins(
        values in proptest::collection::vec(0i64..1000, 10..400),
        lo in 0i64..1000,
        width in 1i64..1000,
    ) {
        // With uniform-within-bin interpolation, the absolute count error
        // is at most the mass of the two partially-overlapped bins.
        let bins = 32usize;
        let m = MicroModel::fit(0, &values, bins);
        let range = ValueRange { lo, hi: lo + width };
        let est = m.estimate(range);
        let truth = values.iter().filter(|&&v| v >= lo && v < lo + width).count() as f64;
        // Loose but universal bound: 2 bins' worth of tuples.
        let vmin = *values.iter().min().unwrap();
        let vmax = *values.iter().max().unwrap();
        let span = (vmax - vmin) as f64 + 1.0;
        let max_bin_mass = {
            let mut counts = vec![0usize; bins];
            for &v in &values {
                let b = (((v - vmin) as f64 / span) * bins as f64) as usize;
                counts[b.min(bins - 1)] += 1;
            }
            *counts.iter().max().unwrap() as f64
        };
        prop_assert!(
            (est.count - truth).abs() <= 2.0 * max_bin_mass + 1e-6,
            "err {} > 2×max bin {}; truth {truth}, est {}",
            (est.count - truth).abs(),
            max_bin_mass,
            est.count
        );
    }

    #[test]
    fn store_full_estimate_is_exact_across_epochs_and_seals(
        chunks in proptest::collection::vec(
            proptest::collection::vec(-500i64..500, 1..50),
            1..6
        ),
    ) {
        let mut store = ModelStore::new(16);
        let mut all: Vec<i64> = Vec::new();
        for (epoch, chunk) in chunks.iter().enumerate() {
            for &v in chunk {
                store.absorb(epoch as u64, v);
                all.push(v);
            }
            // Seal after every other epoch: mixes sealed + pending paths.
            if epoch % 2 == 0 {
                store.seal();
            }
        }
        let est = store.estimate(None);
        prop_assert_eq!(est.count, all.len() as f64);
        prop_assert_eq!(est.sum, all.iter().map(|&v| v as f64).sum::<f64>());
        prop_assert_eq!(est.min, all.iter().min().copied());
        prop_assert_eq!(est.max, all.iter().max().copied());
        prop_assert_eq!(store.absorbed(), all.len() as u64);
    }
}
