//! Engine consistency: every physical plan must return the same answer,
//! and the executor must agree with a naive reference evaluation.

use amnesia::columnar::{SortedIndex, ZoneMap};
use amnesia::engine::{kernels, Aux, CostModel, Executor, ForgetVisibility};
use amnesia::prelude::*;
use proptest::prelude::*;

fn build(values: &[i64], forget: &[usize]) -> Table {
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(values, 0).unwrap();
    for &f in forget {
        if !values.is_empty() {
            let _ = t.forget(RowId((f % values.len()) as u64), 1);
        }
    }
    t
}

/// Reference implementation: naive loop over all rows.
fn reference_range(t: &Table, pred: RangePredicate, include_forgotten: bool) -> Vec<RowId> {
    (0..t.num_rows())
        .map(RowId::from)
        .filter(|&r| include_forgotten || t.activity().is_active(r))
        .filter(|&r| pred.matches(t.value(0, r)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_plans_agree_on_active_results(
        values in proptest::collection::vec(0i64..2000, 1..400),
        forget in proptest::collection::vec(0usize..1000, 0..100),
        lo in 0i64..2000,
        width in 1i64..500,
    ) {
        let t = build(&values, &forget);
        let pred = RangePredicate::new(lo, lo + width);

        let reference = reference_range(&t, pred, false);

        // Kernel: full active scan.
        let scan = kernels::range_scan_active(&t, 0, pred);
        prop_assert_eq!(&scan, &reference);

        // Kernel: zone-map pruned scan.
        let zm = ZoneMap::build_with_block_rows(&t, 0, 32);
        let blocks = zm.candidate_blocks(pred.lo, pred.hi_inclusive());
        let pruned = kernels::range_scan_blocks(&t, 0, pred, &blocks, 32);
        prop_assert_eq!(&pruned, &reference);

        // Index probe (value order) — same set of rows.
        let idx = SortedIndex::build(&t, 0);
        let mut probed = idx.probe_range_active(&t, pred.lo, pred.hi_inclusive());
        probed.sort_unstable();
        let mut sorted_ref = reference.clone();
        sorted_ref.sort_unstable();
        prop_assert_eq!(probed, sorted_ref);

        // Count-only kernel agrees.
        prop_assert_eq!(kernels::count_active_matches(&t, 0, pred), reference.len());
    }

    #[test]
    fn executor_matches_reference_under_both_visibilities(
        values in proptest::collection::vec(0i64..500, 1..200),
        forget in proptest::collection::vec(0usize..500, 0..80),
        lo in 0i64..500,
        width in 1i64..200,
    ) {
        let t = build(&values, &forget);
        let pred = RangePredicate::new(lo, lo + width);
        let zm = ZoneMap::build_with_block_rows(&t, 0, 64);
        let idx = SortedIndex::build(&t, 0);
        let aux = Aux {
            zonemap: Some(&zm),
            index: Some(&idx),
            ..Default::default()
        };

        let active_only = Executor::new(ForgetVisibility::ActiveOnly, CostModel::default());
        let mut got = active_only
            .execute(&t, 0, &Query::Range(pred), &aux)
            .output
            .rows()
            .unwrap()
            .to_vec();
        got.sort_unstable();
        let mut expect = reference_range(&t, pred, false);
        expect.sort_unstable();
        prop_assert_eq!(got, expect);

        let sees_forgotten =
            Executor::new(ForgetVisibility::ScanSeesForgotten, CostModel::default());
        let got_all = sees_forgotten
            .execute(&t, 0, &Query::Range(pred), &aux)
            .output
            .rows()
            .unwrap()
            .to_vec();
        prop_assert_eq!(got_all, reference_range(&t, pred, true));
    }

    #[test]
    fn aggregates_match_reference(
        values in proptest::collection::vec(-1000i64..1000, 1..300),
        forget in proptest::collection::vec(0usize..600, 0..100),
    ) {
        let t = build(&values, &forget);
        let actives: Vec<i64> = t.iter_active().map(|r| t.value(0, r)).collect();

        let (count, _) = kernels::aggregate_active(&t, 0, None, AggKind::Count);
        prop_assert_eq!(count, Some(actives.len() as f64));

        let (sum, _) = kernels::aggregate_active(&t, 0, None, AggKind::Sum);
        if actives.is_empty() {
            prop_assert_eq!(sum, None);
        } else {
            prop_assert_eq!(sum, Some(actives.iter().sum::<i64>() as f64));
            let (avg, _) = kernels::aggregate_active(&t, 0, None, AggKind::Avg);
            let expect = actives.iter().sum::<i64>() as f64 / actives.len() as f64;
            prop_assert!((avg.unwrap() - expect).abs() < 1e-9);
            let (min, _) = kernels::aggregate_active(&t, 0, None, AggKind::Min);
            prop_assert_eq!(min, Some(*actives.iter().min().unwrap() as f64));
            let (max, _) = kernels::aggregate_active(&t, 0, None, AggKind::Max);
            prop_assert_eq!(max, Some(*actives.iter().max().unwrap() as f64));
        }
    }

    #[test]
    fn zonemap_pruning_is_safe_under_staleness(
        values in proptest::collection::vec(0i64..5000, 32..300),
        forget in proptest::collection::vec(0usize..300, 1..60),
        lo in 0i64..5000,
        width in 1i64..1000,
    ) {
        // Build the zone map FIRST, then forget without syncing: stale
        // bounds may be loose but must never lose matches.
        let mut t = build(&values, &[]);
        let mut zm = ZoneMap::build_with_block_rows(&t, 0, 16);
        for &f in &forget {
            let row = RowId((f % values.len()) as u64);
            if t.activity().is_active(row) {
                t.forget(row, 1).unwrap();
                zm.note_forget(row);
            }
        }
        let pred = RangePredicate::new(lo, lo + width);
        let blocks = zm.candidate_blocks(pred.lo, pred.hi_inclusive());
        let pruned = kernels::range_scan_blocks(&t, 0, pred, &blocks, 16);
        let reference = reference_range(&t, pred, false);
        prop_assert_eq!(pruned, reference, "stale zone map lost matches");
    }
}

#[test]
fn summaries_make_whole_table_aggregates_exact() {
    // Deterministic cross-check of the Summarize path through the store.
    let mut store = AmnesiacStore::new(ForgetMode::Summarize);
    let values: Vec<i64> = (0..500).collect();
    store.insert_batch(&values, 0).unwrap();
    let victims: Vec<RowId> = (0..250).map(RowId).collect();
    store.forget_batch(&victims, 1).unwrap();
    store.end_batch().unwrap();

    for (kind, expect) in [
        (AggKind::Count, 500.0),
        (AggKind::Sum, (0..500).sum::<i64>() as f64),
        (AggKind::Avg, 249.5),
        (AggKind::Min, 0.0),
        (AggKind::Max, 499.0),
    ] {
        let got = store
            .query(&Query::Aggregate {
                kind,
                predicate: None,
            })
            .output
            .agg()
            .unwrap()
            .unwrap();
        assert!(
            (got - expect).abs() < 1e-9,
            "{:?}: got {got}, expected {expect}",
            kind
        );
    }
}
