//! Shape assertions for every reproduced figure/table — the claims
//! recorded in EXPERIMENTS.md, executed at test scale.

use amnesia::core::experiments::{self, Scale};
use amnesia::prelude::*;

fn scale() -> Scale {
    Scale::test()
}

fn series_of<'a>(report: &'a experiments::SeriesReport, name: &str) -> &'a [f64] {
    &report
        .series
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("series {name} missing"))
        .1
}

fn row_of<'a>(report: &'a experiments::MapReport, name: &str) -> &'a [f64] {
    &report
        .rows
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("row {name} missing"))
        .1
}

// --------------------------------------------------------------------------
// FIG1
// --------------------------------------------------------------------------

#[test]
fn fig1_fifo_highlights_only_the_latest_tuples() {
    let r = experiments::fig1_amnesia_map(&scale()).unwrap();
    let fifo = row_of(&r, "fifo");
    // "A fifo amnesia will only highlight the latest tuples."
    assert!(fifo[0] < 1e-9);
    assert!(fifo[1] < 1e-9);
    assert!((fifo[fifo.len() - 1] - 1.0).abs() < 1e-9);
    assert!((fifo[fifo.len() - 2] - 1.0).abs() < 1e-9);
    // Monotone non-decreasing along the timeline.
    for w in fifo.windows(2) {
        assert!(w[1] >= w[0] - 1e-9);
    }
}

#[test]
fn fig1_uniform_brightens_toward_recent_epochs() {
    let r = experiments::fig1_amnesia_map(&scale()).unwrap();
    let uni = row_of(&r, "uniform");
    // "uniform coloring which is brighter at the end because the newer the
    // tuples, the less opportunities they had to been forgotten"
    let early = (uni[0] + uni[1]) / 2.0;
    let late = (uni[uni.len() - 1] + uni[uni.len() - 2]) / 2.0;
    assert!(late > early, "late {late} should exceed early {early}");
    // Unlike FIFO, nothing is fully black or fully bright in the middle.
    assert!(uni[0] > 0.0);
}

#[test]
fn fig1_ante_retains_the_initial_data() {
    let r = experiments::fig1_amnesia_map(&scale()).unwrap();
    let ante = row_of(&r, "ante");
    // "retains most of the data at point 0 (initial data)"
    assert!(ante[0] > 0.6, "epoch 0 retention {}", ante[0]);
    // Every update epoch is darker than the initial load.
    for (e, &v) in ante.iter().enumerate().skip(1) {
        assert!(v < ante[0], "epoch {e} ({v}) vs initial ({})", ante[0]);
    }
}

#[test]
fn fig1_area_sits_between_fifo_and_uniform() {
    let r = experiments::fig1_amnesia_map(&scale()).unwrap();
    let area = row_of(&r, "area");
    // "resembles a uniform-fifo combination … the older the data the more
    // holes, the newer the more uniform"
    let early = area[0];
    let late = area[area.len() - 1];
    assert!(late > early, "area retention grows toward recent epochs");
}

// --------------------------------------------------------------------------
// FIG2
// --------------------------------------------------------------------------

#[test]
fn fig2_rot_depends_on_the_data_distribution() {
    let r = experiments::fig2_rot_map(&scale()).unwrap();
    assert_eq!(r.rows.len(), 4);
    // "the data distribution in combination with the amnesia has a strong
    // impact on what you retain" — rows must differ pairwise (beyond tiny
    // numeric jitter).
    for i in 0..r.rows.len() {
        for j in (i + 1)..r.rows.len() {
            let (na, a) = &r.rows[i];
            let (nb, b) = &r.rows[j];
            let diff: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
            assert!(diff > 0.05, "{na} and {nb} maps nearly identical");
        }
    }
}

#[test]
fn fig2_serial_rot_behaves_fifo_like() {
    let r = experiments::fig2_rot_map(&scale()).unwrap();
    let serial = row_of(&r, "Serial");
    // Old serial values leave every fresh query range, stop being touched,
    // and rot first: retention rises toward recent epochs.
    let early = (serial[0] + serial[1]) / 2.0;
    let late = (serial[serial.len() - 1] + serial[serial.len() - 2]) / 2.0;
    assert!(late > early, "serial rot: late {late} vs early {early}");
}

// --------------------------------------------------------------------------
// FIG3
// --------------------------------------------------------------------------

#[test]
fn fig3_precision_drops_quickly_then_flattens() {
    for dist in [
        DistributionKind::Uniform,
        DistributionKind::zipfian_default(),
    ] {
        let r = experiments::fig3_range_precision(&scale(), dist.clone()).unwrap();
        for (name, series) in &r.series {
            // "the precision drops quickly over time as more and more
            // information is forgotten"
            assert!(series[0] > 0.999, "{name} starts perfect");
            let last = *series.last().unwrap();
            assert!(
                last < series[0],
                "{name} must lose precision on {}",
                dist.name()
            );
            // The drop concentrates early: batch1→batch3 fall exceeds
            // batch (n-2)→n fall.
            let early_fall = series[0] - series[2];
            let late_fall = series[series.len() - 3] - series[series.len() - 1];
            assert!(
                early_fall >= late_fall - 0.05,
                "{name}: early {early_fall} vs late {late_fall}"
            );
        }
    }
}

#[test]
fn fig3_area_retains_precision_better_than_fifo() {
    // "Overall, the area and anti- policies seem to retain precision
    // better." (Active-value-centred queries punish FIFO's total loss of
    // old value regions less than partial losses — compare averages over
    // the back half of the run.)
    let r = experiments::fig3_range_precision(&scale(), DistributionKind::Uniform).unwrap();
    let avg_tail = |name: &str| {
        let s = series_of(&r, name);
        let tail = &s[s.len() / 2..];
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    assert!(
        avg_tail("area") > avg_tail("fifo"),
        "area {} vs fifo {}",
        avg_tail("area"),
        avg_tail("fifo")
    );
}

// --------------------------------------------------------------------------
// AGG (§4.3)
// --------------------------------------------------------------------------

#[test]
fn aggregate_differences_are_marginal_across_policies() {
    // "To our surprise the differences were marginal."
    let r = experiments::aggregate_precision(&scale(), DistributionKind::Uniform, false).unwrap();
    let finals: Vec<f64> = r.series.iter().map(|(_, s)| *s.last().unwrap()).collect();
    let max = finals.iter().cloned().fold(0.0f64, f64::max);
    let min = finals.iter().cloned().fold(1.0f64, f64::min);
    assert!(max < 0.2, "aggregate error stays small: {max}");
    assert!(max - min < 0.2, "spread across policies is marginal");
}

#[test]
fn aggregate_with_predicate_also_runs() {
    let r = experiments::aggregate_precision(&scale(), DistributionKind::Uniform, true).unwrap();
    for (name, series) in &r.series {
        assert!(!series.is_empty(), "{name} produced no aggregate errors");
        for &e in series {
            assert!((0.0..=1.0).contains(&e));
        }
    }
}

// --------------------------------------------------------------------------
// T-VOL / T-SEL (§4.2)
// --------------------------------------------------------------------------

#[test]
fn volatility_high_update_rate_hurts_precision() {
    let r = experiments::volatility_table(&scale(), DistributionKind::Uniform).unwrap();
    for row in &r.rows {
        let low: f64 = row[1].parse().unwrap();
        let high: f64 = row[2].parse().unwrap();
        assert!(
            low >= high - 0.02,
            "{}: low-volatility precision {low} must not trail high {high}",
            row[0]
        );
    }
}

#[test]
fn selectivity_does_not_rescue_precision() {
    // "Increasing the selectivity factor does not improve the precision."
    let r = experiments::selectivity_table(&scale(), DistributionKind::Uniform).unwrap();
    for row in &r.rows {
        let narrow: f64 = row[1].parse().unwrap();
        let wide: f64 = row[4].parse().unwrap();
        assert!(
            wide <= narrow + 0.1,
            "{}: wide-selectivity {wide} should not beat narrow {narrow}",
            row[0]
        );
    }
}
