//! End-to-end simulator tests across the full policy × distribution grid.

use amnesia::prelude::*;

fn cfg(policy: PolicyKind, dist: DistributionKind, seed: u64) -> SimConfig {
    SimConfig::builder()
        .dbsize(150)
        .domain(10_000)
        .update_fraction(0.3)
        .batches(6)
        .queries_per_batch(40)
        .distribution(dist)
        .policy(policy)
        .seed(seed)
        .build()
        .expect("valid config")
}

fn paper_policies() -> Vec<PolicyKind> {
    PolicyKind::paper_set()
}

fn all_policies() -> Vec<PolicyKind> {
    let mut ps = paper_policies();
    ps.extend([
        PolicyKind::Overuse,
        PolicyKind::Lru,
        PolicyKind::Ttl { max_age: 2 },
        PolicyKind::Pair,
        PolicyKind::Aligned { bins: 12 },
        PolicyKind::Composite(vec![(0.5, PolicyKind::Fifo), (0.5, PolicyKind::Uniform)]),
    ]);
    ps
}

#[test]
fn every_policy_and_distribution_holds_the_budget() {
    for policy in all_policies() {
        for dist in DistributionKind::paper_set() {
            let report = Simulator::new(cfg(policy.clone(), dist.clone(), 11))
                .expect("simulator")
                .run()
                .expect("run");
            for b in &report.batches {
                assert_eq!(
                    b.active_rows,
                    150,
                    "budget violated: {} on {} at batch {}",
                    policy.name(),
                    dist.name(),
                    b.batch
                );
            }
            assert_eq!(report.storage.final_active_rows, 150);
            assert_eq!(
                report.storage.total_rows_inserted,
                150 + 6 * 45,
                "inserts accounted"
            );
            assert_eq!(
                report.storage.rows_forgotten,
                6 * 45,
                "forgets mirror inserts under the fixed budget"
            );
        }
    }
}

#[test]
fn precision_is_bounded_and_starts_perfect() {
    for policy in all_policies() {
        let report = Simulator::new(cfg(policy.clone(), DistributionKind::Uniform, 13))
            .expect("simulator")
            .run()
            .expect("run");
        let series = report.precision_series();
        assert!(
            series[0] > 0.999,
            "{}: batch 1 precedes all forgetting",
            policy.name()
        );
        for (i, &e) in series.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&e),
                "{}: E out of range at batch {}: {e}",
                policy.name(),
                i + 1
            );
        }
        // PF series is bounded too.
        for &pf in &report.pf_series() {
            assert!((0.0..=1.0).contains(&pf));
        }
    }
}

#[test]
fn amnesia_map_totals_match_inserts() {
    for policy in paper_policies() {
        let report = Simulator::new(cfg(policy, DistributionKind::Serial, 17))
            .expect("simulator")
            .run()
            .expect("run");
        // Epoch 0 holds the initial load; epochs 1..=6 one batch each.
        assert_eq!(report.map.totals.len(), 7);
        assert_eq!(report.map.totals[0], 150);
        for e in 1..=6 {
            assert_eq!(report.map.totals[e], 45);
        }
        // Actives across epochs sum to the budget.
        let active_sum: usize = report.map.active.iter().sum();
        assert_eq!(active_sum, 150);
    }
}

#[test]
fn reports_are_deterministic_per_seed() {
    for policy in all_policies() {
        let a = Simulator::new(cfg(policy.clone(), DistributionKind::zipfian_default(), 29))
            .expect("sim")
            .run()
            .expect("run");
        let b = Simulator::new(cfg(policy.clone(), DistributionKind::zipfian_default(), 29))
            .expect("sim")
            .run()
            .expect("run");
        assert_eq!(
            a.precision_series(),
            b.precision_series(),
            "{}",
            policy.name()
        );
        assert_eq!(a.map.active, b.map.active, "{}", policy.name());
        assert_eq!(a.storage.table_bytes, b.storage.table_bytes);
    }
}

#[test]
fn stepping_matches_run() {
    let c = cfg(PolicyKind::Area, DistributionKind::Uniform, 31);
    let run_report = Simulator::new(c.clone()).unwrap().run().unwrap();

    let mut sim = Simulator::new(c).unwrap();
    for _ in 0..6 {
        sim.step().unwrap();
    }
    let step_report = sim.into_report();
    assert_eq!(
        run_report.precision_series(),
        step_report.precision_series()
    );
    assert_eq!(run_report.map.active, step_report.map.active);
}

#[test]
fn mixed_workload_runs() {
    let mut c = cfg(
        PolicyKind::Rot { high_water_age: 1 },
        DistributionKind::Uniform,
        37,
    );
    c.query_gen = QueryGenKind::Mixed(vec![
        (0.5, QueryGenKind::paper_range()),
        (0.2, QueryGenKind::Point),
        (0.3, QueryGenKind::paper_avg()),
    ]);
    let report = Simulator::new(c).unwrap().run().unwrap();
    // Both row-query and aggregate metrics must be populated.
    let last = report.batches.last().unwrap();
    assert!(last.mean_rf > 0.0 || last.mean_mf > 0.0);
    assert!(last.agg_error.is_some());
}

#[test]
fn drifting_distribution_keeps_working() {
    let mut c = cfg(PolicyKind::Fifo, DistributionKind::Uniform, 41);
    c.distribution = DistributionKind::Drift {
        base: Box::new(DistributionKind::Uniform),
        shift_per_epoch: 5_000,
    };
    let report = Simulator::new(c).unwrap().run().unwrap();
    assert_eq!(report.storage.final_active_rows, 150);
    // Values drift upward: the max seen must exceed the original domain.
    // (Implied by the shift: 6 epochs × 5000 > 10_000.)
    assert!(report.batches.last().unwrap().total_rows > 0);
}

#[test]
fn access_decay_changes_rot_behaviour() {
    let mut with_decay = cfg(
        PolicyKind::Rot { high_water_age: 1 },
        DistributionKind::zipfian_default(),
        43,
    );
    with_decay.access_decay = 0.5;
    let a = Simulator::new(with_decay).unwrap().run().unwrap();

    let no_decay = cfg(
        PolicyKind::Rot { high_water_age: 1 },
        DistributionKind::zipfian_default(),
        43,
    );
    let b = Simulator::new(no_decay).unwrap().run().unwrap();
    // Different frequency dynamics must lead to different retention.
    assert_ne!(a.map.active, b.map.active);
}
