#!/usr/bin/env bash
# Local mirror of CI's bench-smoke job: run the criterion-shim bench
# suite with JSON capture and drop BENCH_smoke.json at the repo root —
# the same artifact CI uploads as BENCH_smoke-<sha> and feeds to
# .github/bench_compare.py.
#
# Usage:
#   scripts/bench_local.sh                 # full 7-bench suite
#   scripts/bench_local.sh sql_bench       # just one bench
#   BASELINE=old.json scripts/bench_local.sh   # also diff vs a baseline
#
# Gates that run inside sql_bench (tune or disable via env):
#   AMNESIA_SCALE_GATE   8-thread speedup over serial (default: auto)
#   AMNESIA_ORDER_GATE   cost-driven vs syntactic worst-order (default 2.0)
#   AMNESIA_QERROR_GATE  max estimator q-error, uniform+zipf (default 8.0)

set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: a bench run on a tree that will fail CI's invariant gate
# is wasted time — fail fast here (rules: CONTRIBUTING.md).
echo "=== amnesia-lint preflight ==="
cargo run -q -p amnesia-lint -- check

# Preflight: the model suites are CI's model-check job; a bench run on
# a tree with a schedulable race or a broken morsel protocol is equally
# wasted. Fast (< 5 s): bounded DPOR exploration, not wall-clock fuzzing.
# Skip with AMNESIA_SKIP_MODEL=1 when iterating on bench-only changes.
if [[ "${AMNESIA_SKIP_MODEL:-0}" != "1" ]]; then
  echo "=== amnesia-sync model preflight ==="
  cargo test -q -p amnesia-sync --features model
  cargo test -q -p amnesia-engine --features model --test model
fi

OUT="BENCH_smoke.json"
# Absolute path: cargo runs bench binaries with cwd = the package dir
# (crates/bench), so a relative path would land the file there.
export AMNESIA_BENCH_JSON="$(pwd)/$OUT"
rm -f "$OUT"

BENCHES=(scan_kernels parallel_scan compressed_scan tiered_scan join_bench sql_bench persist_bench)
if [[ $# -gt 0 ]]; then
    BENCHES=("$@")
fi

for bench in "${BENCHES[@]}"; do
    echo "=== cargo bench -p amnesia-bench --bench $bench ==="
    cargo bench -p amnesia-bench --bench "$bench"
done

echo "wrote $(wc -l <"$OUT") bench records to $OUT"

if [[ -n "${BASELINE:-}" ]]; then
    python3 .github/bench_compare.py "$BASELINE" "$OUT"
fi
