//! Engineering bench: scan and aggregate kernels.
//!
//! Quantifies what the execution regimes cost: full active scan vs
//! zone-map pruned scan vs sorted-index probe, and the streaming
//! aggregate kernel, at 20 % forgotten tuples. The `vectorized_vs_scalar`
//! group measures the word-at-a-time batch kernels against the
//! row-at-a-time references (`batch::scalar`) at 1M rows — the numbers
//! backing the vectorization PR.

use std::hint::black_box;

use amnesia_bench::{forget_fraction, table_from_distribution};
use amnesia_columnar::{SortedIndex, ZoneMap};
use amnesia_distrib::DistributionKind;
use amnesia_engine::batch::scalar;
use amnesia_engine::kernels;
use amnesia_workload::query::{AggKind, RangePredicate};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Vectorized vs scalar at 1M rows: the selective scan, the count-only
/// kernel, and the fused filter+aggregate, at two forgotten fractions.
fn vectorized_vs_scalar(c: &mut Criterion) {
    const N: usize = 1_000_000;
    for forgotten in [0.2f64, 0.5] {
        let mut table = table_from_distribution(&DistributionKind::Uniform, N, 1_000_000, 3);
        forget_fraction(&mut table, forgotten, 4);
        // ~1 % selectivity predicate.
        let pred = RangePredicate::new(500_000, 510_000);
        let tag = format!("vectorized_vs_scalar_1m/forgotten_{forgotten}");

        let mut group = c.benchmark_group(&tag);
        group.bench_function("scan_scalar", |b| {
            b.iter(|| black_box(scalar::range_scan_active(&table, 0, black_box(pred))))
        });
        group.bench_function("scan_vectorized", |b| {
            b.iter(|| black_box(kernels::range_scan_active(&table, 0, black_box(pred))))
        });
        group.bench_function("count_scalar", |b| {
            b.iter(|| black_box(scalar::count_active_matches(&table, 0, black_box(pred))))
        });
        group.bench_function("count_vectorized", |b| {
            b.iter(|| black_box(kernels::count_active_matches(&table, 0, black_box(pred))))
        });
        group.bench_function("filter_agg_scalar", |b| {
            b.iter(|| {
                black_box(scalar::aggregate_active(
                    &table,
                    0,
                    Some(black_box(pred)),
                    AggKind::Avg,
                ))
            })
        });
        group.bench_function("filter_agg_vectorized", |b| {
            b.iter(|| {
                black_box(kernels::aggregate_active(
                    &table,
                    0,
                    Some(black_box(pred)),
                    AggKind::Avg,
                ))
            })
        });
        group.bench_function("whole_table_agg_scalar", |b| {
            b.iter(|| black_box(scalar::aggregate_active(&table, 0, None, AggKind::Avg)))
        });
        group.bench_function("whole_table_agg_vectorized", |b| {
            b.iter(|| black_box(kernels::aggregate_active(&table, 0, None, AggKind::Avg)))
        });
        group.finish();
    }
}

fn scan_kernels(c: &mut Criterion) {
    const N: usize = 200_000;
    let mut table = table_from_distribution(&DistributionKind::Uniform, N, 1_000_000, 1);
    forget_fraction(&mut table, 0.2, 2);
    let zonemap = ZoneMap::build(&table, 0);
    let index = SortedIndex::build(&table, 0);
    // ~1 % selectivity predicate.
    let pred = RangePredicate::new(500_000, 510_000);

    let mut group = c.benchmark_group("scan_200k_rows");
    group.bench_function("full_active_scan", |b| {
        b.iter(|| black_box(kernels::range_scan_active(&table, 0, black_box(pred))))
    });
    group.bench_function("full_scan_with_forgotten", |b| {
        b.iter(|| black_box(kernels::range_scan_all(&table, 0, black_box(pred))))
    });
    group.bench_function("count_only", |b| {
        b.iter(|| black_box(kernels::count_active_matches(&table, 0, black_box(pred))))
    });
    group.bench_function("zonemap_pruned_scan", |b| {
        b.iter(|| {
            let blocks = zonemap.candidate_blocks(pred.lo, pred.hi_inclusive());
            black_box(kernels::range_scan_blocks(
                &table,
                0,
                black_box(pred),
                &blocks,
                zonemap.block_rows(),
            ))
        })
    });
    group.bench_function("index_probe_active", |b| {
        b.iter(|| black_box(index.probe_range_active(&table, pred.lo, pred.hi_inclusive())))
    });
    group.finish();

    let mut agg = c.benchmark_group("aggregate_200k_rows");
    agg.bench_function("avg_whole_table", |b| {
        b.iter(|| black_box(kernels::aggregate_active(&table, 0, None, AggKind::Avg)))
    });
    agg.bench_function("avg_with_predicate", |b| {
        b.iter(|| {
            black_box(kernels::aggregate_active(
                &table,
                0,
                Some(black_box(pred)),
                AggKind::Avg,
            ))
        })
    });
    agg.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = scan_kernels, vectorized_vs_scalar
}
criterion_main!(benches);
