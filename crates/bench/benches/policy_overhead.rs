//! Engineering bench: victim-selection overhead per policy.
//!
//! The paper argues amnesia must be "an integral part of a DBMS kernel";
//! that only works if choosing victims is cheap relative to the update
//! batch it follows. Measures `select_victims` for every policy on a
//! 50k-row table with realistic staleness and access skew.

use std::hint::black_box;

use amnesia_bench::{forget_fraction, table_from_distribution};
use amnesia_core::policy::{PolicyContext, PolicyKind};
use amnesia_distrib::DistributionKind;
use amnesia_util::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn policy_overhead(c: &mut Criterion) {
    let mut table = table_from_distribution(&DistributionKind::Uniform, 50_000, 100_000, 1);
    forget_fraction(&mut table, 0.2, 2);
    // Give rot/overuse something to chew on: skewed access pattern.
    let mut rng = SimRng::new(3);
    for _ in 0..100_000 {
        if let Some(r) = table.random_active(&mut rng) {
            table.access_mut().touch(r, 1);
        }
    }

    let kinds = vec![
        PolicyKind::Fifo,
        PolicyKind::Uniform,
        PolicyKind::Anterograde { bias: 3.0 },
        PolicyKind::Rot { high_water_age: 0 },
        PolicyKind::Overuse,
        PolicyKind::Lru,
        PolicyKind::Area,
        PolicyKind::Ttl { max_age: 1 },
        PolicyKind::Pair,
        PolicyKind::Aligned { bins: 32 },
    ];

    let mut group = c.benchmark_group("policy/select_1000_of_40000");
    for kind in kinds {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                let mut policy = kind.build();
                let mut rng = SimRng::new(42);
                b.iter(|| {
                    let ctx = PolicyContext {
                        table: &table,
                        epoch: 5,
                    };
                    black_box(policy.select_victims(&ctx, 1000, &mut rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = policy_overhead
}
criterion_main!(benches);
