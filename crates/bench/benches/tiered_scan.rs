//! Tiered storage benchmarks: hot vs frozen vs mixed tables, and fused
//! compressed aggregation vs decompress-then-aggregate — the numbers
//! backing the tiered-column PR.
//!
//! The acceptance setting: a 1M-row table with at least half its blocks
//! frozen must show reduced `Table::memory_bytes` versus flat storage
//! (asserted here, per codec-shaped dataset), and `agg_compressed_*`
//! folding SUM/COUNT/MIN/MAX in code/offset/run space must beat decoding
//! frozen blocks into a scratch buffer first.

use std::hint::black_box;
use std::time::Duration;

use amnesia_columnar::compress::Encoding;
use amnesia_columnar::{Schema, Table};
use amnesia_engine::{batch, kernels};
use amnesia_util::SimRng;
use amnesia_workload::query::RangePredicate;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const N: usize = 1_000_000;

/// Build a 1M-row table with 20 % forgotten rows.
fn table_of(values: &[i64]) -> Table {
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(values, 0).unwrap();
    let mut rng = SimRng::new(11);
    for _ in 0..N / 5 {
        if let Some(r) = t.random_active(&mut rng) {
            t.forget(r, 1).unwrap();
        }
    }
    t
}

/// Dataset per codec: (name, expected winning encoding, values,
/// ~1 % selectivity predicate) — same shapes as the compressed_scan
/// bench so regressions are comparable across PRs.
fn datasets() -> Vec<(&'static str, Encoding, Vec<i64>, RangePredicate)> {
    let mut rng = SimRng::new(3);
    vec![
        (
            "rle",
            Encoding::Rle,
            (0..N).map(|i| (i / 2_000) as i64).collect(),
            RangePredicate::new(200, 205),
        ),
        (
            "dict",
            Encoding::Dict,
            {
                let vals = [1i64 << 40, -(1i64 << 50), 7, 1 << 61, -3];
                (0..N).map(|i| vals[(i * 7 + i / 13) % 5]).collect()
            },
            RangePredicate::new(0, 100),
        ),
        (
            "forpack",
            Encoding::ForPack,
            (0..N)
                .map(|_| 1_000_000 + rng.range_i64(0, 4_096))
                .collect(),
            RangePredicate::new(1_000_000, 1_000_041),
        ),
        (
            "delta",
            Encoding::Delta,
            {
                let mut acc = 0i64;
                (0..N)
                    .map(|_| {
                        acc += rng.range_i64(0, 3);
                        acc
                    })
                    .collect()
            },
            RangePredicate::new(500_000, 510_000),
        ),
    ]
}

fn tiered_scan(c: &mut Criterion) {
    for (name, expect_enc, values, pred) in datasets() {
        let hot = table_of(&values);
        let mut frozen = hot.clone();
        frozen.freeze_upto(N);
        let mut mixed = hot.clone();
        mixed.freeze_upto(N / 2);

        // The dataset must exercise the codec it is named for, and the
        // half-frozen table must satisfy the acceptance criterion:
        // reduced resident bytes versus flat storage.
        let tier = frozen.col_tier(0);
        let hits = (0..tier.frozen_blocks())
            .filter(|&b| tier.frozen(b).unwrap().encoded().encoding() == expect_enc)
            .count();
        assert!(
            hits * 2 > tier.frozen_blocks(),
            "{name}: only {hits}/{} blocks chose {expect_enc:?}",
            tier.frozen_blocks()
        );
        assert!(
            mixed.memory_bytes() < hot.memory_bytes(),
            "{name}: mixed {} must undercut flat {}",
            mixed.memory_bytes(),
            hot.memory_bytes()
        );
        assert!(frozen.memory_bytes() < mixed.memory_bytes());
        println!(
            "tiered_scan_1m/{name}: ratio {:.1}x, resident hot {} / mixed {} / frozen {}",
            frozen.compression_ratio(),
            hot.memory_bytes(),
            mixed.memory_bytes(),
            frozen.memory_bytes()
        );

        // Answers agree before we time anything.
        let want = kernels::range_scan_active(&hot, 0, pred);
        assert_eq!(kernels::range_scan_active(&frozen, 0, pred), want);
        assert_eq!(kernels::range_scan_active(&mixed, 0, pred), want);

        let mut group = c.benchmark_group(format!("tiered_scan_1m/{name}"));
        group.throughput(Throughput::Elements(N as u64));
        group.bench_function("scan_hot", |b| {
            b.iter(|| black_box(kernels::range_scan_active(&hot, 0, black_box(pred))))
        });
        group.bench_function("scan_frozen", |b| {
            b.iter(|| black_box(kernels::range_scan_active(&frozen, 0, black_box(pred))))
        });
        group.bench_function("scan_mixed", |b| {
            b.iter(|| black_box(kernels::range_scan_active(&mixed, 0, black_box(pred))))
        });
        group.bench_function("agg_fused_frozen", |b| {
            b.iter(|| {
                black_box(kernels::aggregate_state_tiered(
                    &frozen,
                    0,
                    Some(black_box(pred)),
                ))
            })
        });
        group.bench_function("agg_decompress_then_fold", |b| {
            let tier = frozen.col_tier(0);
            let mut buf: Vec<i64> = Vec::with_capacity(N);
            b.iter(|| {
                buf.clear();
                for blk in 0..tier.frozen_blocks() {
                    buf.extend(tier.block_dense(blk));
                }
                buf.extend_from_slice(tier.hot_values());
                black_box(batch::aggregate_active(
                    &buf,
                    frozen.activity_words(),
                    0,
                    buf.len(),
                    Some(black_box(pred)),
                ))
            })
        });
        group.bench_function("agg_unpredicated_fused", |b| {
            b.iter(|| black_box(kernels::aggregate_state_tiered(&frozen, 0, None)))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = tiered_scan
}
criterion_main!(benches);
