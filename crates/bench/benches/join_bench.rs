//! Join benchmarks: the JOIN-PREC experiment, the raw hash-join kernel,
//! and — since the tiered-join PR — tiered probe vs materialize-then-join
//! over hot / frozen / mixed tables.
//!
//! The acceptance setting: on frozen RLE- and dict-shaped probe data the
//! tier-aware join (build streams compressed blocks, probe runs in
//! compressed space behind key-range meta pruning) must beat decoding
//! every frozen block into a dense `Vec<Value>` and joining that — and it
//! must do so with **zero** dense block decodes, asserted here via the
//! thread-local `block_decodes` counter before anything is timed.

use std::hint::black_box;
use std::time::Duration;

use amnesia_columnar::compress::{block_decodes, Encoding};
use amnesia_columnar::{RowId, Schema, Table, Value};
use amnesia_core::experiments::{join_precision_experiment, referential_actions_table, Scale};
use amnesia_engine::join::{hash_join, hash_join_count, JoinResult, JoinStats};
use amnesia_engine::parallel::par_hash_join;
use amnesia_engine::ForgetVisibility;
use amnesia_util::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_scale() -> Scale {
    Scale {
        dbsize: 300,
        queries_per_batch: 100,
        batches: 8,
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

/// Parent of `n` serial keys; child of `4n` rows with skewed fks; then
/// `forget_frac` of each side marked forgotten.
fn join_tables(n: usize, forget_frac: f64) -> (Table, Table) {
    let mut rng = SimRng::new(11);
    let mut parent = Table::new(Schema::single("key"));
    parent
        .insert_batch(&(0..n as i64).collect::<Vec<_>>(), 0)
        .unwrap();
    let mut child = Table::new(Schema::new(vec!["fk", "payload"]));
    for _ in 0..4 * n {
        let fk = (rng.f64() * rng.f64() * n as f64) as i64;
        child.insert(&[fk, rng.range_i64(0, 1_000_000)], 0).unwrap();
    }
    for t in [&mut parent, &mut child] {
        let total = t.num_rows();
        let forget = (total as f64 * forget_frac) as usize;
        for _ in 0..forget {
            if let Some(r) = t.random_active(&mut rng) {
                t.forget(r, 1).unwrap();
            }
        }
    }
    (parent, child)
}

/// The pre-tier join, preserved as the baseline: materialize both
/// columns densely (decoding every frozen block), then hash-join the
/// dense copies row-at-a-time over the activity bitmap.
fn materialize_then_join(left: &Table, right: &Table) -> usize {
    use std::collections::HashMap;
    let left_vals = left.col_values_dense(0);
    let right_vals = right.col_values_dense(0);
    let left_vals = left_vals.as_ref();
    let right_vals = right_vals.as_ref();
    let mut build: HashMap<Value, Vec<RowId>> = HashMap::with_capacity(left.active_rows());
    for r in left.iter_active() {
        build.entry(left_vals[r.as_usize()]).or_default().push(r);
    }
    let mut pairs = 0usize;
    for r in right.iter_active() {
        if let Some(ls) = build.get(&right_vals[r.as_usize()]) {
            pairs += ls.len();
        }
    }
    pairs
}

/// Codec-shaped join datasets: (name, acceptable winning encodings,
/// parent values, child fk values). RLE: child fks arrive in long runs.
/// Dict: a handful of hot keys. Serial: monotone-with-jitter fks — tiny
/// deltas and a narrow band, so delta or frame-of-reference wins.
type JoinDataset = (&'static str, &'static [Encoding], Vec<i64>, Vec<i64>);

fn tiered_datasets() -> Vec<JoinDataset> {
    const N: usize = 200_000;
    let mut rng = SimRng::new(3);
    vec![
        (
            "rle",
            &[Encoding::Rle][..],
            (0..2_000).collect(),
            (0..N).map(|i| (i / 400) as i64).collect(),
        ),
        (
            "dict",
            &[Encoding::Dict][..],
            (0..2_000).collect(),
            (0..N)
                .map(|i| ((i * 7 + i / 13) % 40) as i64 * 50)
                .collect(),
        ),
        (
            "serial",
            &[Encoding::Delta, Encoding::ForPack][..],
            (0..2_000).collect(),
            (0..N)
                .map(|i| ((i * 2_000 / N) as i64 + rng.range_i64(0, 5)).min(1_999))
                .collect(),
        ),
    ]
}

fn join(c: &mut Criterion) {
    let scale = bench_scale();

    c.bench_function("join/experiment", |b| {
        b.iter(|| black_box(join_precision_experiment(black_box(&scale)).expect("join")))
    });
    c.bench_function("join/referential_actions", |b| {
        b.iter(|| black_box(referential_actions_table(black_box(&scale)).expect("actions")))
    });

    let mut kernel = c.benchmark_group("join/hash_kernel");
    for n in [1_000usize, 10_000] {
        let (parent, child) = join_tables(n, 0.3);
        kernel.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(hash_join(
                    black_box(&parent),
                    0,
                    black_box(&child),
                    0,
                    ForgetVisibility::ActiveOnly,
                ))
            })
        });
    }
    kernel.finish();

    // Count-only joins skip pair materialization; the gap is the cost of
    // building the output.
    let (parent, child) = join_tables(10_000, 0.3);
    c.bench_function("join/count_only_10k", |b| {
        b.iter(|| {
            black_box(hash_join_count(
                black_box(&parent),
                0,
                black_box(&child),
                0,
                ForgetVisibility::ActiveOnly,
            ))
        })
    });

    // Tiered join: probe frozen blocks in compressed space vs decode
    // them densely first, over hot / mixed / frozen probe sides.
    for (name, expect_encs, parent_vals, child_vals) in tiered_datasets() {
        let n = child_vals.len();
        let mut rng = SimRng::new(17);
        let mut parent = Table::new(Schema::single("key"));
        parent.insert_batch(&parent_vals, 0).unwrap();
        let mut hot = Table::new(Schema::single("fk"));
        hot.insert_batch(&child_vals, 0).unwrap();
        for t in [&mut parent, &mut hot] {
            let forget = t.num_rows() / 5;
            for _ in 0..forget {
                if let Some(r) = t.random_active(&mut rng) {
                    t.forget(r, 1).unwrap();
                }
            }
        }
        let mut frozen = hot.clone();
        frozen.freeze_upto(n);
        let mut mixed = hot.clone();
        mixed.freeze_upto(n / 2);
        let mut frozen_parent = parent.clone();
        frozen_parent.freeze_upto(parent.num_rows());

        // The dataset must exercise the codec it is named for.
        let tier = frozen.col_tier(0);
        let hits = (0..tier.frozen_blocks())
            .filter(|&b| expect_encs.contains(&tier.frozen(b).unwrap().encoded().encoding()))
            .count();
        assert!(
            hits * 2 > tier.frozen_blocks(),
            "{name}: only {hits}/{} blocks chose one of {expect_encs:?}",
            tier.frozen_blocks()
        );

        // Answers agree, and the tiered join decodes ZERO frozen blocks
        // — the whole point of probing in compressed space.
        let want = materialize_then_join(&parent, &hot);
        let before = block_decodes();
        let r: JoinResult = hash_join(&frozen_parent, 0, &frozen, 0, ForgetVisibility::ActiveOnly);
        assert_eq!(
            block_decodes() - before,
            0,
            "{name}: tiered join must not decode a single frozen block"
        );
        assert_eq!(r.stats.output_pairs, want, "{name}");
        let _: JoinStats = r.stats;

        let mut group = c.benchmark_group(format!("join/tiered_{name}"));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function("tiered_hot", |b| {
            b.iter(|| {
                black_box(hash_join(
                    black_box(&parent),
                    0,
                    black_box(&hot),
                    0,
                    ForgetVisibility::ActiveOnly,
                ))
            })
        });
        group.bench_function("tiered_mixed", |b| {
            b.iter(|| {
                black_box(hash_join(
                    black_box(&parent),
                    0,
                    black_box(&mixed),
                    0,
                    ForgetVisibility::ActiveOnly,
                ))
            })
        });
        group.bench_function("tiered_frozen", |b| {
            b.iter(|| {
                black_box(hash_join(
                    black_box(&frozen_parent),
                    0,
                    black_box(&frozen),
                    0,
                    ForgetVisibility::ActiveOnly,
                ))
            })
        });
        group.bench_function("materialize_then_join_frozen", |b| {
            b.iter(|| {
                black_box(materialize_then_join(
                    black_box(&frozen_parent),
                    black_box(&frozen),
                ))
            })
        });
        group.bench_function("tiered_count_frozen", |b| {
            b.iter(|| {
                black_box(hash_join_count(
                    black_box(&frozen_parent),
                    0,
                    black_box(&frozen),
                    0,
                    ForgetVisibility::ActiveOnly,
                ))
            })
        });
        group.bench_function("par_tiered_frozen_4t", |b| {
            b.iter(|| {
                black_box(par_hash_join(
                    black_box(&frozen_parent),
                    0,
                    black_box(&frozen),
                    0,
                    ForgetVisibility::ActiveOnly,
                    4,
                ))
            })
        });
        group.finish();
    }

    // Sanity: visibility changes the answer, never the validity.
    let active = hash_join_count(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
    let truth = hash_join_count(&parent, 0, &child, 0, ForgetVisibility::ScanSeesForgotten);
    assert!(active <= truth);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = join
}
criterion_main!(benches);
