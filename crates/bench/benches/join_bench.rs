//! JOIN-PREC bench: regenerate the join-precision experiment and measure
//! the raw hash-join kernel at several build/probe cardinalities and
//! forgotten fractions.

use std::hint::black_box;
use std::time::Duration;

use amnesia_columnar::{RowId, Schema, Table};
use amnesia_core::experiments::{join_precision_experiment, referential_actions_table, Scale};
use amnesia_engine::join::{hash_join, hash_join_count};
use amnesia_engine::ForgetVisibility;
use amnesia_util::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scale() -> Scale {
    Scale {
        dbsize: 300,
        queries_per_batch: 100,
        batches: 8,
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

/// Parent of `n` serial keys; child of `4n` rows with skewed fks; then
/// `forget_frac` of each side marked forgotten.
fn join_tables(n: usize, forget_frac: f64) -> (Table, Table) {
    let mut rng = SimRng::new(11);
    let mut parent = Table::new(Schema::single("key"));
    parent
        .insert_batch(&(0..n as i64).collect::<Vec<_>>(), 0)
        .unwrap();
    let mut child = Table::new(Schema::new(vec!["fk", "payload"]));
    for _ in 0..4 * n {
        let fk = (rng.f64() * rng.f64() * n as f64) as i64;
        child.insert(&[fk, rng.range_i64(0, 1_000_000)], 0).unwrap();
    }
    for t in [&mut parent, &mut child] {
        let total = t.num_rows();
        let forget = (total as f64 * forget_frac) as usize;
        for _ in 0..forget {
            if let Some(r) = t.random_active(&mut rng) {
                t.forget(r, 1).unwrap();
            }
        }
    }
    (parent, child)
}

fn join(c: &mut Criterion) {
    let scale = bench_scale();

    c.bench_function("join/experiment", |b| {
        b.iter(|| black_box(join_precision_experiment(black_box(&scale)).expect("join")))
    });
    c.bench_function("join/referential_actions", |b| {
        b.iter(|| black_box(referential_actions_table(black_box(&scale)).expect("actions")))
    });

    let mut kernel = c.benchmark_group("join/hash_kernel");
    for n in [1_000usize, 10_000] {
        let (parent, child) = join_tables(n, 0.3);
        kernel.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(hash_join(
                    black_box(&parent),
                    0,
                    black_box(&child),
                    0,
                    ForgetVisibility::ActiveOnly,
                ))
            })
        });
    }
    kernel.finish();

    // Count-only joins skip pair materialization; the gap is the cost of
    // building the output.
    let (parent, child) = join_tables(10_000, 0.3);
    c.bench_function("join/count_only_10k", |b| {
        b.iter(|| {
            black_box(hash_join_count(
                black_box(&parent),
                0,
                black_box(&child),
                0,
                ForgetVisibility::ActiveOnly,
            ))
        })
    });

    // Sanity: visibility changes the answer, never the validity.
    let active = hash_join_count(&parent, 0, &child, 0, ForgetVisibility::ActiveOnly);
    let truth = hash_join_count(&parent, 0, &child, 0, ForgetVisibility::ScanSeesForgotten);
    assert!(active <= truth);
    let _ = RowId(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = join
}
criterion_main!(benches);
