//! ABL-COMP bench (§4.4): codec encode/decode throughput per data
//! distribution — the engineering side of "compression postpones the
//! decision to forget".

use std::hint::black_box;

use amnesia_columnar::compress::{EncodedBlock, Encoding};
use amnesia_distrib::DistributionKind;
use amnesia_util::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn values_for(dist: &DistributionKind, n: usize) -> Vec<i64> {
    let mut rng = SimRng::new(7);
    let mut d = dist.build(100_000, 7);
    (0..n).map(|_| d.sample(&mut rng)).collect()
}

fn compression(c: &mut Criterion) {
    const N: usize = 65_536;
    for dist in DistributionKind::paper_set() {
        let values = values_for(&dist, N);

        let mut enc = c.benchmark_group(format!("encode/{}", dist.name()));
        enc.throughput(Throughput::Bytes((N * 8) as u64));
        for codec in Encoding::ALL {
            enc.bench_with_input(
                BenchmarkId::from_parameter(codec.name()),
                &codec,
                |b, &codec| b.iter(|| black_box(EncodedBlock::encode(black_box(&values), codec))),
            );
        }
        enc.finish();

        let mut dec = c.benchmark_group(format!("decode/{}", dist.name()));
        dec.throughput(Throughput::Bytes((N * 8) as u64));
        for codec in Encoding::ALL {
            let block = EncodedBlock::encode(&values, codec);
            dec.bench_with_input(
                BenchmarkId::from_parameter(codec.name()),
                &block,
                |b, block| b.iter(|| black_box(block.decode())),
            );
        }
        dec.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = compression
}
criterion_main!(benches);
