//! Micro-model microbenchmarks: fit cost vs tuple count, estimate cost vs
//! bin count, and the full ABL-MODEL experiment.

use std::hint::black_box;
use std::time::Duration;

use amnesia_columnar::{MicroModel, ModelStore, ValueRange};
use amnesia_core::experiments::{ablation_micromodels, Scale};
use amnesia_util::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn values(n: usize) -> Vec<i64> {
    let mut rng = SimRng::new(23);
    (0..n).map(|_| rng.range_i64(0, 100_000)).collect()
}

fn micromodel(c: &mut Criterion) {
    let mut fit = c.benchmark_group("micromodel/fit");
    for n in [1_000usize, 10_000, 100_000] {
        let vals = values(n);
        fit.throughput(Throughput::Elements(n as u64));
        fit.bench_with_input(BenchmarkId::from_parameter(n), &vals, |b, vals| {
            b.iter(|| black_box(MicroModel::fit(0, black_box(vals), 64)))
        });
    }
    fit.finish();

    let mut est = c.benchmark_group("micromodel/estimate");
    for bins in [16usize, 64, 256] {
        let mut store = ModelStore::new(bins);
        for (epoch, chunk) in values(50_000).chunks(5_000).enumerate() {
            for &v in chunk {
                store.absorb(epoch as u64, v);
            }
        }
        store.seal();
        est.bench_with_input(BenchmarkId::from_parameter(bins), &store, |b, store| {
            let mut rng = SimRng::new(5);
            b.iter(|| {
                let lo = rng.range_i64(0, 90_000);
                black_box(store.estimate(Some(ValueRange {
                    lo,
                    hi: lo + 10_000,
                })))
            })
        });
    }
    est.finish();

    c.bench_function("micromodel/abl_model_experiment", |b| {
        let scale = Scale {
            dbsize: 300,
            queries_per_batch: 50,
            batches: 6,
            domain: 50_000,
            seed: 0xC1D8_2017,
        };
        b.iter(|| black_box(ablation_micromodels(black_box(&scale)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = micromodel
}
criterion_main!(benches);
