//! T-VOL bench (§4.2): low (10 %) vs high (80 %) update volatility — the
//! textual comparison in the paper, regenerated as a table.

use std::hint::black_box;

use amnesia_core::config::SimConfig;
use amnesia_core::experiments::{volatility_table, Scale};
use amnesia_core::policy::PolicyKind;
use amnesia_core::sim::Simulator;
use amnesia_distrib::DistributionKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_scale() -> Scale {
    Scale {
        dbsize: 300,
        queries_per_batch: 60,
        batches: 8,
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

fn volatility(c: &mut Criterion) {
    let scale = bench_scale();

    c.bench_function("volatility/full_table", |b| {
        b.iter(|| {
            black_box(
                volatility_table(black_box(&scale), DistributionKind::Uniform).expect("volatility"),
            )
        })
    });

    let mut group = c.benchmark_group("volatility/sim");
    for upd in [0.10f64, 0.80] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("upd{}", (upd * 100.0) as u32)),
            &upd,
            |b, &upd| {
                b.iter(|| {
                    let cfg = SimConfig {
                        dbsize: scale.dbsize,
                        domain: scale.domain,
                        queries_per_batch: scale.queries_per_batch,
                        batches: scale.batches,
                        seed: scale.seed,
                        update_fraction: upd,
                        distribution: DistributionKind::Uniform,
                        policy: PolicyKind::Uniform,
                        ..SimConfig::default()
                    };
                    black_box(Simulator::new(cfg).unwrap().run().unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = volatility
}
criterion_main!(benches);
