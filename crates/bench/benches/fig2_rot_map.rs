//! FIG2 bench: regenerate the Figure 2 rot map (query-driven rot under the
//! four data distributions) and measure per-distribution simulation cost.

use std::hint::black_box;

use amnesia_core::config::SimConfig;
use amnesia_core::experiments::{fig2_rot_map, Scale};
use amnesia_core::policy::PolicyKind;
use amnesia_core::sim::Simulator;
use amnesia_distrib::DistributionKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_scale() -> Scale {
    Scale {
        dbsize: 500,
        queries_per_batch: 100,
        batches: 10,
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

fn fig2(c: &mut Criterion) {
    let scale = bench_scale();

    c.bench_function("fig2/full_map", |b| {
        b.iter(|| black_box(fig2_rot_map(black_box(&scale)).expect("fig2")))
    });

    let mut group = c.benchmark_group("fig2/rot_by_distribution");
    for dist in DistributionKind::paper_set() {
        group.bench_with_input(
            BenchmarkId::from_parameter(dist.name()),
            &dist,
            |b, dist| {
                b.iter(|| {
                    let cfg = SimConfig {
                        dbsize: scale.dbsize,
                        domain: scale.domain,
                        queries_per_batch: scale.queries_per_batch,
                        batches: scale.batches,
                        seed: scale.seed,
                        update_fraction: 0.20,
                        distribution: dist.clone(),
                        policy: PolicyKind::Rot { high_water_age: 2 },
                        ..SimConfig::default()
                    };
                    black_box(Simulator::new(cfg).unwrap().run().unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = fig2
}
criterion_main!(benches);
