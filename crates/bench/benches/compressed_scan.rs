//! Fused compressed-block scans vs decompress-then-scan, per codec, plus
//! word-granularity zone-map pruning — the numbers backing the
//! compressed-execution PR (and ROADMAP's "scan cold data at hot-path
//! speed" target).
//!
//! Four datasets are shaped so [`EncodedBlock::encode_auto`] picks each
//! codec in turn (asserted, so a codec regression shows up here, not in
//! silently-moved goalposts). Both contenders produce identical row-id
//! vectors; the fused path never materializes values.

use std::hint::black_box;
use std::time::Duration;

use amnesia_columnar::compress::Encoding;
use amnesia_columnar::{Schema, Table, WordZoneMap};
use amnesia_engine::{batch, kernels};
use amnesia_util::SimRng;
use amnesia_workload::query::RangePredicate;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const N: usize = 1_000_000;

/// Build a 1M-row table with 20 % forgotten rows.
fn table_of(values: Vec<i64>) -> Table {
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(&values, 0).unwrap();
    let mut rng = SimRng::new(11);
    for _ in 0..N / 5 {
        if let Some(r) = t.random_active(&mut rng) {
            t.forget(r, 1).unwrap();
        }
    }
    t
}

/// Dataset per codec: (name, expected winning encoding, values,
/// ~1 % selectivity predicate).
fn datasets() -> Vec<(&'static str, Encoding, Vec<i64>, RangePredicate)> {
    let mut rng = SimRng::new(3);
    vec![
        (
            // Long constant runs: epoch-style data.
            "rle",
            Encoding::Rle,
            (0..N).map(|i| (i / 2_000) as i64).collect(),
            RangePredicate::new(200, 205),
        ),
        (
            // Few distinct, far-apart values in shuffled order.
            "dict",
            Encoding::Dict,
            {
                let vals = [1i64 << 40, -(1i64 << 50), 7, 1 << 61, -3];
                (0..N).map(|i| vals[(i * 7 + i / 13) % 5]).collect()
            },
            RangePredicate::new(0, 100),
        ),
        (
            // Narrow band around a large base.
            "forpack",
            Encoding::ForPack,
            (0..N)
                .map(|_| 1_000_000 + rng.range_i64(0, 4_096))
                .collect(),
            RangePredicate::new(1_000_000, 1_000_041),
        ),
        (
            // Sorted with small jitter: classic delta territory.
            "delta",
            Encoding::Delta,
            {
                let mut acc = 0i64;
                (0..N)
                    .map(|_| {
                        acc += rng.range_i64(0, 3);
                        acc
                    })
                    .collect()
            },
            RangePredicate::new(500_000, 510_000),
        ),
    ]
}

fn compressed_scan(c: &mut Criterion) {
    for (name, expect_enc, values, pred) in datasets() {
        let t = table_of(values);
        let seg = t.compress_column(0);
        // The dataset must actually exercise the codec it is named for.
        let hits = (0..seg.frozen_segments())
            .filter(|&b| seg.frozen_block(b).unwrap().encoding() == expect_enc)
            .count();
        assert!(
            hits * 2 > seg.frozen_segments(),
            "{name}: only {hits}/{} blocks chose {expect_enc:?}",
            seg.frozen_segments()
        );
        println!(
            "compressed_scan_1m/{name}: {hits}/{} blocks {}, ratio {:.1}x",
            seg.frozen_segments(),
            expect_enc.name(),
            seg.compression_ratio()
        );

        let mut group = c.benchmark_group(format!("compressed_scan_1m/{name}"));
        group.throughput(Throughput::Elements(N as u64));
        group.bench_function("fused_decode_filter", |b| {
            b.iter(|| black_box(kernels::range_scan_compressed(&t, &seg, black_box(pred))))
        });
        group.bench_function("fused_count", |b| {
            b.iter(|| black_box(kernels::count_compressed(&t, &seg, black_box(pred))))
        });
        group.bench_function("decompress_then_scan", |b| {
            let mut buf: Vec<i64> = Vec::with_capacity(N);
            b.iter(|| {
                buf.clear();
                for blk in 0..seg.num_blocks() {
                    buf.extend(seg.block_values(blk));
                }
                let mut out = Vec::new();
                batch::scan_active_into(
                    &buf,
                    t.activity_words(),
                    0,
                    buf.len(),
                    black_box(pred),
                    &mut out,
                );
                black_box(out)
            })
        });
        group.finish();
    }
}

fn zonemap_words(c: &mut Criterion) {
    // Sorted column, ~1 % selectivity: the acceptance setting for
    // word-granularity pruning.
    let t = table_of((0..N as i64).collect());
    let wz = WordZoneMap::build(&t, 0);
    let pred = RangePredicate::new(500_000, 510_000);
    let skipped = wz.prune_fraction(pred.lo, pred.hi_inclusive());
    println!("zonemap_words_1m: prune fraction {skipped:.4}");
    assert!(
        skipped >= 0.9,
        "word zones must skip >= 90% of words on sorted data, got {skipped:.4}"
    );

    let mut group = c.benchmark_group("zonemap_words_1m");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("scan_unzoned", |b| {
        b.iter(|| black_box(kernels::range_scan_active(&t, 0, black_box(pred))))
    });
    group.bench_function("scan_word_zoned", |b| {
        b.iter(|| {
            black_box(kernels::range_scan_active_zoned(
                &t,
                0,
                &wz,
                black_box(pred),
            ))
        })
    });
    group.bench_function("agg_word_zoned", |b| {
        b.iter(|| {
            black_box(kernels::aggregate_state_active_zoned(
                &t,
                0,
                &wz,
                Some(black_box(pred)),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = compressed_scan, zonemap_words
}
criterion_main!(benches);
