//! Parallel kernel bench: scan and aggregate speedup vs thread count on
//! a large amnesiac table (30 % forgotten).

use std::hint::black_box;
use std::time::Duration;

use amnesia_columnar::{Schema, Table};
use amnesia_engine::kernels;
use amnesia_engine::parallel::{par_aggregate_active, par_range_scan_active};
use amnesia_util::SimRng;
use amnesia_workload::query::{AggKind, RangePredicate};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn big_table(n: usize) -> Table {
    let mut rng = SimRng::new(13);
    let values: Vec<i64> = (0..n).map(|_| rng.range_i64(0, 1_000_000)).collect();
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(&values, 0).unwrap();
    for _ in 0..(n as f64 * 0.3) as usize {
        if let Some(r) = t.random_active(&mut rng) {
            t.forget(r, 1).unwrap();
        }
    }
    t
}

fn parallel(c: &mut Criterion) {
    let n = 2_000_000usize;
    let t = big_table(n);
    let pred = RangePredicate::new(250_000, 750_000);

    let mut scan = c.benchmark_group("parallel/range_scan");
    scan.throughput(Throughput::Elements(n as u64));
    scan.bench_function("serial_scalar", |b| {
        b.iter(|| {
            black_box(amnesia_engine::batch::scalar::range_scan_active(
                &t,
                0,
                black_box(pred),
            ))
        })
    });
    scan.bench_function("serial", |b| {
        b.iter(|| black_box(kernels::range_scan_active(&t, 0, black_box(pred))))
    });
    for threads in [2usize, 4, 8] {
        scan.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(par_range_scan_active(&t, 0, black_box(pred), threads)))
            },
        );
    }
    scan.finish();

    let mut agg = c.benchmark_group("parallel/aggregate_avg");
    agg.throughput(Throughput::Elements(n as u64));
    agg.bench_function("serial_scalar", |b| {
        b.iter(|| {
            black_box(amnesia_engine::batch::scalar::aggregate_active(
                &t,
                0,
                Some(black_box(pred)),
                AggKind::Avg,
            ))
        })
    });
    agg.bench_function("serial", |b| {
        b.iter(|| {
            black_box(kernels::aggregate_active(
                &t,
                0,
                Some(black_box(pred)),
                AggKind::Avg,
            ))
        })
    });
    for threads in [2usize, 4, 8] {
        agg.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(par_aggregate_active(
                        &t,
                        0,
                        Some(black_box(pred)),
                        AggKind::Avg,
                        threads,
                    ))
                })
            },
        );
    }
    agg.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = parallel
}
criterion_main!(benches);
