//! FIG1 bench: regenerate the Figure 1 amnesia map (fifo / uniform / ante
//! / area retention after 10 batches of 20 % updates) and measure the cost
//! of each policy's full simulation.

use std::hint::black_box;

use amnesia_core::config::SimConfig;
use amnesia_core::experiments::{fig1_amnesia_map, Scale};
use amnesia_core::policy::PolicyKind;
use amnesia_core::sim::Simulator;
use amnesia_distrib::DistributionKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_scale() -> Scale {
    Scale {
        dbsize: 500,
        queries_per_batch: 100,
        batches: 10,
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

fn fig1(c: &mut Criterion) {
    let scale = bench_scale();

    // Whole-figure regeneration (all four strategies).
    c.bench_function("fig1/full_map", |b| {
        b.iter(|| black_box(fig1_amnesia_map(black_box(&scale)).expect("fig1")))
    });

    // Per-policy simulation cost.
    let mut group = c.benchmark_group("fig1/policy_sim");
    for kind in PolicyKind::fig1_set() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let cfg = SimConfig {
                        dbsize: scale.dbsize,
                        domain: scale.domain,
                        queries_per_batch: scale.queries_per_batch,
                        batches: scale.batches,
                        seed: scale.seed,
                        update_fraction: 0.20,
                        distribution: DistributionKind::Serial,
                        policy: kind.clone(),
                        ..SimConfig::default()
                    };
                    black_box(Simulator::new(cfg).unwrap().run().unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = fig1
}
criterion_main!(benches);
