//! SQL-over-physical-plan benchmarks: the unified execution API at
//! 1M rows.
//!
//! The acceptance setting for the physical-plan redesign: a
//! multi-predicate `SELECT … WHERE a BETWEEN x AND y AND b > z GROUP BY g`
//! over a **fully-frozen** table must (a) execute with zero block
//! decodes — the scan's selection masks and the grouped fold both work
//! in compressed space — and (b) beat the row-at-a-time reference
//! executor (`iter_active()` + per-row `Table::value` + a scalar
//! group `HashMap`, exactly what `amnesia-sql` ran before the redesign)
//! by at least 5x. Both are asserted below before anything is timed.
//!
//! Legs: the grouped-aggregate query over hot / mixed / frozen tables,
//! the row-at-a-time reference on the same frozen table, a global
//! (ungrouped) multi-predicate aggregate, and a selective projection.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::{Duration, Instant};

use amnesia_columnar::compress::block_decodes;
use amnesia_columnar::{Schema, Table, Value};
use amnesia_engine::{
    q_error, ColPred, ColumnStats, CostModel, ExecMode, Executor, PhysItem, PhysScan, PhysicalPlan,
    PlanHint,
};
use amnesia_sql::{run, run_with, Catalog, Datum, QueryOutcome};
use amnesia_util::SimRng;
use amnesia_workload::AggKind;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const N: usize = 1_000_000;

/// WHERE a BETWEEN A_LO AND A_HI AND b > B_GT (~4 % selectivity, so the
/// vectorized scan's mask passes dominate and the reference pays the
/// full row-at-a-time toll).
const A_LO: i64 = 2_000;
const A_HI: i64 = 2_399;
const B_GT: i64 = 30;

const GROUPED_SQL: &str = "SELECT g, COUNT(*) AS n, SUM(a) AS s, AVG(a) AS m FROM t \
     WHERE a BETWEEN 2000 AND 2399 AND b > 30 GROUP BY g ORDER BY s DESC LIMIT 10";

/// A catalog over one explicitly-built table.
struct BenchCatalog {
    table: Table,
}

impl Catalog for BenchCatalog {
    fn resolve(&self, name: &str) -> Option<&Table> {
        (name == "t").then_some(&self.table)
    }

    fn table_names(&self) -> Vec<String> {
        vec!["t".to_string()]
    }
}

/// t(g, a, b): g in long runs (RLE-friendly, ~500 groups), a
/// insertion-correlated with jitter — the paper's sensor-style shape,
/// where values arrive in time order, so frozen block meta is tight and
/// a narrow predicate prunes almost every block — b cyclic
/// small-domain; 20 % forgotten.
fn table() -> Table {
    let mut rng = SimRng::new(0xC1D8);
    let mut t = Table::new(Schema::new(vec!["g", "a", "b"]));
    for i in 0..N {
        let g = (i / 2_000) as i64;
        let a = (i / 100) as i64 + rng.range_i64(0, 50);
        let b = (i as i64 * 31) % 100;
        t.insert(&[g, a, b], 0).unwrap();
    }
    for _ in 0..N / 5 {
        if let Some(r) = t.random_active(&mut rng) {
            t.forget(r, 1).unwrap();
        }
    }
    t
}

fn sql_rows(cat: &BenchCatalog, sql: &str) -> Vec<Vec<Datum>> {
    match run(cat, sql).unwrap() {
        QueryOutcome::Rows(rs) => rs.rows,
        QueryOutcome::Plan(p) => panic!("unexpected plan {p}"),
    }
}

/// [`sql_rows`] on an explicit worker count (`1` = the serial oracle).
fn sql_rows_at(cat: &BenchCatalog, sql: &str, threads: usize) -> Vec<Vec<Datum>> {
    let ex = Executor::default().with_exec_mode(if threads > 1 {
        ExecMode::Parallel(threads)
    } else {
        ExecMode::Serial
    });
    match run_with(cat, sql, &ex).unwrap() {
        QueryOutcome::Rows(rs) => rs.rows,
        QueryOutcome::Plan(p) => panic!("unexpected plan {p}"),
    }
}

/// The morsel-scheduler scaling gate (CI: the `scaling-gate` job).
///
/// `AMNESIA_SCALE_GATE` semantics: a number (e.g. `3.5`) enforces that
/// 8-thread speedup over serial; `0` disables; unset auto-detects —
/// enforce 3.5x only when the host actually has ≥ 8 cores, otherwise
/// print the sweep and skip (laptops and 1-core CI runners can't
/// demonstrate 8-way scaling).
fn required_scale_gate() -> Option<f64> {
    match std::env::var("AMNESIA_SCALE_GATE") {
        Ok(v) => {
            let x: f64 = v.trim().parse().unwrap_or(0.0);
            (x > 0.0).then_some(x)
        }
        Err(_) => {
            let cores = std::thread::available_parallelism().map_or(1, usize::from);
            (cores >= 8).then_some(3.5)
        }
    }
}

/// The predicate-ordering gate (CI: part of the `scaling-gate` job).
///
/// `AMNESIA_ORDER_GATE` semantics: a number (e.g. `2.0`) enforces that
/// cost-driven speedup over the syntactic order on the worst-order
/// query; `0` disables; unset defaults to the 2x acceptance bar.
fn required_order_gate() -> Option<f64> {
    match std::env::var("AMNESIA_ORDER_GATE") {
        Ok(v) => {
            let x: f64 = v.trim().parse().unwrap_or(0.0);
            (x > 0.0).then_some(x)
        }
        Err(_) => Some(2.0),
    }
}

/// The estimation-quality gate: max q-error allowed on the uniform and
/// zipf columns. `AMNESIA_QERROR_GATE` overrides (0 disables); unset
/// defaults to 8.0.
fn required_qerror_gate() -> Option<f64> {
    match std::env::var("AMNESIA_QERROR_GATE") {
        Ok(v) => {
            let x: f64 = v.trim().parse().unwrap_or(0.0);
            (x > 0.0).then_some(x)
        }
        Err(_) => Some(8.0),
    }
}

/// Worst-order table: three wide noise columns (`w1..w3`, uniform over
/// `[0, 1000)`, so every frozen block's meta spans the domain and prunes
/// nothing) plus one selective column `s` whose 1 % predicate also can't
/// prune blocks — the speedup must come purely from *evaluation order*.
fn worst_order_table() -> Table {
    let mut rng = SimRng::new(0xBEEF);
    let mut t = Table::new(Schema::new(vec!["w1", "w2", "w3", "s"]));
    for i in 0..N {
        t.insert(
            &[
                rng.range_i64(0, 1000),
                rng.range_i64(0, 1000),
                rng.range_i64(0, 1000),
                (i as i64).wrapping_mul(7919) % 1000,
            ],
            0,
        )
        .unwrap();
    }
    t.freeze_upto(N);
    t
}

/// COUNT(*) under the conjunction written worst-first: three ~90 % noise
/// predicates lead, the ~1 % selective predicate trails. Syntactic order
/// pays three dense passes per block before the selective one;
/// cost-based order runs the selective predicate first and refines the
/// noise predicates over its sparse survivors.
fn worst_order_plan(hint: PlanHint) -> PhysicalPlan {
    PhysicalPlan {
        scans: vec![PhysScan {
            preds: vec![
                ColPred::range(0, 0, 899),
                ColPred::range(1, 0, 899),
                ColPred::range(2, 0, 899),
                ColPred::range(3, 0, 9),
            ],
            label: "Scan w [active-only]".into(),
        }],
        join: None,
        items: vec![PhysItem::Aggregate {
            kind: AggKind::Count,
            arg: None,
            display: "count(*)".into(),
        }],
        group_by: None,
        order_by: None,
        limit: None,
        hint,
    }
}

/// The row-at-a-time reference: what `amnesia-sql` executed before the
/// physical-plan redesign — `iter_active()` per slot, one `Table::value`
/// per predicate per row, a `HashMap` group probe per surviving row.
fn reference_grouped(t: &Table) -> Vec<Vec<Datum>> {
    let mut index: HashMap<Value, usize> = HashMap::new();
    let mut groups: Vec<(Value, u64, i128)> = Vec::new();
    for r in t.iter_active() {
        let a = t.value(1, r);
        if !(A_LO..=A_HI).contains(&a) {
            continue;
        }
        if t.value(2, r) <= B_GT {
            continue;
        }
        let g = t.value(0, r);
        let slot = match index.get(&g) {
            Some(&s) => s,
            None => {
                index.insert(g, groups.len());
                groups.push((g, 0, 0));
                groups.len() - 1
            }
        };
        groups[slot].1 += 1;
        groups[slot].2 += a as i128;
    }
    let mut rows: Vec<Vec<Datum>> = groups
        .into_iter()
        .map(|(g, n, s)| {
            vec![
                Datum::Int(g),
                Datum::Int(n as i64),
                Datum::Int(s as i64),
                Datum::Float(s as f64 / n as f64),
            ]
        })
        .collect();
    rows.sort_by(|x, y| y[2].total_cmp(&x[2]));
    rows.truncate(10);
    rows
}

/// Median-of-runs wall time for a closure.
fn time_it<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut times: Vec<Duration> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn sql(c: &mut Criterion) {
    let hot = BenchCatalog { table: table() };
    let mut mixed_t = hot.table.clone();
    mixed_t.freeze_upto(N / 2);
    let mixed = BenchCatalog { table: mixed_t };
    let mut frozen_t = hot.table.clone();
    frozen_t.freeze_upto(N);
    // 1M rows = 976 frozen blocks + a sub-block hot tail of 576 rows.
    assert!(frozen_t.col_tier(0).hot_values().len() < frozen_t.block_rows());
    let frozen = BenchCatalog { table: frozen_t };

    // Answers agree across tiers and with the reference, and the frozen
    // run decodes ZERO blocks.
    let want = reference_grouped(&hot.table);
    assert_eq!(sql_rows(&hot, GROUPED_SQL), want, "hot == reference");
    let before = block_decodes();
    let got = sql_rows(&frozen, GROUPED_SQL);
    assert_eq!(
        block_decodes() - before,
        0,
        "frozen grouped SQL must not decode a single block"
    );
    assert_eq!(got, want, "frozen == reference");
    assert_eq!(sql_rows(&mixed, GROUPED_SQL), want, "mixed == reference");

    // The ≥ 5x acceptance gate: vectorized SQL vs the row-at-a-time
    // reference over the same frozen table.
    let vectorized = time_it(7, || sql_rows(&frozen, GROUPED_SQL));
    let reference = time_it(3, || reference_grouped(&frozen.table));
    let speedup = reference.as_secs_f64() / vectorized.as_secs_f64().max(1e-9);
    println!(
        "sql/grouped_agg 1M frozen: vectorized {vectorized:?}, \
         row-at-a-time {reference:?} ({speedup:.1}x)"
    );
    assert!(
        speedup >= 5.0,
        "physical-plan SQL must beat the row-at-a-time reference 5x, got {speedup:.1}x"
    );

    // Morsel-parallel execution is byte-identical to serial at every
    // worker count, and still decodes zero frozen blocks.
    for threads in [2, 4, 8] {
        let before = block_decodes();
        let par = sql_rows_at(&frozen, GROUPED_SQL, threads);
        assert_eq!(
            block_decodes() - before,
            0,
            "parallel ({threads} threads) must not add a single block decode"
        );
        assert_eq!(par, want, "parallel ({threads} threads) == serial oracle");
    }

    // Thread-scaling sweep + the scaling gate (see `required_scale_gate`).
    let serial = time_it(7, || sql_rows_at(&frozen, GROUPED_SQL, 1));
    let mut at8 = serial;
    for threads in [2usize, 4, 8] {
        let t = time_it(7, || sql_rows_at(&frozen, GROUPED_SQL, threads));
        let scale = serial.as_secs_f64() / t.as_secs_f64().max(1e-9);
        println!("sql/grouped_agg 1M frozen x{threads} threads: {t:?} ({scale:.2}x vs serial)");
        if threads == 8 {
            at8 = t;
        }
    }
    let scale8 = serial.as_secs_f64() / at8.as_secs_f64().max(1e-9);
    match required_scale_gate() {
        Some(required) => {
            assert!(
                scale8 >= required,
                "8-thread frozen grouped query must scale >= {required:.1}x over serial, \
                 got {scale8:.2}x (tune with AMNESIA_SCALE_GATE)"
            );
            println!("scaling gate: {scale8:.2}x >= {required:.1}x — pass");
        }
        None => {
            println!("scaling gate: skipped (got {scale8:.2}x; <8 cores or AMNESIA_SCALE_GATE=0)")
        }
    }

    // Worst-order leg: the cost-driven predicate order must beat the
    // syntactic (worst-written) order on a frozen table where block
    // pruning can't help — identical rows, zero extra decodes, and at
    // least the gated speedup.
    let wt = worst_order_table();
    let wtables = [&wt];
    let ex = Executor::default().with_exec_mode(ExecMode::Serial);
    let before = block_decodes();
    let syn = ex.execute_plan(&wtables, &[], &worst_order_plan(PlanHint::SyntacticOrder));
    let syn_decodes = block_decodes() - before;
    let before = block_decodes();
    let cost = ex.execute_plan(&wtables, &[], &worst_order_plan(PlanHint::CostBased));
    let cost_decodes = block_decodes() - before;
    assert_eq!(cost.rows, syn.rows, "cost-driven order changed the answer");
    assert_eq!(
        cost_decodes, 0,
        "cost-ordered worst-order scan must not decode a block"
    );
    assert!(
        cost_decodes <= syn_decodes,
        "cost order added decodes: {cost_decodes} > {syn_decodes}"
    );
    let t_syn = time_it(7, || {
        ex.execute_plan(&wtables, &[], &worst_order_plan(PlanHint::SyntacticOrder))
    });
    let t_cost = time_it(7, || {
        ex.execute_plan(&wtables, &[], &worst_order_plan(PlanHint::CostBased))
    });
    let order_speedup = t_syn.as_secs_f64() / t_cost.as_secs_f64().max(1e-9);
    println!(
        "sql/worst_order 1M frozen: syntactic {t_syn:?}, cost-driven {t_cost:?} \
         ({order_speedup:.1}x)"
    );
    match required_order_gate() {
        Some(required) => {
            assert!(
                order_speedup >= required,
                "cost-driven predicate order must beat the syntactic worst order \
                 >= {required:.1}x, got {order_speedup:.1}x (tune with AMNESIA_ORDER_GATE)"
            );
            println!("order gate: {order_speedup:.1}x >= {required:.1}x — pass");
        }
        None => println!("order gate: skipped (got {order_speedup:.1}x; AMNESIA_ORDER_GATE=0)"),
    }

    // Estimation-quality gate: max q-error of the block-stats estimator
    // on uniform and zipf-skewed frozen columns, over a sweep of range
    // predicates.
    let model = CostModel::default();
    let mut qmax = 1.0f64;
    for (dist, values) in [
        (
            "uniform",
            (0..65_536)
                .map(|i| (i as i64).wrapping_mul(2654435761) % 10_000)
                .map(|v| v.rem_euclid(10_000))
                .collect::<Vec<i64>>(),
        ),
        (
            "zipf",
            (0..65_536)
                .map(|i| {
                    let u = ((i as i64).wrapping_mul(40_503).rem_euclid(65_536)) as f64 / 65_536.0;
                    (10_000.0 * u * u * u) as i64
                })
                .collect::<Vec<i64>>(),
        ),
    ] {
        let mut qt = Table::new(Schema::single("v"));
        qt.insert_batch(&values, 0).unwrap();
        qt.freeze_upto((values.len() / qt.block_rows()) * qt.block_rows());
        let stats = ColumnStats::from_tier(qt.col_tier(0), &model);
        for (lo, hi) in [(0i64, 999), (0, 4_999), (2_500, 7_499), (5_000, 9_999)] {
            let p = ColPred::range(0, lo, hi);
            let actual = values.iter().filter(|&&v| lo <= v && v <= hi).count() as f64;
            let q = q_error(stats.estimate_pred(&p), actual);
            if q > qmax {
                qmax = q;
            }
            println!(
                "qerror/{dist} [{lo},{hi}]: est {:.0} actual {actual:.0} (q {q:.2})",
                stats.estimate_pred(&p)
            );
        }
    }
    match required_qerror_gate() {
        Some(bound) => {
            assert!(
                qmax <= bound,
                "max q-error {qmax:.2} exceeds the {bound:.1} gate \
                 (tune with AMNESIA_QERROR_GATE)"
            );
            println!("q-error gate: {qmax:.2} <= {bound:.1} — pass");
        }
        None => println!("q-error gate: skipped (got {qmax:.2}; AMNESIA_QERROR_GATE=0)"),
    }

    let mut group = c.benchmark_group("sql/grouped_agg");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("hot", |b| b.iter(|| black_box(sql_rows(&hot, GROUPED_SQL))));
    group.bench_function("mixed", |b| {
        b.iter(|| black_box(sql_rows(&mixed, GROUPED_SQL)))
    });
    group.bench_function("frozen", |b| {
        b.iter(|| black_box(sql_rows(&frozen, GROUPED_SQL)))
    });
    group.bench_function("row_at_a_time_frozen", |b| {
        b.iter(|| black_box(reference_grouped(&frozen.table)))
    });
    group.finish();

    // The same frozen grouped query through the morsel scheduler, per
    // worker count — the scaling trajectory the CI gate guards.
    let mut par = c.benchmark_group("sql/grouped_agg_parallel");
    par.throughput(Throughput::Elements(N as u64));
    for threads in [2usize, 4, 8] {
        par.bench_function(threads.to_string(), |b| {
            b.iter(|| black_box(sql_rows_at(&frozen, GROUPED_SQL, threads)))
        });
    }
    par.finish();

    let mut global = c.benchmark_group("sql/global_agg");
    global.throughput(Throughput::Elements(N as u64));
    const GLOBAL_SQL: &str = "SELECT COUNT(*), SUM(a), MIN(a), MAX(a), AVG(b) FROM t \
         WHERE a BETWEEN 2000 AND 2399 AND b > 30";
    global.bench_function("hot", |b| b.iter(|| black_box(sql_rows(&hot, GLOBAL_SQL))));
    global.bench_function("frozen", |b| {
        b.iter(|| black_box(sql_rows(&frozen, GLOBAL_SQL)))
    });
    global.finish();

    let mut proj = c.benchmark_group("sql/projection");
    proj.throughput(Throughput::Elements(N as u64));
    const PROJ_SQL: &str =
        "SELECT g, a FROM t WHERE a BETWEEN 2000 AND 2099 AND b > 60 ORDER BY a LIMIT 100";
    proj.bench_function("hot", |b| b.iter(|| black_box(sql_rows(&hot, PROJ_SQL))));
    proj.bench_function("frozen", |b| {
        b.iter(|| black_box(sql_rows(&frozen, PROJ_SQL)))
    });
    proj.finish();

    // The worst-order legs as tracked benchmarks.
    let mut wo = c.benchmark_group("sql/worst_order");
    wo.throughput(Throughput::Elements(N as u64));
    wo.bench_function("syntactic", |b| {
        b.iter(|| {
            black_box(ex.execute_plan(&wtables, &[], &worst_order_plan(PlanHint::SyntacticOrder)))
        })
    });
    wo.bench_function("cost_driven", |b| {
        b.iter(|| black_box(ex.execute_plan(&wtables, &[], &worst_order_plan(PlanHint::CostBased))))
    });
    wo.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = sql
}
criterion_main!(benches);
