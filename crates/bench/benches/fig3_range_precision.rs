//! FIG3 bench: regenerate the Figure 3 range-precision curves (80 %
//! volatility, both data panels) and measure per-policy simulation cost.

use std::hint::black_box;

use amnesia_core::config::SimConfig;
use amnesia_core::experiments::{fig3_range_precision, Scale};
use amnesia_core::policy::PolicyKind;
use amnesia_core::sim::Simulator;
use amnesia_distrib::DistributionKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_scale() -> Scale {
    Scale {
        dbsize: 300,
        queries_per_batch: 100,
        batches: 10,
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

fn fig3(c: &mut Criterion) {
    let scale = bench_scale();

    let mut panels = c.benchmark_group("fig3/panel");
    for dist in [
        DistributionKind::Uniform,
        DistributionKind::zipfian_default(),
    ] {
        panels.bench_with_input(
            BenchmarkId::from_parameter(dist.name()),
            &dist,
            |b, dist| {
                b.iter(|| {
                    black_box(fig3_range_precision(black_box(&scale), dist.clone()).expect("fig3"))
                })
            },
        );
    }
    panels.finish();

    let mut group = c.benchmark_group("fig3/policy_sim");
    for kind in PolicyKind::paper_set() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let cfg = SimConfig {
                        dbsize: scale.dbsize,
                        domain: scale.domain,
                        queries_per_batch: scale.queries_per_batch,
                        batches: scale.batches,
                        seed: scale.seed,
                        update_fraction: 0.80,
                        distribution: DistributionKind::Uniform,
                        policy: kind.clone(),
                        ..SimConfig::default()
                    };
                    black_box(Simulator::new(cfg).unwrap().run().unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = fig3
}
criterion_main!(benches);
