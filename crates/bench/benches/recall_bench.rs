//! RECALL bench: regenerate the learning-policy comparison (§4.4/§5
//! research-vista policies vs the paper baselines) and measure the
//! victim-selection cost of the learning policies, whose weighting is
//! more expensive than the paper's randomized ones.

use std::hint::black_box;
use std::time::Duration;

use amnesia_core::experiments::{recall_comparison, Scale};
use amnesia_core::policy::{PolicyContext, PolicyKind};
use amnesia_core::SimConfig;
use amnesia_core::Simulator;
use amnesia_distrib::DistributionKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scale() -> Scale {
    Scale {
        dbsize: 300,
        queries_per_batch: 100,
        batches: 8,
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

fn recall(c: &mut Criterion) {
    let scale = bench_scale();

    c.bench_function("recall/experiment", |b| {
        b.iter(|| black_box(recall_comparison(black_box(&scale)).expect("recall")))
    });

    // Per-policy simulation cost on the recall workload.
    let mut group = c.benchmark_group("recall/policy_sim");
    for kind in PolicyKind::learning_set() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let cfg = SimConfig {
                        dbsize: scale.dbsize,
                        domain: scale.domain,
                        queries_per_batch: scale.queries_per_batch,
                        batches: scale.batches,
                        seed: scale.seed,
                        update_fraction: 0.20,
                        distribution: DistributionKind::Zipfian { theta: 0.99 },
                        policy: kind.clone(),
                        ..SimConfig::default()
                    };
                    black_box(Simulator::new(cfg).unwrap().run().unwrap())
                })
            },
        );
    }
    group.finish();

    // Raw victim-selection overhead at a fixed table size, isolating the
    // policy from the simulation loop.
    let mut select = c.benchmark_group("recall/select_victims");
    for kind in PolicyKind::learning_set() {
        select.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                use amnesia_columnar::{RowId, Schema, Table};
                use amnesia_util::SimRng;
                let mut table = Table::new(Schema::single("a"));
                let mut rng = SimRng::new(7);
                let values: Vec<i64> = (0..10_000).map(|_| rng.range_i64(0, 50_000)).collect();
                table.insert_batch(&values, 0).unwrap();
                // Give the frequency-driven policies a signal.
                for r in (0..10_000u64).step_by(10) {
                    table.access_mut().touch(RowId(r), 1);
                }
                let mut policy = kind.build();
                b.iter(|| {
                    let ctx = PolicyContext {
                        table: &table,
                        epoch: 5,
                    };
                    black_box(policy.select_victims(&ctx, 1000, &mut rng))
                })
            },
        );
    }
    select.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = recall
}
criterion_main!(benches);
