//! AGG bench (§4.3): regenerate the aggregate-precision experiment —
//! `SELECT AVG(a) FROM t`, with and without a range predicate.

use std::hint::black_box;

use amnesia_core::experiments::{aggregate_precision, Scale};
use amnesia_distrib::DistributionKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_scale() -> Scale {
    Scale {
        dbsize: 300,
        queries_per_batch: 60,
        batches: 5, // runner multiplies ×3 internally (§4.3 "longer run")
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

fn agg(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("agg43");
    for (label, with_pred) in [("whole_table", false), ("with_predicate", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &with_pred,
            |b, &with_pred| {
                b.iter(|| {
                    black_box(
                        aggregate_precision(
                            black_box(&scale),
                            DistributionKind::Uniform,
                            with_pred,
                        )
                        .expect("agg"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = agg
}
criterion_main!(benches);
