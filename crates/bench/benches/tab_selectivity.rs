//! T-SEL bench (§4.2): the selectivity sweep behind the paper's remark
//! that "increasing the selectivity factor does not improve the
//! precision".

use std::hint::black_box;

use amnesia_core::config::SimConfig;
use amnesia_core::experiments::{selectivity_table, Scale};
use amnesia_core::policy::PolicyKind;
use amnesia_core::sim::Simulator;
use amnesia_distrib::DistributionKind;
use amnesia_workload::QueryGenKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_scale() -> Scale {
    Scale {
        dbsize: 300,
        queries_per_batch: 60,
        batches: 8,
        domain: 50_000,
        seed: 0xC1D8_2017,
    }
}

fn selectivity(c: &mut Criterion) {
    let scale = bench_scale();

    c.bench_function("selectivity/full_table", |b| {
        b.iter(|| {
            black_box(
                selectivity_table(black_box(&scale), DistributionKind::Uniform)
                    .expect("selectivity"),
            )
        })
    });

    let mut group = c.benchmark_group("selectivity/sim");
    for s in [0.001f64, 0.01, 0.05, 0.20] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| {
                let cfg = SimConfig {
                    dbsize: scale.dbsize,
                    domain: scale.domain,
                    queries_per_batch: scale.queries_per_batch,
                    batches: scale.batches,
                    seed: scale.seed,
                    update_fraction: 0.80,
                    distribution: DistributionKind::Uniform,
                    policy: PolicyKind::Uniform,
                    query_gen: QueryGenKind::UniformRange { selectivity: s },
                    ..SimConfig::default()
                };
                black_box(Simulator::new(cfg).unwrap().run().unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = selectivity
}
criterion_main!(benches);
