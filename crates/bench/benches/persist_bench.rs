//! Durability microbenchmarks: snapshot encode/decode throughput across
//! data distributions (compression choice dominates), WAL append /
//! replay rates for both the legacy monolithic log and the segmented
//! CRC-framed log, and end-to-end recovery time for a tiered store.

use std::hint::black_box;
use std::time::Duration;

use amnesia_columnar::persist::{
    recover_segments, replay, snapshot, PersistentTable, SegmentedWal, StdVfs, SyncPolicy, Wal,
    WalRecord, DEFAULT_SEGMENT_BYTES,
};
use amnesia_columnar::{RowId, Schema, Table};
use amnesia_distrib::DistributionKind;
use amnesia_util::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn table_with(dist: &DistributionKind, n: usize) -> Table {
    let mut rng = SimRng::new(17);
    let mut d = dist.build(100_000, 17);
    let values: Vec<i64> = (0..n).map(|_| d.sample(&mut rng)).collect();
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(&values, 0).unwrap();
    for _ in 0..n / 5 {
        if let Some(r) = t.random_active(&mut rng) {
            t.forget(r, 1).unwrap();
        }
    }
    t
}

fn persist(c: &mut Criterion) {
    let n = 50_000usize;

    let mut enc = c.benchmark_group("persist/snapshot_encode");
    enc.throughput(Throughput::Elements(n as u64));
    for dist in DistributionKind::paper_set() {
        let t = table_with(&dist, n);
        enc.bench_with_input(BenchmarkId::from_parameter(dist.name()), &t, |b, t| {
            b.iter(|| black_box(snapshot::encode(black_box(t))))
        });
    }
    enc.finish();

    let mut dec = c.benchmark_group("persist/snapshot_decode");
    dec.throughput(Throughput::Elements(n as u64));
    for dist in DistributionKind::paper_set() {
        let bytes = snapshot::encode(&table_with(&dist, n));
        dec.bench_with_input(
            BenchmarkId::from_parameter(dist.name()),
            &bytes,
            |b, bytes| b.iter(|| black_box(snapshot::decode(black_box(bytes)).unwrap())),
        );
    }
    dec.finish();

    // WAL: appends per second (no fsync — measuring the encode+write
    // path, not the disk).
    let dir = std::env::temp_dir().join(format!("amn-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut group = c.benchmark_group("persist/wal");
    group.throughput(Throughput::Elements(1));
    group.bench_function("append_insert", |b| {
        let path = dir.join("append.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let rec = WalRecord::Insert {
            epoch: 3,
            rows: vec![vec![42, -7]],
        };
        b.iter(|| wal.append(black_box(&rec)).unwrap())
    });
    group.bench_function("append_forget", |b| {
        let path = dir.join("forget.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let rec = WalRecord::Forget {
            epoch: 5,
            row: RowId(123),
        };
        b.iter(|| wal.append(black_box(&rec)).unwrap())
    });
    group.finish();

    // Replay rate over a 10k-record log.
    let path = dir.join("replay.wal");
    let _ = std::fs::remove_file(&path);
    let mut wal = Wal::open(&path).unwrap();
    for i in 0..10_000u64 {
        let rec = if i % 4 == 3 {
            WalRecord::Forget {
                epoch: i,
                row: RowId(i),
            }
        } else {
            WalRecord::Insert {
                epoch: i,
                rows: vec![vec![i as i64]],
            }
        };
        wal.append(&rec).unwrap();
    }
    wal.sync().unwrap();
    let mut group = c.benchmark_group("persist/replay");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("10k_records", |b| {
        b.iter(|| {
            let outcome = replay(black_box(&path)).unwrap();
            assert!(outcome.clean);
            black_box(outcome.records.len())
        })
    });
    group.finish();

    // Segmented WAL: append rate through the VFS seam with CRC framing,
    // rotation, and codec-compressed columnar inserts (no fsync).
    let mut group = c.benchmark_group("persist/segmented_wal");
    group.throughput(Throughput::Elements(1));
    group.bench_function("append_insert", |b| {
        let seg_dir = dir.join("seg-append");
        let _ = std::fs::remove_dir_all(&seg_dir);
        let mut wal = SegmentedWal::create(StdVfs::shared(), &seg_dir, 0).unwrap();
        let rec = WalRecord::Insert {
            epoch: 3,
            rows: vec![vec![42, -7]],
        };
        b.iter(|| wal.append(black_box(&rec), 3).unwrap())
    });
    group.bench_function("append_columnar_64", |b| {
        let seg_dir = dir.join("seg-append-col");
        let _ = std::fs::remove_dir_all(&seg_dir);
        let mut wal = SegmentedWal::create(StdVfs::shared(), &seg_dir, 0).unwrap();
        let rows: Vec<Vec<i64>> = (0..64).map(|i| vec![i, i * 3]).collect();
        let rec = WalRecord::Insert { epoch: 3, rows };
        b.iter(|| wal.append(black_box(&rec), 3).unwrap())
    });
    group.finish();

    // Segment recovery: scan + CRC-validate + decode a 10k-record
    // multi-segment log back into records.
    let seg_dir = dir.join("seg-replay");
    let _ = std::fs::remove_dir_all(&seg_dir);
    let mut wal = SegmentedWal::create(StdVfs::shared(), &seg_dir, 0).unwrap();
    for i in 0..10_000u64 {
        let rec = if i % 4 == 3 {
            WalRecord::Forget {
                epoch: i,
                row: RowId(i),
            }
        } else {
            WalRecord::Insert {
                epoch: i,
                rows: vec![vec![i as i64]],
            }
        };
        wal.append(&rec, i).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    let mut group = c.benchmark_group("persist/segment_recovery");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("10k_records", |b| {
        b.iter(|| {
            let rec = recover_segments(
                StdVfs::shared(),
                black_box(&seg_dir),
                0,
                DEFAULT_SEGMENT_BYTES,
            )
            .unwrap();
            assert!(rec.clean);
            black_box(rec.records.len())
        })
    });
    group.finish();

    // End-to-end recovery time: `PersistentTable::open` over a store
    // with a snapshot, tier transitions, and a live WAL tail.
    let pt_dir = dir.join("pt-recover");
    let _ = std::fs::remove_dir_all(&pt_dir);
    {
        let mut pt = PersistentTable::create_with(
            StdVfs::shared(),
            &pt_dir,
            Schema::single("a"),
            SyncPolicy::PerBatch,
        )
        .unwrap();
        let values: Vec<i64> = (0..20_000).collect();
        pt.insert_batch(&values, 0).unwrap();
        for r in 0..4_000u64 {
            pt.forget(RowId(r), 1).unwrap();
        }
        pt.freeze_upto(16_384).unwrap();
        pt.drop_forgotten_blocks().unwrap();
        pt.checkpoint().unwrap();
        let tail: Vec<i64> = (0..2_000).collect();
        pt.insert_batch(&tail, 2).unwrap();
        pt.sync().unwrap();
    }
    let mut group = c.benchmark_group("persist/recovery");
    group.throughput(Throughput::Elements(22_000));
    group.bench_function("open_20k_tiered", |b| {
        b.iter(|| {
            let pt = PersistentTable::open(black_box(&pt_dir)).unwrap();
            black_box(pt.table().num_rows())
        })
    });
    group.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = persist
}
criterion_main!(benches);
