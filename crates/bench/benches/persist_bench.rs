//! Durability microbenchmarks: snapshot encode/decode throughput across
//! data distributions (compression choice dominates) and WAL append /
//! replay rates.

use std::hint::black_box;
use std::time::Duration;

use amnesia_columnar::persist::{replay, snapshot, Wal, WalRecord};
use amnesia_columnar::{RowId, Schema, Table};
use amnesia_distrib::DistributionKind;
use amnesia_util::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn table_with(dist: &DistributionKind, n: usize) -> Table {
    let mut rng = SimRng::new(17);
    let mut d = dist.build(100_000, 17);
    let values: Vec<i64> = (0..n).map(|_| d.sample(&mut rng)).collect();
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(&values, 0).unwrap();
    for _ in 0..n / 5 {
        if let Some(r) = t.random_active(&mut rng) {
            t.forget(r, 1).unwrap();
        }
    }
    t
}

fn persist(c: &mut Criterion) {
    let n = 50_000usize;

    let mut enc = c.benchmark_group("persist/snapshot_encode");
    enc.throughput(Throughput::Elements(n as u64));
    for dist in DistributionKind::paper_set() {
        let t = table_with(&dist, n);
        enc.bench_with_input(BenchmarkId::from_parameter(dist.name()), &t, |b, t| {
            b.iter(|| black_box(snapshot::encode(black_box(t))))
        });
    }
    enc.finish();

    let mut dec = c.benchmark_group("persist/snapshot_decode");
    dec.throughput(Throughput::Elements(n as u64));
    for dist in DistributionKind::paper_set() {
        let bytes = snapshot::encode(&table_with(&dist, n));
        dec.bench_with_input(
            BenchmarkId::from_parameter(dist.name()),
            &bytes,
            |b, bytes| b.iter(|| black_box(snapshot::decode(black_box(bytes)).unwrap())),
        );
    }
    dec.finish();

    // WAL: appends per second (no fsync — measuring the encode+write
    // path, not the disk).
    let dir = std::env::temp_dir().join(format!("amn-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut group = c.benchmark_group("persist/wal");
    group.throughput(Throughput::Elements(1));
    group.bench_function("append_insert", |b| {
        let path = dir.join("append.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let rec = WalRecord::Insert {
            epoch: 3,
            rows: vec![vec![42, -7]],
        };
        b.iter(|| wal.append(black_box(&rec)).unwrap())
    });
    group.bench_function("append_forget", |b| {
        let path = dir.join("forget.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        let rec = WalRecord::Forget {
            epoch: 5,
            row: RowId(123),
        };
        b.iter(|| wal.append(black_box(&rec)).unwrap())
    });
    group.finish();

    // Replay rate over a 10k-record log.
    let path = dir.join("replay.wal");
    let _ = std::fs::remove_file(&path);
    let mut wal = Wal::open(&path).unwrap();
    for i in 0..10_000u64 {
        let rec = if i % 4 == 3 {
            WalRecord::Forget {
                epoch: i,
                row: RowId(i),
            }
        } else {
            WalRecord::Insert {
                epoch: i,
                rows: vec![vec![i as i64]],
            }
        };
        wal.append(&rec).unwrap();
    }
    wal.sync().unwrap();
    let mut group = c.benchmark_group("persist/replay");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("10k_records", |b| {
        b.iter(|| {
            let outcome = replay(black_box(&path)).unwrap();
            assert!(outcome.clean);
            black_box(outcome.records.len())
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = persist
}
criterion_main!(benches);
