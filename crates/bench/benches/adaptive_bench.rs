//! ABL-ADAPT bench: the adaptive-partitioning experiment plus the raw
//! cost of routing + end-of-batch bandit bookkeeping.

use std::hint::black_box;
use std::time::Duration;

use amnesia_core::adaptive::{AdaptiveConfig, AdaptiveStore};
use amnesia_core::experiments::{ablation_adaptive, Scale};
use amnesia_util::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn adaptive(c: &mut Criterion) {
    c.bench_function("adaptive/experiment", |b| {
        let scale = Scale {
            dbsize: 200,
            queries_per_batch: 60,
            batches: 5,
            domain: 20_000,
            seed: 0xC1D8_2017,
        };
        b.iter(|| black_box(ablation_adaptive(black_box(&scale)).unwrap()))
    });

    let mut group = c.benchmark_group("adaptive/insert_route");
    group.throughput(Throughput::Elements(1));
    for partitions in [2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, &partitions| {
                let mut store = AdaptiveStore::new(AdaptiveConfig {
                    arms: AdaptiveConfig::default_arms(),
                    epsilon: 0.1,
                    partitions,
                    domain: 100_000,
                    budget_per_partition: 1000,
                });
                let mut rng = SimRng::new(3);
                b.iter(|| {
                    store
                        .insert(black_box(rng.range_i64(0, 100_000)), 1)
                        .unwrap()
                })
            },
        );
    }
    group.finish();

    c.bench_function("adaptive/end_batch_8x1000", |b| {
        let mut store = AdaptiveStore::new(AdaptiveConfig {
            arms: AdaptiveConfig::default_arms(),
            epsilon: 0.1,
            partitions: 8,
            domain: 100_000,
            budget_per_partition: 1000,
        });
        let mut rng = SimRng::new(4);
        for _ in 0..16_000 {
            store.insert(rng.range_i64(0, 100_000), 0).unwrap();
        }
        let mut epoch = 1u64;
        b.iter(|| {
            // Refill a little so trimming always has work to do.
            for _ in 0..200 {
                store.insert(rng.range_i64(0, 100_000), epoch).unwrap();
            }
            store.end_batch(black_box(epoch), &mut rng).unwrap();
            epoch += 1;
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = adaptive
}
criterion_main!(benches);
