//! Engineering bench: droppable-index lifecycle (§4.4).
//!
//! "Indices … can be easily dropped, and recreated upon need": measures
//! how expensive "upon need" actually is — initial build, rebuild after
//! staleness, probes at varying staleness — plus zone-map sync cost.

use std::hint::black_box;

use amnesia_bench::{forget_fraction, table_from_distribution};
use amnesia_columnar::{Imprints, SortedIndex, ZoneMap};
use amnesia_distrib::DistributionKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn index_lifecycle(c: &mut Criterion) {
    const N: usize = 100_000;
    let clean = table_from_distribution(&DistributionKind::Uniform, N, 1_000_000, 1);

    c.bench_function("index/build_100k", |b| {
        b.iter(|| black_box(SortedIndex::build(&clean, 0)))
    });

    let mut group = c.benchmark_group("index/probe_by_staleness");
    for stale_frac in [0.0f64, 0.2, 0.5] {
        let mut table = table_from_distribution(&DistributionKind::Uniform, N, 1_000_000, 1);
        let mut index = SortedIndex::build(&table, 0);
        forget_fraction(&mut table, stale_frac, 2);
        for _ in 0..(N as f64 * stale_frac) as usize {
            index.note_forget();
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(stale_frac),
            &(table, index),
            |b, (table, index)| {
                b.iter(|| black_box(index.probe_range_active(table, 500_000, 520_000)))
            },
        );
    }
    group.finish();

    c.bench_function("zonemap/build_100k", |b| {
        b.iter(|| black_box(ZoneMap::build(&clean, 0)))
    });

    c.bench_function("imprints/build_100k", |b| {
        b.iter(|| black_box(Imprints::build(&clean, 0, 64)))
    });

    c.bench_function("imprints/candidate_blocks", |b| {
        let imp = Imprints::build(&clean, 0, 64);
        b.iter(|| black_box(imp.candidate_blocks(500_000, 520_000)))
    });

    c.bench_function("zonemap/sync_after_1k_forgets", |b| {
        let mut table = table_from_distribution(&DistributionKind::Uniform, N, 1_000_000, 1);
        let mut zm = ZoneMap::build(&table, 0);
        forget_fraction(&mut table, 0.01, 3);
        for r in 0..1000usize {
            zm.note_forget(amnesia_columnar::RowId::from(r * 97 % N));
        }
        b.iter(|| {
            let mut zm2 = zm.clone();
            zm2.sync(&table);
            black_box(zm2)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    targets = index_lifecycle
}
criterion_main!(benches);
