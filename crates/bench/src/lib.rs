//! Shared helpers for the benchmark harness and the `repro` binary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use amnesia_columnar::{Schema, Table};
use amnesia_distrib::DistributionKind;
use amnesia_util::SimRng;

/// Build a single-attribute table with `n` rows drawn from `dist`.
pub fn table_from_distribution(dist: &DistributionKind, n: usize, domain: i64, seed: u64) -> Table {
    let mut rng = SimRng::new(seed);
    let mut d = dist.build(domain, seed);
    let values: Vec<i64> = (0..n).map(|_| d.sample(&mut rng)).collect();
    let mut t = Table::new(Schema::single("a"));
    t.insert_batch(&values, 0).expect("single column batch");
    t
}

/// Forget a uniformly random `fraction` of rows (used to set up realistic
/// staleness in kernel/index benches).
pub fn forget_fraction(table: &mut Table, fraction: f64, seed: u64) {
    let mut rng = SimRng::new(seed);
    let n = table.num_rows();
    let k = ((n as f64) * fraction.clamp(0.0, 1.0)) as usize;
    for i in rng.sample_indices(n, k) {
        table
            .forget(amnesia_columnar::RowId::from(i), 1)
            .expect("row in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_work() {
        let mut t = table_from_distribution(&DistributionKind::Uniform, 1000, 10_000, 1);
        assert_eq!(t.num_rows(), 1000);
        forget_fraction(&mut t, 0.3, 2);
        assert_eq!(t.active_rows(), 700);
    }
}
