//! `repro` — regenerate every figure and table of the CIDR 2017 amnesia
//! paper, plus the ablations documented in `DESIGN.md`.
//!
//! ```text
//! repro [EXPERIMENT] [--scale test|paper] [--out DIR]
//!
//! EXPERIMENT:
//!   fig1                 Figure 1: database amnesia map
//!   fig2                 Figure 2: database rot map
//!   fig3                 Figure 3: range precision (uniform + zipfian panels)
//!   agg                  §4.3 aggregate (AVG) precision
//!   volatility           §4.2 low vs high volatility table
//!   selectivity          §4.2 selectivity sweep
//!   ablation-pair        §4.4 pair forgetting vs uniform
//!   ablation-aligned     §4.4 distribution-aligned amnesia
//!   ablation-budget      §2.1 fixed vs watermark budgets
//!   ablation-forget      §1 forget modes (mark/delete/deindex/tier/summarize)
//!   ablation-compression §4.4 compression postpones forgetting
//!   ablation-drift       §4.4 amnesia under concept drift
//!   ablation-model       §5 micro-models of forgotten data
//!   ablation-adaptive    §4.4 adaptive per-partition policy choice
//!   recall               §4.4/§5 learning policies vs paper baselines
//!   join                 §2.2/§5 join precision + referential actions
//!   all                  everything above (default)
//! ```
//!
//! With `--out DIR`, each experiment also writes a CSV.

use std::io::Write as _;
use std::path::PathBuf;

use amnesia_core::experiments::{self, MapReport, Scale, SeriesReport, TableReport};
use amnesia_distrib::DistributionKind;

/// Something renderable + exportable produced by an experiment.
enum Output {
    Series(SeriesReport),
    Map(MapReport),
    Table(TableReport),
}

impl Output {
    fn render(&self) -> String {
        match self {
            Output::Series(r) => r.render_ascii(),
            Output::Map(r) => r.render_ascii(),
            Output::Table(r) => r.render_ascii(),
        }
    }

    fn to_csv(&self) -> String {
        match self {
            Output::Series(r) => r.to_csv(),
            Output::Map(r) => r.to_csv(),
            Output::Table(r) => r.to_csv(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [fig1|fig2|fig3|agg|volatility|selectivity|ablation-pair|\
         ablation-aligned|ablation-budget|ablation-forget|ablation-compression|all] \
         [--scale test|paper] [--out DIR]"
    );
    std::process::exit(2);
}

fn run_experiment(name: &str, scale: &Scale) -> Vec<(String, Output)> {
    let mut outputs = Vec::new();
    match name {
        "fig1" => outputs.push((
            "fig1".to_string(),
            Output::Map(experiments::fig1_amnesia_map(scale).expect("fig1")),
        )),
        "fig2" => outputs.push((
            "fig2".to_string(),
            Output::Map(experiments::fig2_rot_map(scale).expect("fig2")),
        )),
        "fig3" => {
            outputs.push((
                "fig3_uniform".to_string(),
                Output::Series(
                    experiments::fig3_range_precision(scale, DistributionKind::Uniform)
                        .expect("fig3 uniform"),
                ),
            ));
            outputs.push((
                "fig3_zipfian".to_string(),
                Output::Series(
                    experiments::fig3_range_precision(scale, DistributionKind::zipfian_default())
                        .expect("fig3 zipfian"),
                ),
            ));
        }
        "agg" => {
            outputs.push((
                "agg_whole_table".to_string(),
                Output::Series(
                    experiments::aggregate_precision(scale, DistributionKind::Uniform, false)
                        .expect("agg"),
                ),
            ));
            outputs.push((
                "agg_with_predicate".to_string(),
                Output::Series(
                    experiments::aggregate_precision(scale, DistributionKind::Uniform, true)
                        .expect("agg pred"),
                ),
            ));
        }
        "volatility" => outputs.push((
            "volatility".to_string(),
            Output::Table(
                experiments::volatility_table(scale, DistributionKind::Uniform)
                    .expect("volatility"),
            ),
        )),
        "selectivity" => outputs.push((
            "selectivity".to_string(),
            Output::Table(
                experiments::selectivity_table(scale, DistributionKind::Uniform)
                    .expect("selectivity"),
            ),
        )),
        "ablation-pair" => outputs.push((
            "ablation_pair".to_string(),
            Output::Series(experiments::ablation_pair(scale).expect("pair")),
        )),
        "ablation-aligned" => outputs.push((
            "ablation_aligned".to_string(),
            Output::Series(experiments::ablation_aligned(scale).expect("aligned")),
        )),
        "ablation-budget" => {
            let (precision, footprint) = experiments::ablation_budget(scale).expect("budget");
            outputs.push((
                "ablation_budget_precision".to_string(),
                Output::Series(precision),
            ));
            outputs.push((
                "ablation_budget_footprint".to_string(),
                Output::Series(footprint),
            ));
        }
        "ablation-forget" => outputs.push((
            "ablation_forget_modes".to_string(),
            Output::Table(experiments::ablation_forget_modes(scale).expect("forget modes")),
        )),
        "ablation-compression" => outputs.push((
            "ablation_compression".to_string(),
            Output::Table(experiments::ablation_compression(scale).expect("compression")),
        )),
        "ablation-drift" => outputs.push((
            "ablation_drift".to_string(),
            Output::Series(experiments::ablation_drift(scale).expect("drift")),
        )),
        "ablation-model" => outputs.push((
            "ablation_micromodels".to_string(),
            Output::Table(experiments::ablation_micromodels(scale).expect("micromodels")),
        )),
        "ablation-adaptive" => outputs.push((
            "ablation_adaptive".to_string(),
            Output::Series(experiments::ablation_adaptive(scale).expect("adaptive")),
        )),
        "recall" => outputs.push((
            "recall".to_string(),
            Output::Series(experiments::recall_comparison(scale).expect("recall")),
        )),
        "join" => {
            outputs.push((
                "join_precision".to_string(),
                Output::Series(
                    experiments::join_precision_experiment(scale).expect("join precision"),
                ),
            ));
            outputs.push((
                "referential_actions".to_string(),
                Output::Table(
                    experiments::referential_actions_table(scale).expect("referential actions"),
                ),
            ));
        }
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }
    outputs
}

const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "agg",
    "volatility",
    "selectivity",
    "ablation-pair",
    "ablation-aligned",
    "ablation-budget",
    "ablation-forget",
    "ablation-compression",
    "ablation-drift",
    "ablation-model",
    "ablation-adaptive",
    "recall",
    "join",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale = Scale::paper();
    let mut out_dir: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("test") => scale = Scale::test(),
                    Some("paper") => scale = Scale::paper(),
                    _ => usage(),
                }
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i).cloned().unwrap_or_else(|| usage()),
                ));
            }
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') => experiment = name.to_string(),
            _ => usage(),
        }
        i += 1;
    }

    let names: Vec<&str> = if experiment == "all" {
        ALL.to_vec()
    } else {
        vec![experiment.as_str()]
    };

    // Run experiments in parallel: each is an independent, deterministic
    // simulation (scoped threads via the amnesia-sync shim keep the
    // borrows simple and the spawns model-checkable).
    let results: Vec<(usize, Vec<(String, Output)>)> = amnesia_sync::thread::scope(|s| {
        let handles: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(idx, name)| {
                let scale = scale;
                s.spawn(move || (idx, run_experiment(name, &scale)))
            })
            .collect();
        let mut results: Vec<(usize, Vec<(String, Output)>)> = handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect();
        results.sort_by_key(|(idx, _)| *idx);
        results
    });

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for (_, outputs) in &results {
        for (name, output) in outputs {
            writeln!(lock, "\n=== {name} ===").expect("stdout");
            writeln!(lock, "{}", output.render()).expect("stdout");
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create out dir");
                let path = dir.join(format!("{name}.csv"));
                std::fs::write(&path, output.to_csv()).expect("write csv");
                writeln!(lock, "[wrote {}]", path.display()).expect("stdout");
            }
        }
    }
}
