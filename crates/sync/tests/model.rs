//! Model-checked verification of the amnesia-sync primitives.
//!
//! Three families:
//! - true-positive gates: deliberately broken fixtures (an unprotected
//!   `PlainCell`, a Relaxed publication, a Relaxed epoch unpin, an ABBA
//!   lock cycle) that the explorer MUST flag — these keep the detector
//!   honest;
//! - correctness proofs: protocols (mutex counter, release/acquire
//!   publication, epoch retire-while-pinned) that must stay silent on
//!   every explored schedule;
//! - harness properties: replay determinism and schedule-space volume.
//!
//! Run with `cargo test -p amnesia-sync --features model`. Override the
//! exploration via `AMNESIA_MODEL_{ITERS,PREEMPTIONS,SEED,REPLAY}`.

use amnesia_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use amnesia_sync::cell::PlainCell;
use amnesia_sync::epoch::EpochGc;
use amnesia_sync::model::{explore, FailureKind, ModelConfig};
use amnesia_sync::mutex::Mutex;
use amnesia_sync::thread;

fn cfg() -> ModelConfig {
    ModelConfig::from_env()
}

/// The canonical racy fixture: two threads read-modify-write a plain
/// cell with no synchronization at all. The detector must flag it, and
/// the failure must carry a non-empty replayable schedule.
#[test]
fn racy_cell_is_flagged() {
    let report = explore(cfg(), || {
        let cell = PlainCell::new(0u32);
        thread::scope(|s| {
            s.spawn(|| {
                let v = cell.get();
                cell.set(v + 1);
            });
            let v = cell.get();
            cell.set(v + 1);
        });
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Race);
    assert!(!failure.schedule.is_empty(), "race must be replayable");
    assert!(!failure.trace.is_empty(), "race must carry a step trace");
}

/// Publication through a Relaxed flag: the reader can observe the flag
/// without inheriting the writer's clock, so the payload access is a
/// race — and the report's hints must point at the Relaxed observation.
#[test]
fn relaxed_publication_is_flagged_with_weak_edge_hint() {
    let report = explore(cfg(), || {
        let data = PlainCell::new(0u32);
        let ready = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                data.set(42);
                // Bug under test: Relaxed publish drops the release edge.
                ready.store(true, Ordering::Relaxed);
            });
            // Bug under test: Relaxed observation acquires nothing.
            if ready.load(Ordering::Relaxed) {
                let _ = data.get();
            }
        });
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Race);
    assert!(
        !failure.hints.is_empty(),
        "a Relaxed publication race should surface weak-edge hints"
    );
}

/// The same shape with a proper Release/Acquire pair must be silent on
/// every schedule.
#[test]
fn release_acquire_publication_is_clean() {
    let report = explore(cfg(), || {
        let data = PlainCell::new(0u32);
        let ready = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                data.set(42);
                // Release: publishes the data write to acquiring readers.
                ready.store(true, Ordering::Release);
            });
            // Acquire: pairs with the Release store above.
            if ready.load(Ordering::Acquire) {
                assert_eq!(data.get(), 42);
            }
        });
    });
    report.assert_clean();
    assert!(report.schedules > 1, "publication must have real choice");
}

/// Mutex-protected read-modify-write is race-free and, because the lock
/// serializes both increments, always sums to 2.
#[test]
fn mutex_counter_is_clean_and_exact() {
    let report = explore(cfg(), || {
        let counter = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| {
                let mut g = counter.lock().expect("model mutex");
                *g += 1;
            });
            {
                let mut g = counter.lock().expect("model mutex");
                *g += 1;
            }
        });
        assert_eq!(*counter.lock().expect("model mutex"), 2);
    });
    report.assert_clean();
    assert!(report.schedules > 1, "lock order must have real choice");
}

/// Atomic RMW counters never race even at Relaxed: the accesses are
/// atomic, so only the *ordering* of other memory is at stake — and the
/// final value is read after both children are joined (join edge).
#[test]
fn relaxed_atomic_counter_is_clean_and_exact() {
    let report = explore(cfg(), || {
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            let a = s.spawn(|| {
                // Relaxed is enough: the count is reconciled after join,
                // and the join edge orders the read below.
                counter.fetch_add(1, Ordering::Relaxed);
            });
            let b = s.spawn(|| {
                // Relaxed: same rationale as the sibling increment.
                counter.fetch_add(1, Ordering::Relaxed);
            });
            a.join().expect("model child");
            b.join().expect("model child");
            // Relaxed read: ordered by the two join edges above.
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        });
    });
    report.assert_clean();
}

/// ABBA lock cycle: some schedule must deadlock, and the explorer must
/// report it (rather than hang) with a replayable schedule.
#[test]
fn abba_lock_cycle_is_reported_as_deadlock() {
    let report = explore(cfg(), || {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        thread::scope(|s| {
            s.spawn(|| {
                let _ga = a.lock().expect("model mutex");
                let _gb = b.lock().expect("model mutex");
            });
            let _gb = b.lock().expect("model mutex");
            let _ga = a.lock().expect("model mutex");
        });
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(!failure.schedule.is_empty());
}

/// A panic inside a child thread surfaces as a model failure carrying
/// the panic message, not as a hung or aborted process.
#[test]
fn child_panic_is_reported() {
    let report = explore(cfg(), || {
        thread::scope(|s| {
            s.spawn(|| {
                panic!("deliberate child panic");
            });
        });
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.desc.contains("deliberate child panic"),
        "panic message should be preserved, got: {}",
        failure.desc
    );
}

/// The flagship epoch proof: a reader pins, loads the live index with
/// Acquire, dereferences the cell, and unpins; the writer swaps the
/// live index, retires the old cell, advances the epoch, reclaims, and
/// poison-writes everything reclaimed. If retire-while-pinned could
/// ever reclaim, the poison write would race the reader's dereference
/// and the detector would flag it. Acceptance requires the proof to
/// cover at least 1000 distinct schedules.
#[test]
fn epoch_retire_while_pinned_never_reclaims() {
    // Widen the schedule cap for the flagship proof; an explicit
    // AMNESIA_MODEL_ITERS (CI, replay) still wins.
    let mut base = cfg();
    if std::env::var("AMNESIA_MODEL_ITERS").is_err() {
        base = base.with_max_schedules(40_000);
    }
    let report = explore(base, || {
        let cells = [
            PlainCell::new(0u32),
            PlainCell::new(1u32),
            PlainCell::new(2u32),
        ];
        let live = AtomicUsize::new(0);
        let gc: EpochGc<usize> = EpochGc::new(2);
        let (cells, live, gc) = (&cells, &live, &gc);
        thread::scope(|s| {
            for slot in 0..2 {
                s.spawn(move || {
                    let guard = gc.pin(slot);
                    // Acquire: pairs with the writer's Release
                    // publication of the new live index.
                    let i = live.load(Ordering::Acquire);
                    let _ = cells[i].get();
                    drop(guard);
                });
            }
            // Two generations: unlink (Release-publish the new live
            // cell), retire the old one, advance, reclaim, and
            // poison-write whatever came back.
            for new in 1..=2usize {
                live.store(new, Ordering::Release);
                gc.retire(new - 1);
                gc.advance();
                for i in gc.reclaim() {
                    // Poison write: only sound if no pinned reader can
                    // still dereference the reclaimed cell.
                    cells[i].set(0xdead);
                }
            }
        });
    });
    report.assert_clean();
    assert!(
        report.schedules >= 1000,
        "epoch proof must cover >=1000 schedules, got {}",
        report.schedules
    );
}

/// The epoch protocol with the unpin edge deliberately weakened to
/// Relaxed: the reader's dereference is no longer ordered before the
/// writer's reuse of the slot, so the poison write must be flagged.
/// This is the true-positive gate for the epoch proof above.
#[test]
fn epoch_relaxed_unpin_is_flagged() {
    const IDLE: u64 = u64::MAX;
    let report = explore(cfg(), || {
        let data = PlainCell::new(0u32);
        let global = AtomicU64::new(0);
        let slot = AtomicU64::new(IDLE);
        thread::scope(|s| {
            s.spawn(|| {
                // Hand-rolled pin: epoch read + slot publication.
                let e = global.load(Ordering::SeqCst);
                slot.store(e, Ordering::SeqCst);
                if global.load(Ordering::SeqCst) == e {
                    let _ = data.get();
                }
                // Bug under test: Relaxed unpin drops the release edge
                // that orders the read above before reclamation.
                slot.store(IDLE, Ordering::Relaxed);
            });
            global.fetch_add(1, Ordering::SeqCst);
            // Writer-side reclaim: slot idle means the reader is done —
            // but only if the unpin released.
            if slot.load(Ordering::SeqCst) == IDLE {
                data.set(0xdead);
            }
        });
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Race);
}

/// Replaying the schedule printed in a failure report reproduces the
/// same failure kind in exactly one run: the determinism contract that
/// makes `AMNESIA_MODEL_REPLAY` useful.
#[test]
fn replay_reproduces_failure_deterministically() {
    let body = || {
        let cell = PlainCell::new(0u32);
        thread::scope(|s| {
            s.spawn(|| {
                let v = cell.get();
                cell.set(v + 1);
            });
            let v = cell.get();
            cell.set(v + 1);
        });
    };
    let first = explore(cfg(), body);
    let schedule = first.expect_failure().schedule.clone();
    let replayed = explore(cfg().with_replay(schedule.clone()), body);
    assert_eq!(replayed.schedules, 1, "replay pins exactly one schedule");
    let failure = replayed.expect_failure();
    assert_eq!(failure.kind, FailureKind::Race);
    assert_eq!(
        failure.schedule, schedule,
        "replayed failure must report the same schedule"
    );
}

/// Two explorations with the same seed walk the same schedules and
/// reach the same verdict and count.
#[test]
fn same_seed_is_deterministic() {
    let body = || {
        let ready = AtomicBool::new(false);
        let data = PlainCell::new(0u32);
        thread::scope(|s| {
            s.spawn(|| {
                data.set(7);
                // Release: publish data before the flag.
                ready.store(true, Ordering::Release);
            });
            // Acquire: pairs with the Release store above.
            if ready.load(Ordering::Acquire) {
                assert_eq!(data.get(), 7);
            }
        });
    };
    let cfg_a = ModelConfig::default().with_seed(1234);
    let cfg_b = ModelConfig::default().with_seed(1234);
    let a = explore(cfg_a, body);
    let b = explore(cfg_b, body);
    a.assert_clean();
    b.assert_clean();
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.complete, b.complete);
}
