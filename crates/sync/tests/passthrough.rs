//! Passthrough parity: outside an active exploration the shim must
//! behave exactly like `std` — in normal builds because it *is* `std`
//! re-exported, and under `--features model` because every wrapper
//! checks for an ambient scheduler context and finds none. This file
//! has no `required-features`, so the same assertions run in both
//! build modes.

use amnesia_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use amnesia_sync::mutex::Mutex;
use amnesia_sync::thread;

#[test]
fn atomics_behave_like_std() {
    // Orderings below are arbitrary: this test is single-threaded, so
    // no ordering is at stake — it only checks value semantics and that
    // each (op, ordering) pair forwards to the std equivalent.
    let u = AtomicUsize::new(3);
    assert_eq!(u.fetch_add(2, Ordering::Relaxed), 3); // single-threaded
    assert_eq!(u.load(Ordering::Relaxed), 5); // single-threaded
    assert_eq!(u.swap(9, Ordering::Relaxed), 5); // single-threaded
    assert_eq!(u.fetch_max(7, Ordering::Relaxed), 9); // single-threaded
    assert_eq!(
        // Orderings exercise the success/failure pair; single-threaded.
        u.compare_exchange(9, 1, Ordering::SeqCst, Ordering::Relaxed),
        Ok(9)
    );
    assert_eq!(
        // Same pair on the failure path; single-threaded.
        u.compare_exchange(9, 2, Ordering::SeqCst, Ordering::Relaxed),
        Err(1)
    );
    let b = AtomicBool::new(false);
    b.store(true, Ordering::Release); // single-threaded
    assert!(b.load(Ordering::Acquire)); // single-threaded
    let x = AtomicU64::new(u64::MAX);
    assert_eq!(x.load(Ordering::SeqCst), u64::MAX); // single-threaded
}

#[test]
fn mutex_behaves_like_std() {
    let m = Mutex::new(vec![1, 2]);
    m.lock().expect("unpoisoned").push(3);
    assert_eq!(*m.lock().expect("unpoisoned"), vec![1, 2, 3]);
    let mut m = m;
    m.get_mut().expect("unpoisoned").push(4);
    assert_eq!(m.lock().expect("unpoisoned").len(), 4);
}

#[test]
fn scope_joins_and_returns_values() {
    let data = [1u64, 2, 3, 4];
    let total: u64 = thread::scope(|s| {
        let a = s.spawn(|| data[..2].iter().sum::<u64>());
        let b = s.spawn(|| data[2..].iter().sum::<u64>());
        a.join().expect("child a") + b.join().expect("child b")
    });
    assert_eq!(total, 10);
}

#[test]
fn scope_implicitly_joins_dropped_handles() {
    let hits = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..4 {
            // Handles dropped: the scope epilogue must still join.
            s.spawn(|| {
                // Relaxed: reconciled after the scope's implicit join.
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // Relaxed: the scope join above ordered all increments.
    assert_eq!(hits.load(Ordering::Relaxed), 4);
}

#[test]
fn joined_child_panic_surfaces_as_err() {
    thread::scope(|s| {
        let h = s.spawn(|| -> usize { panic!("child says no") });
        let e = h.join().expect_err("panic must surface via join");
        let msg = e
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| e.downcast_ref::<String>().expect("panic payload"));
        assert!(msg.contains("child says no"));
    });
}

#[test]
fn available_parallelism_is_forwarded() {
    assert!(thread::available_parallelism().map_or(1, usize::from) >= 1);
}
