//! Thread-local link from a wrapper call site to the active scheduler.
//!
//! Every wrapper operation asks [`current`] whether the calling OS
//! thread is a model thread of an active exploration. Outside
//! `model::explore` the answer is `None` and the wrapper forwards
//! straight to `std`, which is what lets `--features model` builds run
//! the ordinary test suite unchanged.

use crate::model::sched::Sched;
use std::cell::RefCell;
use std::sync::Arc;

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Sched>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}
