//! Mutex: `std` re-export normally, a scheduler-visible wrapper under
//! the `model` feature.
//!
//! Under an active exploration, `lock` is a blocking decision operation
//! (the scheduler only grants it while the lock is free, and lock
//! acquisition joins the previous holders' release clock); the guard's
//! drop applies the release edge inline. The wrapped `std` mutex is
//! therefore never contended during a model run — it exists to hold the
//! data and to keep passthrough behavior identical to `std`.

#[cfg(not(feature = "model"))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(feature = "model")]
pub use modeled::{Mutex, MutexGuard};

#[cfg(feature = "model")]
mod modeled {
    use crate::ctx;
    use crate::model::sched::Op;
    use std::ops::{Deref, DerefMut};
    use std::sync::{LockResult, PoisonError};

    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub const fn new(t: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(t),
            }
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let addr = self as *const Self as usize;
            if let Some(c) = ctx::current() {
                c.sched.op(c.tid, Op::Lock { addr });
            }
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { inner: g, addr }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: p.into_inner(),
                    addr,
                })),
            }
        }

        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            let r = self.inner.get_mut();
            r.map_err(|p| PoisonError::new(p.into_inner()))
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T> Drop for Mutex<T> {
        fn drop(&mut self) {
            // Retire the lock's model state so address reuse starts fresh.
            if let Some(c) = ctx::current() {
                c.sched.forget_lock(self as *const Self as usize);
            }
        }
    }

    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
        addr: usize,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release edge applied inline; the std guard (field drop,
            // right after this body) releases before any other model
            // thread can be granted a step.
            if let Some(c) = ctx::current() {
                c.sched.unlock(c.tid, self.addr);
            }
        }
    }
}
