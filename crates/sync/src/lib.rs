//! # amnesia-sync — the workspace's only door to `std::sync` and `std::thread`
//!
//! Every atomic, mutex, and scoped-thread spawn in the workspace goes
//! through this crate (enforced by the `sync` rule in `amnesia-lint`).
//! In a normal build the modules below are plain `pub use` re-exports of
//! `std` — zero types, zero wrappers, zero overhead. Under the `model`
//! cargo feature the same names become thin wrappers that route every
//! load/store/RMW/lock/spawn/join through a deterministic cooperative
//! scheduler ([`model`]), which makes interleaving-dependent bugs
//! *checkable* instead of merely unlikely to reproduce.
//!
//! ## Scheduler design
//!
//! [`model::explore`] runs a closure (the "body") many times. Each run
//! executes the body's threads as real OS threads, but serialized: a
//! thread may only cross a synchronization operation (any wrapper call)
//! when the controller grants it a step, and exactly one thread runs
//! between grants. Each grant is a *decision point*; the sequence of
//! chosen thread ids is the *schedule*. The explorer performs a
//! depth-first search over schedules:
//!
//! * **Default policy** keeps running the current thread until it blocks
//!   or finishes (no voluntary preemption), so the first schedule per
//!   branch is the cheapest one.
//! * **DPOR-lite:** whenever an operation by thread *q* conflicts with
//!   an earlier operation by another thread *p* (same location, at least
//!   one write, or the same lock), *q* is added to the *backtrack set*
//!   of the decision point just before *p*'s operation. Only schedules
//!   seeded from backtrack sets are explored, which prunes interleavings
//!   that differ only in the order of independent operations.
//! * **Preemption bound:** a backtrack choice that switches away from a
//!   still-runnable thread costs one preemption; schedules are explored
//!   only up to `AMNESIA_MODEL_PREEMPTIONS` (default 3) of them. Most
//!   real concurrency bugs need very few preemptions to trigger.
//! * **Seeded, capped, replayable:** `AMNESIA_MODEL_SEED` shuffles the
//!   order in which backtrack candidates are tried (CI passes the run
//!   number, mirroring the `recovery-torture` fault matrix), and
//!   `AMNESIA_MODEL_ITERS` caps the number of schedules. Every schedule
//!   explored by the DFS is distinct by construction; [`model::Report`]
//!   says how many ran and whether the space was exhausted.
//!
//! ## The race detector
//!
//! The scheduler maintains a vector clock per thread and per location.
//! `Release`/`SeqCst` stores and RMWs join the writer's clock into the
//! location; `Acquire`/`SeqCst` loads and RMWs join the location's clock
//! back into the reader; lock release/acquire and spawn/join edges do
//! the same. `Relaxed` operations move no clocks — instead each relaxed
//! observation is remembered as a *weak edge*. Non-atomic shared state
//! is modelled by [`cell::PlainCell`]: its reads and writes are checked
//! FastTrack-style against the clocks, and an unordered pair is a
//! **data race** — a model failure even though the serialized host
//! execution never actually tore.
//!
//! ## Reading a race trace
//!
//! A failure report (printed by the `model` tests on panic, see
//! [`model::Failure`]) contains:
//!
//! * the failure kind (`data race`, `deadlock`, `panic`) with the two
//!   racing accesses (`t1 wrote loc#3 at step 12; t2 read loc#3 at step
//!   14 with no happens-before edge`),
//! * **weak-edge hints**: relaxed observations involving the racing
//!   threads, e.g. `hint: t1's Relaxed store to loc#2 (step 11) was
//!   observed by t2's Relaxed load (step 13) — this pair creates no
//!   happens-before edge; Acquire/Release would`. That is the signature
//!   of a `Relaxed` flag guarding a non-atomic payload,
//! * the full schedule trace: one line per step, `step / thread / op`,
//! * the decision sequence, for replay.
//!
//! ## Replay workflow
//!
//! A CI failure prints `schedule: 0,1,1,0,...` and the seed. To hold the
//! interleaving fixed while you debug, either re-run with the same
//! `AMNESIA_MODEL_SEED` (the DFS is fully deterministic given the seed),
//! or pin the exact failing schedule with
//! `AMNESIA_MODEL_REPLAY=0,1,1,0,... cargo test -p amnesia-sync
//! --features model --test model` — replay skips exploration and runs
//! that one schedule, so `dbg!`/log output lines up step for step.
//!
//! ## What the model does *not* check
//!
//! The host execution is sequentially consistent (threads are
//! serialized), so stale-value effects of weak orderings are not
//! simulated; the clocks verify that the *happens-before edges the
//! algorithm relies on* actually exist, which is what the `atomics` lint
//! rule's ordering comments claim. Location identity is by address, so
//! state for a location freed mid-run is retired on `Drop` of the
//! wrapper. This is a bounded checker, not a proof past the bound.

pub mod atomic;
pub mod cell;
pub mod epoch;
pub mod mutex;
pub mod thread;

#[cfg(feature = "model")]
pub mod model;

#[cfg(feature = "model")]
pub(crate) mod ctx;
