//! Scoped threads: `std` re-exports normally, a scheduler-visible scope
//! under the `model` feature.
//!
//! The model scope cannot wrap `std::thread::scope` directly: its
//! implicit join would park the process on children that are still
//! waiting for scheduler grants. Instead it follows the classic
//! crossbeam design — plain spawns with the closure's lifetime erased,
//! made sound by joining every child before `scope` returns on every
//! path (normal return, user panic, and model teardown). Spawn and join
//! are scheduler operations: spawn publishes the parent's clock to the
//! child, join merges the child's final clock back, and a dropped
//! handle (the `par_sort_by` pattern) is model-joined by the scope
//! epilogue, mirroring `std`'s implicit join.
//!
//! One deliberate narrowing versus `std`: closures must borrow from
//! outside the `scope` call (`'env`), not from locals created inside
//! the scope body. Every call site in this workspace already does so.

#[cfg(not(feature = "model"))]
pub use std::thread::{available_parallelism, scope, Scope, ScopedJoinHandle};

#[cfg(feature = "model")]
pub use std::thread::available_parallelism;

#[cfg(feature = "model")]
pub use modeled::{scope, Scope, ScopedJoinHandle};

#[cfg(feature = "model")]
mod modeled {
    use crate::ctx::{self, Ctx};
    use crate::model::sched::{AbortToken, Op};
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Payload = Box<dyn std::any::Any + Send + 'static>;
    type Slot<T> = Arc<Mutex<Option<T>>>;

    /// Lifetime-free part of the scope: the registry of children not
    /// yet joined. Handles reference this, not the `'env`-carrying
    /// [`Scope`], so `ScopedJoinHandle` keeps `std`'s two generics.
    #[derive(Default)]
    pub struct ScopeInner {
        children: Mutex<Vec<Option<Child>>>,
    }

    struct Child {
        tid: Option<usize>,
        os: std::thread::JoinHandle<()>,
        panic_slot: Slot<Payload>,
    }

    pub struct Scope<'env> {
        inner: ScopeInner,
        // Invariant in 'env (like std's Scope) without affecting
        // Send/Sync.
        _env: PhantomData<fn(&'env ()) -> &'env ()>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        reg: &'scope ScopeInner,
        idx: usize,
        tid: Option<usize>,
        result: Slot<T>,
        panic_slot: Slot<Payload>,
    }

    /// Model replacement for [`std::thread::scope`]. See module docs.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: FnOnce(&Scope<'env>) -> T,
    {
        let scope = Scope {
            inner: ScopeInner::default(),
            _env: PhantomData,
        };
        let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        let (aborted, mut stashed) = scope.inner.finish();
        match body {
            // A panic out of the scope body (user assertion or model
            // teardown) propagates, but only after every child joined.
            Err(p) => resume_unwind(p),
            Ok(v) => {
                if aborted {
                    // Model teardown reached during the join epilogue.
                    std::panic::panic_any(AbortToken);
                }
                if let Some(p) = stashed.pop() {
                    // Passthrough parity with std: a panicked child
                    // whose handle was dropped panics the scope.
                    resume_unwind(p);
                }
                v
            }
        }
    }

    impl ScopeInner {
        /// Join every remaining child. Model-joins are attempted first
        /// (and may flip into teardown); OS joins happen regardless so
        /// no thread survives the scope. Returns whether teardown was
        /// observed plus panics stashed by passthrough children.
        fn finish(&self) -> (bool, Vec<Payload>) {
            let mut aborted = false;
            let mut stashed = Vec::new();
            let children: Vec<Child> = {
                let mut reg = self.children.lock().unwrap_or_else(|e| e.into_inner());
                reg.drain(..).flatten().collect()
            };
            for child in children {
                if !aborted {
                    if let (Some(tid), Some(c)) = (child.tid, ctx::current()) {
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            c.sched.op(c.tid, Op::Join { child: tid })
                        }));
                        aborted |= r.is_err();
                    }
                }
                // The child always terminates: normally, or by
                // unwinding on the teardown wake-up.
                let _ = child.os.join();
                let p = child
                    .panic_slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                if let Some(p) = p {
                    stashed.push(p);
                }
            }
            (aborted, stashed)
        }
    }

    impl<'env> Scope<'env> {
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'env,
            T: Send + 'env,
        {
            let result: Slot<T> = Arc::new(Mutex::new(None));
            let panic_slot: Slot<Payload> = Arc::new(Mutex::new(None));
            let model = ctx::current().map(|c| {
                let child = c.sched.register_child(c.tid);
                (c.sched, child)
            });
            let tid = model.as_ref().map(|(_, t)| *t);
            let closure = {
                let result = Arc::clone(&result);
                let panic_slot = Arc::clone(&panic_slot);
                move || {
                    if let Some((sched, tid)) = &model {
                        ctx::set(Some(Ctx {
                            sched: Arc::clone(sched),
                            tid: *tid,
                        }));
                        sched.thread_start(*tid);
                    }
                    let r = catch_unwind(AssertUnwindSafe(f));
                    ctx::set(None);
                    match r {
                        Ok(v) => {
                            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                            if let Some((sched, tid)) = &model {
                                sched.thread_exit(*tid, None);
                            }
                        }
                        Err(p) => {
                            if let Some((sched, tid)) = &model {
                                // Exploration: classified by the
                                // scheduler (user panic => failure).
                                sched.thread_exit(*tid, Some(p));
                            } else {
                                // Passthrough: surface via join / the
                                // scope epilogue, like std.
                                *panic_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(p);
                            }
                        }
                    }
                }
            };
            let erased: Box<dyn FnOnce() + Send + 'env> = Box::new(closure);
            // The spawned thread is joined before `scope` returns on
            // every path — explicit `join` takes the handle from the
            // registry and joins it, and `ScopeInner::finish` joins
            // everything left in the registry even when the body or a
            // model join panics (handles are never removed from the
            // registry without being joined, so `mem::forget` on a
            // ScopedJoinHandle leaks nothing unjoined).
            // SAFETY: join-before-return (above) means no captured
            // borrow outlives its referent; erasure to 'static is sound.
            let erased: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(erased) };
            let os = std::thread::spawn(erased);
            let mut reg = self
                .inner
                .children
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let idx = reg.len();
            reg.push(Some(Child {
                tid,
                os,
                panic_slot: Arc::clone(&panic_slot),
            }));
            drop(reg);
            ScopedJoinHandle {
                reg: &self.inner,
                idx,
                tid,
                result,
                panic_slot,
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            // Model join first, while the child is still registered: if
            // this unwinds on teardown, the scope epilogue still joins
            // the OS thread.
            if let (Some(tid), Some(c)) = (self.tid, ctx::current()) {
                c.sched.op(c.tid, Op::Join { child: tid });
            }
            let child = {
                let mut reg = self.reg.children.lock().unwrap_or_else(|e| e.into_inner());
                reg[self.idx].take()
            };
            if let Some(child) = child {
                let _ = child.os.join();
            }
            if let Some(p) = self
                .panic_slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
            {
                return Err(p);
            }
            let v = self.result.lock().unwrap_or_else(|e| e.into_inner()).take();
            Ok(v.expect("model child finished without result or panic"))
        }
    }
}
