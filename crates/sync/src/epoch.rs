//! Epoch-based reclamation: the MVCC substrate for the concurrent
//! snapshot-isolated front-end (ROADMAP top item).
//!
//! The intended use: frozen `EncodedBlock`s are immutable, so readers
//! can scan without locks if the writer never frees a block a reader
//! might still hold. [`EpochGc`] provides that guarantee: each reader
//! *pins* the current epoch into its own slot before touching shared
//! state and unpins after; the writer *retires* unlinked objects tagged
//! with the epoch at retirement, *advances* the global epoch, and
//! *reclaims* only objects whose tag is strictly below every pinned
//! epoch. The protocol is verified by the `model` test suite: on every
//! explored schedule, reclaiming and poisoning an object while a pinned
//! reader could still reach it would be flagged as a data race by the
//! vector-clock detector — `retire` while pinned must never reclaim.
//!
//! This module is the same source in both build modes; it is written
//! against the crate's own primitives, so under `--features model` it
//! is automatically scheduler-visible.

use crate::atomic::{AtomicU64, Ordering};
use crate::mutex::Mutex;

/// Slot value meaning "this reader is not pinned".
const IDLE: u64 = u64::MAX;

/// Epoch-based garbage collector over retired items of type `T`
/// (typically an index, pointer-like handle, or boxed block).
#[derive(Debug)]
pub struct EpochGc<T> {
    global: AtomicU64,
    slots: Vec<AtomicU64>,
    limbo: Mutex<Vec<(u64, T)>>,
}

/// RAII pin: while alive, `reclaim` treats everything retired at or
/// after the pinned epoch as possibly still in use by this reader.
pub struct EpochGuard<'a, T> {
    gc: &'a EpochGc<T>,
    slot: usize,
}

impl<T> EpochGc<T> {
    /// A collector with `readers` pre-allocated reader slots, all idle.
    pub fn new(readers: usize) -> Self {
        EpochGc {
            global: AtomicU64::new(0),
            slots: (0..readers).map(|_| AtomicU64::new(IDLE)).collect(),
            limbo: Mutex::new(Vec::new()),
        }
    }

    /// Pin reader `slot` to the current epoch.
    ///
    /// The store-then-recheck loop closes the pin/advance race: if the
    /// global epoch moved between the read and the slot publication,
    /// the published pin might be too old to protect this reader, so it
    /// re-publishes at the newer epoch.
    pub fn pin(&self, slot: usize) -> EpochGuard<'_, T> {
        loop {
            // SeqCst read of the epoch to pin: must not be reordered
            // after the slot store below, and the recheck relies on a
            // total order with `advance`'s RMW.
            let e = self.global.load(Ordering::SeqCst);
            // SeqCst publication of the pin: `reclaim`'s slot scan must
            // observe it if it runs after `advance` ordered behind this
            // store; the model suite verifies a Relaxed store here is
            // caught by the detector (see model test relaxed_unpin).
            self.slots[slot].store(e, Ordering::SeqCst);
            // SeqCst recheck: pairs with `advance`; also an acquire
            // edge from the writer's unlink (which precedes advance in
            // program order), so a reader that observes the advanced
            // epoch also observes the unlink.
            if self.global.load(Ordering::SeqCst) == e {
                return EpochGuard { gc: self, slot };
            }
        }
    }

    /// Hand an unlinked object to the collector, tagged with the
    /// current epoch. The caller must have made it unreachable for new
    /// readers *before* calling retire (unlink, then retire).
    pub fn retire(&self, item: T) {
        // SeqCst tag read: the tag must be at least the epoch any
        // still-pinned reader that can reach `item` has published.
        let e = self.global.load(Ordering::SeqCst);
        self.limbo.lock().expect("epoch limbo lock").push((e, item));
    }

    /// Move the global epoch forward, opening a new grace period.
    /// Returns the previous epoch.
    pub fn advance(&self) -> u64 {
        // SeqCst RMW: releases the writer's preceding unlinks to any
        // reader whose pin loop observes the new epoch, and is totally
        // ordered against pin's store/recheck pair.
        self.global.fetch_add(1, Ordering::SeqCst)
    }

    /// Free retired items no pinned reader can still hold: items whose
    /// tag is strictly below the minimum pinned epoch (or below the
    /// current epoch when nobody is pinned). Returns them so the caller
    /// drops (or recycles) storage outside the limbo lock.
    pub fn reclaim(&self) -> Vec<T> {
        let mut min: Option<u64> = None;
        for s in &self.slots {
            // SeqCst slot scan: pairs with the guard-drop Release store
            // of IDLE, so a reader observed as unpinned happens-before
            // this scan — and therefore before any reuse of what we
            // free. Pairs with pin's SeqCst store for the pinned case.
            let e = s.load(Ordering::SeqCst);
            if e != IDLE {
                min = Some(min.map_or(e, |m| m.min(e)));
            }
        }
        let threshold = match min {
            Some(m) => m,
            // SeqCst: nobody pinned — everything retired before the
            // current epoch is unreachable (retire tags with the epoch
            // current at retirement, and later pins recheck global).
            None => self.global.load(Ordering::SeqCst),
        };
        let mut limbo = self.limbo.lock().expect("epoch limbo lock");
        let mut out = Vec::new();
        let mut keep = Vec::with_capacity(limbo.len());
        for (tag, item) in limbo.drain(..) {
            if tag < threshold {
                out.push(item);
            } else {
                keep.push((tag, item));
            }
        }
        *limbo = keep;
        out
    }

    /// Current global epoch (diagnostics).
    pub fn epoch(&self) -> u64 {
        // SeqCst for consistency with every other access to `global`;
        // this is a diagnostic read, not a protocol step.
        self.global.load(Ordering::SeqCst)
    }

    /// Number of retired items awaiting a grace period (diagnostics).
    pub fn limbo_len(&self) -> usize {
        self.limbo.lock().expect("epoch limbo lock").len()
    }
}

impl<T> EpochGuard<'_, T> {
    /// The epoch this guard pinned.
    pub fn epoch(&self) -> u64 {
        // SeqCst mirror of the pin store; diagnostic read of own slot.
        self.gc.slots[self.slot].load(Ordering::SeqCst)
    }
}

impl<T> Drop for EpochGuard<'_, T> {
    fn drop(&mut self) {
        // Release unpin: everything this reader did while pinned
        // happens-before a reclaim that observes the slot idle, so
        // freed storage can be reused without racing the reader.
        self.gc.slots[self.slot].store(IDLE, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_reclaim_frees_past_epochs() {
        let gc: EpochGc<usize> = EpochGc::new(2);
        gc.retire(7);
        assert_eq!(gc.limbo_len(), 1);
        // Same epoch: nothing freed until a grace period passes.
        assert!(gc.reclaim().is_empty());
        gc.advance();
        assert_eq!(gc.reclaim(), vec![7]);
        assert_eq!(gc.limbo_len(), 0);
    }

    #[test]
    fn pinned_reader_blocks_reclaim() {
        let gc: EpochGc<usize> = EpochGc::new(2);
        let guard = gc.pin(0);
        gc.retire(1);
        gc.advance();
        // Reader pinned at the retirement epoch: nothing may be freed.
        assert!(gc.reclaim().is_empty());
        assert_eq!(gc.limbo_len(), 1);
        drop(guard);
        assert_eq!(gc.reclaim(), vec![1]);
    }

    #[test]
    fn late_pin_does_not_resurrect_old_epochs() {
        let gc: EpochGc<usize> = EpochGc::new(1);
        gc.retire(3);
        gc.advance();
        // A reader pinning *after* the advance pins the new epoch and
        // cannot hold pre-advance garbage.
        let _guard = gc.pin(0);
        assert_eq!(gc.reclaim(), vec![3]);
    }

    #[test]
    fn guard_epoch_reports_pin() {
        let gc: EpochGc<usize> = EpochGc::new(1);
        gc.advance();
        gc.advance();
        let g = gc.pin(0);
        assert_eq!(g.epoch(), 2);
        assert_eq!(gc.epoch(), 2);
    }
}
