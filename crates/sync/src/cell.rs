//! [`PlainCell`]: deliberately non-atomic shared state, the probe the
//! race detector checks.
//!
//! A `PlainCell<T>` is an `UnsafeCell` with `get`/`set` on `&self` and
//! a `Sync` impl — exactly the shape of a field that concurrent code
//! shares *believing* some protocol orders every access. In a `model`
//! run every access is clock-checked: an unordered conflicting pair is
//! reported as a data race with a schedule trace. Model tests use it
//! two ways: as the payload whose safety a protocol (epoch reclamation,
//! morsel ownership) is supposed to guarantee — the detector must stay
//! silent on every schedule — and as a deliberately racy fixture the
//! detector must flag (the true-positive gate).

use std::cell::UnsafeCell;

#[derive(Default)]
pub struct PlainCell<T> {
    inner: UnsafeCell<T>,
}

// PlainCell models non-atomic shared memory. Concurrent unordered
// access is a bug by construction; the `model` feature's vector-clock
// detector exists to prove such access cannot happen on any explored
// schedule. Code using PlainCell outside a model test must order every
// access through amnesia-sync primitives, which is exactly the property
// the model suite verifies.
// SAFETY: upheld by the model-verified ordering argument above.
unsafe impl<T: Send> Sync for PlainCell<T> {}

impl<T: Copy> PlainCell<T> {
    pub const fn new(v: T) -> Self {
        Self {
            inner: UnsafeCell::new(v),
        }
    }

    pub fn get(&self) -> T {
        #[cfg(feature = "model")]
        if let Some(c) = crate::ctx::current() {
            c.sched.cell_read(c.tid, self as *const Self as usize);
        }
        // SAFETY: reads are ordered relative to all writes either by
        // the serialized model scheduler (which race-checks first) or
        // by externally verified synchronization (see type docs).
        unsafe { *self.inner.get() }
    }

    pub fn set(&self, v: T) {
        #[cfg(feature = "model")]
        if let Some(c) = crate::ctx::current() {
            c.sched.cell_write(c.tid, self as *const Self as usize);
        }
        // SAFETY: as in `get`: the access is race-checked under the
        // model, and externally synchronized on verified paths.
        unsafe {
            *self.inner.get() = v;
        }
    }
}

#[cfg(feature = "model")]
impl<T> Drop for PlainCell<T> {
    fn drop(&mut self) {
        // Retire the location so address reuse starts with fresh clocks.
        if let Some(c) = crate::ctx::current() {
            c.sched.forget_cell(self as *const Self as usize);
        }
    }
}
