//! Atomics: `std` re-exports normally, scheduler-visible wrappers under
//! the `model` feature.
//!
//! The wrappers expose the subset of the `std` atomic API the workspace
//! uses (`new`/`load`/`store`/`swap`/`fetch_add`/`fetch_max`/
//! `compare_exchange`). Under an active exploration every call declares
//! itself to the scheduler before executing, which makes it a decision
//! point and feeds the vector clocks; outside an exploration (or in a
//! non-`model` build) the call is exactly the `std` operation.
//!
//! Model semantics note: the host execution is serialized, so loads
//! observe the latest store (sequential consistency). `compare_exchange`
//! is modelled with its success ordering; the failure ordering is never
//! weaker-checked separately.

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(feature = "model")]
pub use std::sync::atomic::Ordering;

#[cfg(feature = "model")]
pub use modeled::{AtomicBool, AtomicU64, AtomicUsize};

#[cfg(feature = "model")]
mod modeled {
    use super::Ordering;
    use crate::ctx;
    use crate::model::sched::{AtomKind, Op};

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $val) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                fn hook(&self, kind: AtomKind, ord: Ordering) {
                    if let Some(c) = ctx::current() {
                        c.sched.op(
                            c.tid,
                            Op::Atomic {
                                addr: self as *const Self as usize,
                                kind,
                                ord,
                            },
                        );
                    }
                }

                pub fn load(&self, ord: Ordering) -> $val {
                    self.hook(AtomKind::Load, ord);
                    self.inner.load(ord)
                }

                pub fn store(&self, v: $val, ord: Ordering) {
                    self.hook(AtomKind::Store, ord);
                    self.inner.store(v, ord)
                }

                pub fn swap(&self, v: $val, ord: Ordering) -> $val {
                    self.hook(AtomKind::Rmw, ord);
                    self.inner.swap(v, ord)
                }

                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    // Modelled with the success ordering (see module docs).
                    self.hook(AtomKind::Rmw, success);
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // Relaxed, and deliberately not a model op: debug
                    // printing must not perturb the schedule or clocks.
                    self.inner.load(Ordering::Relaxed).fmt(f)
                }
            }

            impl Drop for $name {
                fn drop(&mut self) {
                    // Retire the location so reuse of this address by a
                    // later allocation starts with fresh clocks.
                    if let Some(c) = ctx::current() {
                        c.sched.forget_atomic(self as *const Self as usize);
                    }
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    macro_rules! model_atomic_int {
        ($name:ident, $val:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $val, ord: Ordering) -> $val {
                    self.hook(AtomKind::Rmw, ord);
                    self.inner.fetch_add(v, ord)
                }

                pub fn fetch_max(&self, v: $val, ord: Ordering) -> $val {
                    self.hook(AtomKind::Rmw, ord);
                    self.inner.fetch_max(v, ord)
                }
            }
        };
    }

    model_atomic_int!(AtomicUsize, usize);
    model_atomic_int!(AtomicU64, u64);
}
