//! Vector clocks: the happens-before lattice the race detector walks.

/// A grow-on-demand vector clock indexed by thread id. Missing entries
/// read as zero, so clocks created before a thread existed compare
/// correctly against clocks that know about it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advance this thread's own component (one tick per operation).
    pub(crate) fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise max: afterwards `self` dominates both inputs.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }
}
