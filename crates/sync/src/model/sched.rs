//! The deterministic cooperative scheduler.
//!
//! All model threads are real OS threads, but at most one executes at a
//! time: a thread parks at every synchronization operation and waits
//! until the controller grants it the step. The controller (running on
//! the `explore` caller's thread) waits for quiescence — every live
//! thread parked with a declared pending operation — computes the
//! enabled set, and picks the next thread per the DFS plan. Granted
//! operations apply their logical effects (vector-clock joins, race
//! checks, conflict analysis for backtrack seeding) under the state
//! lock before the real `std` operation runs.

use super::vclock::VClock;
use super::{Failure, FailureKind, ModelConfig};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};

/// Panic payload used to tear a run down after a failure or during
/// backtracking; the global panic hook keeps it silent.
pub(crate) struct AbortToken;

// The detector's acquire/release classification: these match arms list
// which orderings move vector clocks (the clock model itself, not an
// atomic access — no ordering is being chosen here).
fn is_acquire(ord: Ordering) -> bool {
    // Acquire-class orderings join the location clock into the thread.
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    // Release-class orderings join the thread clock into the location.
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ord_name(ord: Ordering) -> &'static str {
    match ord {
        Ordering::Relaxed => "Relaxed", // trace rendering, not an access
        Ordering::Acquire => "Acquire", // trace rendering, not an access
        Ordering::Release => "Release", // trace rendering, not an access
        Ordering::AcqRel => "AcqRel",   // trace rendering, not an access
        Ordering::SeqCst => "SeqCst",   // trace rendering, not an access
        // `Ordering` is non-exhaustive; nothing else reaches the shim.
        _ => "?",
    }
}

/// Kinds of atomic access, for clock edges and conflict analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AtomKind {
    Load,
    Store,
    Rmw,
}

/// A synchronization operation a thread declares before crossing it.
/// Only *decision* operations (the ones below) cost a scheduling grant;
/// unlock and plain-cell accesses are applied inline while the thread
/// already holds the step.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// First visible action of a thread (consumes its spawn grant).
    Start,
    Atomic {
        addr: usize,
        kind: AtomKind,
        ord: Ordering,
    },
    Lock {
        addr: usize,
    },
    Join {
        child: usize,
    },
}

/// A shared resource, for conflict analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Res {
    Atom(usize),
    Lock(usize),
}

struct ExecRec {
    tid: usize,
    res: Res,
    write: bool,
    decision: usize,
}

/// Per-atomic-location state.
#[derive(Default)]
struct AtomLoc {
    /// Joined by release-class stores/RMWs, acquired by acquire-class
    /// loads/RMWs.
    release: VClock,
    /// Most recent store, for weak-edge (relaxed observation) hints.
    last_store: Option<(usize, usize, Ordering)>, // tid, step, ord
}

/// Per-plain-cell state (FastTrack-style last write + read set).
#[derive(Default)]
struct CellLoc {
    write: Option<(usize, u64, usize)>, // tid, clock component, step
    reads: Vec<(usize, u64, usize)>,
}

struct LockLoc {
    held_by: Option<usize>,
    release: VClock,
}

struct Th {
    pending: Option<Op>,
    finished: bool,
    clock: VClock,
}

/// One decision point of the DFS, persisted across runs.
#[derive(Clone, Debug)]
pub(crate) struct ChoicePoint {
    pub(crate) enabled: Vec<usize>,
    pub(crate) prev: Option<usize>,
    pub(crate) preemptions_before: usize,
    pub(crate) done: BTreeSet<usize>,
    pub(crate) backtrack: BTreeSet<usize>,
    pub(crate) chosen: usize,
}

struct WeakEdge {
    loc: usize,
    writer: usize,
    wstep: usize,
    word: Ordering,
    reader: usize,
    rstep: usize,
    rord: Ordering,
}

pub(crate) struct St {
    threads: Vec<Th>,
    running: Option<usize>,
    abort: bool,
    atom_ids: HashMap<usize, usize>,
    atoms: Vec<AtomLoc>,
    cell_ids: HashMap<usize, usize>,
    cells: Vec<CellLoc>,
    lock_ids: HashMap<usize, usize>,
    locks: Vec<LockLoc>,
    step: usize,
    trace: Vec<String>,
    exec: Vec<ExecRec>,
    decisions: Vec<usize>,
    cur_decision: usize,
    stack: Vec<ChoicePoint>,
    forced_len: usize,
    preemptions: usize,
    failure: Option<Failure>,
    weak: Vec<WeakEdge>,
}

pub(crate) struct Sched {
    mx: Mutex<St>,
    cv: Condvar,
    cfg: ModelConfig,
}

enum ExitOutcome {
    Normal,
    Aborted,
    UserPanic(String),
}

impl Sched {
    /// Lock the shared state, shrugging off poison: teardown panics can
    /// technically poison the mutex while a guard unwinds, and the
    /// state is still perfectly usable for the remaining cleanup.
    fn lock_st(&self) -> std::sync::MutexGuard<'_, St> {
        self.mx.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fresh per-run scheduler. `stack[..forced_len]` replays the DFS
    /// prefix; decisions beyond it follow the default policy and push
    /// new choice points.
    pub(crate) fn new(cfg: ModelConfig, stack: Vec<ChoicePoint>, forced_len: usize) -> Self {
        Sched {
            mx: Mutex::new(St {
                threads: Vec::new(),
                running: None,
                abort: false,
                atom_ids: HashMap::new(),
                atoms: Vec::new(),
                cell_ids: HashMap::new(),
                cells: Vec::new(),
                lock_ids: HashMap::new(),
                locks: Vec::new(),
                step: 0,
                trace: Vec::new(),
                exec: Vec::new(),
                decisions: Vec::new(),
                cur_decision: 0,
                stack,
                forced_len,
                preemptions: 0,
                failure: None,
                weak: Vec::new(),
            }),
            cv: Condvar::new(),
            cfg,
        }
    }

    /// Register the root thread (tid 0) before its OS thread starts.
    pub(crate) fn register_root(&self) {
        let mut st = self.lock_st();
        st.threads.push(Th {
            pending: Some(Op::Start),
            finished: false,
            clock: VClock::default(),
        });
    }

    /// Register a child of `parent`. Called inline while the parent
    /// holds the step, before the OS thread exists: the spawn edge
    /// (parent clock -> child clock) is applied here, and the child is
    /// immediately grantable — it picks the grant up whenever its OS
    /// thread parks.
    pub(crate) fn register_child(&self, parent: usize) -> usize {
        let mut st = self.lock_st();
        st.threads[parent].clock.bump(parent);
        let mut clock = st.threads[parent].clock.clone();
        let tid = st.threads.len();
        clock.bump(tid);
        let step = st.step;
        st.step += 1;
        st.trace
            .push(format!("step {step:>4}  t{parent}  spawn t{tid}"));
        st.threads.push(Th {
            pending: Some(Op::Start),
            finished: false,
            clock,
        });
        tid
    }

    /// Declare a decision operation, park until granted, then apply its
    /// effect. Panics with [`AbortToken`] if the run is being torn down.
    pub(crate) fn op(&self, tid: usize, op: Op) {
        let mut st = self.lock_st();
        if st.abort {
            drop(st);
            if std::thread::panicking() {
                // Unwinding already (e.g. a Drop running during abort):
                // let the real operation pass through instead of
                // panicking inside a panic.
                return;
            }
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].pending = Some(op.clone());
        st.running = None;
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                std::panic::panic_any(AbortToken);
            }
            if st.running == Some(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap();
        }
        st.threads[tid].pending = None;
        self.effect(&mut st, tid, &op);
        if st.failure.is_some() {
            st.abort = true;
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(AbortToken);
        }
    }

    /// First park of a freshly spawned thread (its `Start` grant was
    /// registered by `register_root`/`register_child`).
    pub(crate) fn thread_start(&self, tid: usize) {
        let mut st = self.lock_st();
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.running == Some(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap();
        }
        st.threads[tid].pending = None;
        let step = st.step;
        st.step += 1;
        st.trace.push(format!("step {step:>4}  t{tid}  start"));
        st.threads[tid].clock.bump(tid);
    }

    /// Mark a thread finished. Never panics: this is teardown, and runs
    /// whether the thread completed, aborted, or panicked in user code.
    pub(crate) fn thread_exit(&self, tid: usize, payload: Option<Box<dyn std::any::Any + Send>>) {
        let outcome = match payload {
            None => ExitOutcome::Normal,
            Some(p) if p.is::<AbortToken>() => ExitOutcome::Aborted,
            Some(p) => ExitOutcome::UserPanic(panic_msg(&p)),
        };
        let mut st = self.lock_st();
        st.threads[tid].finished = true;
        let step = st.step;
        st.step += 1;
        st.trace.push(format!("step {step:>4}  t{tid}  exit"));
        if st.running == Some(tid) {
            st.running = None;
        }
        if let ExitOutcome::UserPanic(msg) = outcome {
            if !st.abort && st.failure.is_none() {
                let f = fail(
                    &st,
                    FailureKind::Panic,
                    format!("thread t{tid} panicked: {msg}"),
                    Vec::new(),
                );
                st.failure = Some(f);
                st.abort = true;
            }
        }
        self.cv.notify_all();
    }

    // -- inline (non-decision) operations --------------------------------

    /// Mutex release: applied inline (always enabled, and other threads
    /// only observe it at the next decision point anyway).
    pub(crate) fn unlock(&self, tid: usize, addr: usize) {
        let mut st = self.lock_st();
        if st.abort {
            let pass = std::thread::panicking();
            drop(st);
            if pass {
                return;
            }
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].clock.bump(tid);
        let lid = lock_id(&mut st, addr);
        let clock = st.threads[tid].clock.clone();
        let lk = &mut st.locks[lid];
        lk.held_by = None;
        // Release edge: the next acquirer joins everything this thread
        // did while holding the lock.
        lk.release.join(&clock);
        let step = st.step;
        st.step += 1;
        st.trace
            .push(format!("step {step:>4}  t{tid}  unlock lock#{lid}"));
        self.cv.notify_all();
    }

    /// Plain-cell read: race-checked against the last write.
    pub(crate) fn cell_read(&self, tid: usize, addr: usize) {
        let mut st = self.lock_st();
        if st.abort {
            let pass = std::thread::panicking();
            drop(st);
            if pass {
                return;
            }
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].clock.bump(tid);
        let cid = cell_id(&mut st, addr);
        let step = st.step;
        st.step += 1;
        st.trace
            .push(format!("step {step:>4}  t{tid}  read  cell#{cid}"));
        let my = st.threads[tid].clock.get(tid);
        let racy = match st.cells[cid].write {
            Some((wt, wc, wstep)) if wt != tid && st.threads[tid].clock.get(wt) < wc => {
                Some((wt, wstep))
            }
            _ => None,
        };
        if let Some((wt, wstep)) = racy {
            let desc = format!(
                "data race on cell#{cid}: t{wt} wrote at step {wstep}, t{tid} read at step {step} \
                 with no happens-before edge between them"
            );
            let hints = weak_hints(&st, wt, tid);
            let f = fail(&st, FailureKind::Race, desc, hints);
            st.failure = Some(f);
            st.abort = true;
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        let cell = &mut st.cells[cid];
        cell.reads.retain(|&(rt, _, _)| rt != tid);
        cell.reads.push((tid, my, step));
    }

    /// Plain-cell write: race-checked against the last write and every
    /// concurrent read.
    pub(crate) fn cell_write(&self, tid: usize, addr: usize) {
        let mut st = self.lock_st();
        if st.abort {
            let pass = std::thread::panicking();
            drop(st);
            if pass {
                return;
            }
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].clock.bump(tid);
        let cid = cell_id(&mut st, addr);
        let step = st.step;
        st.step += 1;
        st.trace
            .push(format!("step {step:>4}  t{tid}  write cell#{cid}"));
        let my = st.threads[tid].clock.get(tid);
        let mut racy: Option<(usize, usize, &'static str)> = None;
        if let Some((wt, wc, wstep)) = st.cells[cid].write {
            if wt != tid && st.threads[tid].clock.get(wt) < wc {
                racy = Some((wt, wstep, "wrote"));
            }
        }
        if racy.is_none() {
            for &(rt, rc, rstep) in &st.cells[cid].reads {
                if rt != tid && st.threads[tid].clock.get(rt) < rc {
                    racy = Some((rt, rstep, "read"));
                    break;
                }
            }
        }
        if let Some((ot, ostep, what)) = racy {
            let desc = format!(
                "data race on cell#{cid}: t{ot} {what} at step {ostep}, t{tid} wrote at step \
                 {step} with no happens-before edge between them"
            );
            let hints = weak_hints(&st, ot, tid);
            let f = fail(&st, FailureKind::Race, desc, hints);
            st.failure = Some(f);
            st.abort = true;
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        let cell = &mut st.cells[cid];
        cell.write = Some((tid, my, step));
        cell.reads.clear();
    }

    /// Drop of a wrapper: retire the location so a later allocation at
    /// the same address starts with fresh state.
    pub(crate) fn forget_atomic(&self, addr: usize) {
        let mut st = self.lock_st();
        if let Some(id) = st.atom_ids.remove(&addr) {
            st.atoms[id] = AtomLoc::default();
        }
    }

    pub(crate) fn forget_cell(&self, addr: usize) {
        let mut st = self.lock_st();
        if let Some(id) = st.cell_ids.remove(&addr) {
            st.cells[id] = CellLoc::default();
        }
    }

    pub(crate) fn forget_lock(&self, addr: usize) {
        let mut st = self.lock_st();
        if let Some(id) = st.lock_ids.remove(&addr) {
            st.locks[id].held_by = None;
            st.locks[id].release = VClock::default();
        }
    }

    // -- effects of granted decision ops ---------------------------------

    fn effect(&self, st: &mut St, tid: usize, op: &Op) {
        st.threads[tid].clock.bump(tid);
        let step = st.step;
        st.step += 1;
        match *op {
            Op::Start => {
                st.trace.push(format!("step {step:>4}  t{tid}  start"));
            }
            Op::Atomic { addr, kind, ord } => {
                let lid = atom_id(st, addr);
                let kname = match kind {
                    AtomKind::Load => "load ",
                    AtomKind::Store => "store",
                    AtomKind::Rmw => "rmw  ",
                };
                st.trace.push(format!(
                    "step {step:>4}  t{tid}  {kname} atomic#{lid} {}",
                    ord_name(ord)
                ));
                self.dpor_update(st, tid, Res::Atom(lid), kind != AtomKind::Load);
                st.exec.push(ExecRec {
                    tid,
                    res: Res::Atom(lid),
                    write: kind != AtomKind::Load,
                    decision: st.cur_decision,
                });
                if matches!(kind, AtomKind::Load | AtomKind::Rmw) {
                    if let Some((wtid, wstep, word)) = st.atoms[lid].last_store {
                        // The host execution is serialized, so this
                        // access observes the latest store; if the pair
                        // carries no release->acquire edge, remember it
                        // as a hint for race reports. RMWs always read
                        // the latest value in real hardware too, so only
                        // their ordering (not their visibility) is weak.
                        let edge = is_release(word) && is_acquire(ord);
                        if !edge && wtid != tid {
                            st.weak.push(WeakEdge {
                                loc: lid,
                                writer: wtid,
                                wstep,
                                word,
                                reader: tid,
                                rstep: step,
                                rord: ord,
                            });
                        }
                    }
                    if is_acquire(ord) {
                        let rel = st.atoms[lid].release.clone();
                        st.threads[tid].clock.join(&rel);
                    }
                }
                if matches!(kind, AtomKind::Store | AtomKind::Rmw) {
                    if is_release(ord) {
                        let clock = st.threads[tid].clock.clone();
                        st.atoms[lid].release.join(&clock);
                    }
                    st.atoms[lid].last_store = Some((tid, step, ord));
                }
            }
            Op::Lock { addr } => {
                let lid = lock_id(st, addr);
                st.trace
                    .push(format!("step {step:>4}  t{tid}  lock  lock#{lid}"));
                self.dpor_update(st, tid, Res::Lock(lid), true);
                st.exec.push(ExecRec {
                    tid,
                    res: Res::Lock(lid),
                    write: true,
                    decision: st.cur_decision,
                });
                debug_assert!(st.locks[lid].held_by.is_none(), "granted a held lock");
                st.locks[lid].held_by = Some(tid);
                // Acquire edge: join everything earlier holders released.
                let rel = st.locks[lid].release.clone();
                st.threads[tid].clock.join(&rel);
            }
            Op::Join { child } => {
                st.trace
                    .push(format!("step {step:>4}  t{tid}  join  t{child}"));
                debug_assert!(st.threads[child].finished, "granted join on live thread");
                // Join edge: everything the child ever did happens
                // before the joiner continues.
                let child_clock = st.threads[child].clock.clone();
                st.threads[tid].clock.join(&child_clock);
            }
        }
    }

    /// DPOR backtrack seeding: the other thread of the most recent
    /// conflicting operation gets a turn at the decision point just
    /// before that operation.
    fn dpor_update(&self, st: &mut St, tid: usize, res: Res, write: bool) {
        let hit = st
            .exec
            .iter()
            .rev()
            .find(|r| r.tid != tid && r.res == res && (r.write || write))
            .map(|r| r.decision);
        if let Some(j) = hit {
            if let Some(cp) = st.stack.get_mut(j) {
                if cp.enabled.contains(&tid) {
                    cp.backtrack.insert(tid);
                } else {
                    for &e in &cp.enabled {
                        cp.backtrack.insert(e);
                    }
                }
            }
        }
    }

    // -- the controller ---------------------------------------------------

    fn enabled(&self, st: &St) -> Vec<usize> {
        let mut out = Vec::new();
        for (tid, th) in st.threads.iter().enumerate() {
            if th.finished {
                continue;
            }
            let ok = match th.pending {
                Some(Op::Lock { addr }) => match st.lock_ids.get(&addr) {
                    Some(&lid) => st.locks[lid].held_by.is_none(),
                    None => true,
                },
                Some(Op::Join { child }) => st.threads[child].finished,
                Some(_) => true,
                None => false,
            };
            if ok {
                out.push(tid);
            }
        }
        out
    }

    /// Drive one run to completion. Returns when every thread finished.
    pub(crate) fn controller(&self) {
        let mut st = self.lock_st();
        loop {
            // Wait for quiescence: nobody running, everyone parked with
            // a pending op (or finished).
            loop {
                let quiet = st.running.is_none()
                    && st.threads.iter().all(|t| t.finished || t.pending.is_some());
                if quiet {
                    break;
                }
                st = self.cv.wait(st).unwrap();
            }
            if st.threads.iter().all(|t| t.finished) {
                return;
            }
            if st.abort {
                // Failure teardown: parked threads unwind on wake.
                self.cv.notify_all();
                st = self.cv.wait(st).unwrap();
                continue;
            }
            if st.step > self.cfg.max_steps {
                let f = fail(
                    &st,
                    FailureKind::Deadlock,
                    format!(
                        "step limit {} exceeded: livelock or runaway loop under this schedule",
                        self.cfg.max_steps
                    ),
                    Vec::new(),
                );
                st.failure = Some(f);
                st.abort = true;
                self.cv.notify_all();
                continue;
            }
            let enabled = self.enabled(&st);
            if enabled.is_empty() {
                let pending: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.finished)
                    .map(|(tid, t)| format!("t{tid} blocked on {:?}", t.pending))
                    .collect();
                let f = fail(
                    &st,
                    FailureKind::Deadlock,
                    format!("deadlock: no enabled thread ({})", pending.join("; ")),
                    Vec::new(),
                );
                st.failure = Some(f);
                st.abort = true;
                self.cv.notify_all();
                continue;
            }
            let d = st.decisions.len();
            let choice = if let Some(replay) = &self.cfg.replay {
                if d < replay.len() {
                    let c = replay[d];
                    if !enabled.contains(&c) {
                        let f = fail(
                            &st,
                            FailureKind::Deadlock,
                            format!(
                                "replay diverged at decision {d}: t{c} not enabled \
                                 (enabled: {enabled:?})"
                            ),
                            Vec::new(),
                        );
                        st.failure = Some(f);
                        st.abort = true;
                        self.cv.notify_all();
                        continue;
                    }
                    c
                } else {
                    default_choice(&self.cfg, d, &st, &enabled)
                }
            } else if d < st.forced_len {
                let c = st.stack[d].chosen;
                debug_assert_eq!(
                    st.stack[d].enabled, enabled,
                    "nondeterministic body: enabled set diverged on prefix replay"
                );
                c
            } else {
                let c = default_choice(&self.cfg, d, &st, &enabled);
                let prev = st.decisions.last().copied();
                let cp = ChoicePoint {
                    enabled: enabled.clone(),
                    prev,
                    preemptions_before: st.preemptions,
                    done: BTreeSet::from([c]),
                    backtrack: BTreeSet::from([c]),
                    chosen: c,
                };
                st.stack.push(cp);
                c
            };
            if let Some(&p) = st.decisions.last() {
                if p != choice && enabled.contains(&p) {
                    st.preemptions += 1;
                }
            }
            st.decisions.push(choice);
            st.cur_decision = d;
            st.running = Some(choice);
            self.cv.notify_all();
        }
    }

    /// Extract the DFS stack and any failure after the controller
    /// returns (shared `Arc`s may still be draining, so take by ref).
    pub(crate) fn take_results(&self) -> (Vec<ChoicePoint>, Option<Failure>) {
        let mut st = self.lock_st();
        (std::mem::take(&mut st.stack), st.failure.take())
    }
}

fn default_choice(cfg: &ModelConfig, d: usize, st: &St, enabled: &[usize]) -> usize {
    if let Some(&p) = st.decisions.last() {
        if enabled.contains(&p) {
            // Keep running the current thread: the zero-preemption
            // schedule is the cheapest representative of its class.
            return p;
        }
    }
    let idx = (super::splitmix64(cfg.seed ^ (d as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        % enabled.len() as u64) as usize;
    enabled[idx]
}

fn atom_id(st: &mut St, addr: usize) -> usize {
    if let Some(&id) = st.atom_ids.get(&addr) {
        return id;
    }
    let id = st.atoms.len();
    st.atoms.push(AtomLoc::default());
    st.atom_ids.insert(addr, id);
    id
}

fn cell_id(st: &mut St, addr: usize) -> usize {
    if let Some(&id) = st.cell_ids.get(&addr) {
        return id;
    }
    let id = st.cells.len();
    st.cells.push(CellLoc::default());
    st.cell_ids.insert(addr, id);
    id
}

fn lock_id(st: &mut St, addr: usize) -> usize {
    if let Some(&id) = st.lock_ids.get(&addr) {
        return id;
    }
    let id = st.locks.len();
    st.locks.push(LockLoc {
        held_by: None,
        release: VClock::default(),
    });
    st.lock_ids.insert(addr, id);
    id
}

/// Weak-edge hints involving either racing thread, newest first.
fn weak_hints(st: &St, a: usize, b: usize) -> Vec<String> {
    st.weak
        .iter()
        .rev()
        .filter(|w| (w.writer == a || w.writer == b) && (w.reader == a || w.reader == b))
        .take(8)
        .map(|w| {
            format!(
                "hint: t{}'s {} store to atomic#{} (step {}) was observed by t{}'s {} load \
                 (step {}) — this pair creates no happens-before edge; a Release store with an \
                 Acquire load would",
                w.writer,
                ord_name(w.word),
                w.loc,
                w.wstep,
                w.reader,
                ord_name(w.rord),
                w.rstep
            )
        })
        .collect()
}

fn fail(st: &St, kind: FailureKind, desc: String, hints: Vec<String>) -> Failure {
    Failure {
        kind,
        desc,
        schedule: st.decisions.clone(),
        trace: st.trace.clone(),
        hints,
    }
}

fn panic_msg(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}
