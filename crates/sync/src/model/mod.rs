//! Deterministic schedule exploration: public API.
//!
//! See the crate-level docs for the scheduler design, the race
//! detector, and the replay workflow. The entry point is [`explore`]
//! (or [`explore_default`] for env-driven configuration); both return a
//! [`Report`] whose [`Report::assert_clean`] / [`Report::expect_failure`]
//! are the assertions model tests are built from.

pub(crate) mod sched;
pub(crate) mod vclock;

use sched::{ChoicePoint, Sched};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

/// Exploration parameters. Every field has an environment override so
/// CI can reseed and a failing run can be replayed without recompiling;
/// see [`ModelConfig::from_env`].
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Maximum preemptive context switches per schedule
    /// (`AMNESIA_MODEL_PREEMPTIONS`, default 3). Backtrack choices that
    /// would exceed the bound are pruned.
    pub preemption_bound: usize,
    /// Cap on explored schedules (`AMNESIA_MODEL_ITERS`, default 4000).
    pub max_schedules: u64,
    /// Shuffles the order backtrack candidates are tried
    /// (`AMNESIA_MODEL_SEED`, default 0). CI passes the run number.
    pub seed: u64,
    /// Pin one exact schedule instead of exploring
    /// (`AMNESIA_MODEL_REPLAY`, a comma-separated thread-id list as
    /// printed in a failure report).
    pub replay: Option<Vec<usize>>,
    /// Per-schedule step budget: exceeding it is reported as a
    /// livelock-style failure instead of hanging the suite.
    pub max_steps: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            preemption_bound: 3,
            max_schedules: 4000,
            seed: 0,
            replay: None,
            max_steps: 100_000,
        }
    }
}

impl ModelConfig {
    /// Defaults overridden by `AMNESIA_MODEL_{PREEMPTIONS,ITERS,SEED,REPLAY}`.
    pub fn from_env() -> Self {
        let mut cfg = ModelConfig::default();
        if let Some(v) = env_u64("AMNESIA_MODEL_PREEMPTIONS") {
            cfg.preemption_bound = v as usize;
        }
        if let Some(v) = env_u64("AMNESIA_MODEL_ITERS") {
            cfg.max_schedules = v.max(1);
        }
        if let Some(v) = env_u64("AMNESIA_MODEL_SEED") {
            cfg.seed = v;
        }
        if let Ok(s) = std::env::var("AMNESIA_MODEL_REPLAY") {
            let ids: Vec<usize> = s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
            if !ids.is_empty() {
                cfg.replay = Some(ids);
            }
        }
        cfg
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    pub fn with_max_schedules(mut self, max: u64) -> Self {
        self.max_schedules = max;
        self
    }

    pub fn with_replay(mut self, schedule: Vec<usize>) -> Self {
        self.replay = Some(schedule);
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// What went wrong under some schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Unordered conflicting accesses to a [`crate::cell::PlainCell`].
    Race,
    /// No enabled thread (or a runaway schedule hit the step budget).
    Deadlock,
    /// User code panicked (assertion failure inside the body counts).
    Panic,
}

/// A failing schedule: what happened, the full step trace, and the
/// decision sequence to replay it (`AMNESIA_MODEL_REPLAY`).
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub desc: String,
    /// Chosen thread id per decision point — the replayable schedule.
    pub schedule: Vec<usize>,
    /// One line per step: `step / thread / operation`.
    pub trace: Vec<String>,
    /// Weak-edge (relaxed observation) hints involving the failing
    /// threads — the signature of a missing Acquire/Release pair.
    pub hints: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            FailureKind::Race => "data race",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Panic => "panic",
        };
        writeln!(f, "model failure [{kind}]: {}", self.desc)?;
        for h in &self.hints {
            writeln!(f, "  {h}")?;
        }
        writeln!(f, "  schedule trace:")?;
        for t in &self.trace {
            writeln!(f, "    {t}")?;
        }
        let sched: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
        writeln!(f, "  replay with: AMNESIA_MODEL_REPLAY={}", sched.join(","))
    }
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct schedules executed (distinct by DFS construction).
    pub schedules: u64,
    /// True if the DFS exhausted the bounded schedule space; false if
    /// it stopped at `max_schedules` or on a failure.
    pub complete: bool,
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic with the full failure report if any schedule failed.
    #[track_caller]
    pub fn assert_clean(&self) -> &Self {
        if let Some(f) = &self.failure {
            panic!("{f}");
        }
        self
    }

    /// Panic if *no* schedule failed (true-positive gates), returning
    /// the failure otherwise.
    #[track_caller]
    pub fn expect_failure(&self) -> &Failure {
        match &self.failure {
            Some(f) => f,
            None => panic!(
                "expected the model checker to flag a failure, but {} schedules ran clean",
                self.schedules
            ),
        }
    }
}

/// SplitMix64: the crate is dependency-free, so the seed mixer is
/// inlined here (same constants as the reference implementation).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static HOOK: Once = Once::new();

/// Install (once, process-wide) a panic hook that keeps the scheduler's
/// own teardown panics out of test output; real panics still print via
/// the previous hook.
fn install_silent_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<sched::AbortToken>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Explore interleavings of `body` with env-driven configuration.
pub fn explore_default<F: Fn() + Sync>(body: F) -> Report {
    explore(ModelConfig::from_env(), body)
}

/// Run `body` under every schedule the bounded DFS generates (or the
/// one pinned schedule in replay mode) and report the outcome. The body
/// must be deterministic apart from scheduling: it is re-executed once
/// per schedule, and prefix replay relies on the enabled sets matching.
pub fn explore<F: Fn() + Sync>(cfg: ModelConfig, body: F) -> Report {
    install_silent_hook();
    let mut stack: Vec<ChoicePoint> = Vec::new();
    let mut forced_len = 0usize;
    let mut schedules = 0u64;
    loop {
        let sched = Arc::new(Sched::new(
            cfg.clone(),
            std::mem::take(&mut stack),
            forced_len,
        ));
        run_one(&sched, &body);
        schedules += 1;
        let (stack_back, failure) = sched.take_results();
        stack = stack_back;
        if let Some(f) = failure {
            return Report {
                schedules,
                complete: false,
                failure: Some(f),
            };
        }
        if cfg.replay.is_some() {
            // Replay pins a single schedule; nothing to backtrack.
            return Report {
                schedules,
                complete: true,
                failure: None,
            };
        }
        if schedules >= cfg.max_schedules {
            return Report {
                schedules,
                complete: false,
                failure: None,
            };
        }
        match next_point(&mut stack, &cfg) {
            Some(k) => {
                stack.truncate(k + 1);
                forced_len = k + 1;
            }
            None => {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                };
            }
        }
    }
}

/// One run: the body becomes model thread 0 on its own OS thread while
/// the controller drives grants from this thread.
fn run_one<F: Fn() + Sync>(sched: &Arc<Sched>, body: &F) {
    sched.register_root();
    std::thread::scope(|s| {
        let sc = Arc::clone(sched);
        s.spawn(move || {
            crate::ctx::set(Some(crate::ctx::Ctx {
                sched: Arc::clone(&sc),
                tid: 0,
            }));
            sc.thread_start(0);
            let r = catch_unwind(AssertUnwindSafe(body));
            crate::ctx::set(None);
            sc.thread_exit(0, r.err());
        });
        sched.controller();
    });
}

/// Deepest decision point with an untried, preemption-feasible
/// backtrack candidate; updates its `chosen`/`done` in place.
fn next_point(stack: &mut Vec<ChoicePoint>, cfg: &ModelConfig) -> Option<usize> {
    loop {
        let k = stack.len().checked_sub(1)?;
        let cp = stack.last_mut().expect("non-empty stack");
        let mut cands: Vec<usize> = Vec::new();
        for &c in cp.backtrack.difference(&cp.done) {
            let preempt = cp.prev.is_some_and(|p| p != c && cp.enabled.contains(&p));
            if preempt && cp.preemptions_before >= cfg.preemption_bound {
                continue;
            }
            cands.push(c);
        }
        // Everything untried is either picked now or permanently
        // infeasible under the bound; mark it done either way so the
        // DFS can't revisit it.
        let untried: Vec<usize> = cp.backtrack.difference(&cp.done).copied().collect();
        for c in untried {
            if !cands.contains(&c) {
                cp.done.insert(c);
            }
        }
        if cands.is_empty() {
            stack.pop();
            continue;
        }
        cands.sort_unstable();
        let idx = (splitmix64(cfg.seed ^ (k as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)) as usize)
            % cands.len();
        let c = cands[idx];
        cp.done.insert(c);
        cp.chosen = c;
        return Some(k);
    }
}
