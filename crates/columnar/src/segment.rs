//! Segmented column: frozen compressed blocks + a mutable tail.
//!
//! A production amnesia store would not keep every column as a flat
//! `Vec<i64>`: cold history compresses extremely well, which directly
//! postpones forgetting (paper §4.4). `SegmentedColumn` freezes full
//! blocks with the best codec ([`EncodedBlock::encode_auto`]) while the
//! newest rows stay mutable and uncompressed.

use serde::{Deserialize, Serialize};

use crate::compress::{EncodedBlock, Encoding};
use crate::types::{Value, DEFAULT_BLOCK_ROWS};

/// A column of frozen compressed segments plus an uncompressed tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentedColumn {
    block_rows: usize,
    /// `None` = per-block automatic codec choice; `Some` pins one codec
    /// (codec ablations and codec-targeted equivalence tests).
    encoding: Option<Encoding>,
    frozen: Vec<EncodedBlock>,
    tail: Vec<Value>,
}

impl SegmentedColumn {
    /// New column with the default block size.
    pub fn new() -> Self {
        Self::with_block_rows(DEFAULT_BLOCK_ROWS)
    }

    /// New column with a custom block size (rows per frozen segment).
    pub fn with_block_rows(block_rows: usize) -> Self {
        assert!(block_rows > 0, "block size must be positive");
        Self {
            block_rows,
            encoding: None,
            frozen: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// New column that freezes every block with one pinned codec instead
    /// of the automatic chooser.
    pub fn with_encoding(block_rows: usize, encoding: Encoding) -> Self {
        let mut c = Self::with_block_rows(block_rows);
        c.encoding = Some(encoding);
        c
    }

    /// Append one value, freezing a block when the tail fills up.
    pub fn push(&mut self, v: Value) {
        self.tail.push(v);
        if self.tail.len() == self.block_rows {
            let block = match self.encoding {
                Some(e) => EncodedBlock::encode(&self.tail, e),
                None => EncodedBlock::encode_auto(&self.tail),
            };
            self.frozen.push(block);
            self.tail.clear();
        }
    }

    /// Append many values.
    pub fn extend_from_slice(&mut self, vs: &[Value]) {
        for &v in vs {
            self.push(v);
        }
    }

    /// Build a column from a value slice with the default block size.
    pub fn from_values(vs: &[Value]) -> Self {
        let mut c = Self::new();
        c.extend_from_slice(vs);
        c
    }

    /// Rows per block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// First physical row of `block`.
    pub fn block_start(&self, block: usize) -> usize {
        block * self.block_rows
    }

    /// The frozen compressed block at `block`, or `None` for the tail
    /// block. This is the entry point for fused compressed scans: pair
    /// each frozen block with its activity-word slice and call
    /// [`EncodedBlock::filter_range_masks`].
    pub fn frozen_block(&self, block: usize) -> Option<&EncodedBlock> {
        self.frozen.get(block)
    }

    /// The mutable uncompressed tail (rows past the last frozen block).
    pub fn tail_values(&self) -> &[Value] {
        &self.tail
    }

    /// Total number of rows.
    pub fn len(&self) -> usize {
        self.frozen.len() * self.block_rows + self.tail.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of frozen (compressed) segments.
    pub fn frozen_segments(&self) -> usize {
        self.frozen.len()
    }

    /// Value at a row. Point access takes the owning codec's `value_at`
    /// fast path (RLE run walk, delta prefix walk, direct dict/FOR
    /// unpack) instead of decoding the whole block — a single frozen read
    /// costs O(runs-or-1), not O(block rows) plus an allocation.
    pub fn get(&self, row: usize) -> Value {
        let block = row / self.block_rows;
        if block < self.frozen.len() {
            self.frozen[block].value_at(row % self.block_rows)
        } else {
            self.tail[row - self.frozen.len() * self.block_rows]
        }
    }

    /// Decode all values of one block (the tail counts as the last block).
    pub fn block_values(&self, block: usize) -> Vec<Value> {
        if block < self.frozen.len() {
            self.frozen[block].decode()
        } else {
            assert_eq!(block, self.frozen.len(), "block {block} out of range");
            self.tail.clone()
        }
    }

    /// Number of blocks including the (possibly empty) tail block.
    pub fn num_blocks(&self) -> usize {
        self.frozen.len() + usize::from(!self.tail.is_empty())
    }

    /// Iterate over all values in order (block-at-a-time decoding).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.num_blocks()).flat_map(move |b| self.block_values(b).into_iter())
    }

    /// Compressed bytes currently used (frozen payloads + tail).
    pub fn compressed_bytes(&self) -> usize {
        self.frozen
            .iter()
            .map(EncodedBlock::compressed_bytes)
            .sum::<usize>()
            + self.tail.len() * std::mem::size_of::<Value>()
    }

    /// Bytes a plain `Vec<i64>` of the same length would use.
    pub fn plain_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<Value>()
    }

    /// Overall compression ratio (plain / compressed; ≥ 1 is a win).
    pub fn compression_ratio(&self) -> f64 {
        let c = self.compressed_bytes();
        if c == 0 {
            1.0
        } else {
            self.plain_bytes() as f64 / c as f64
        }
    }
}

impl Default for SegmentedColumn {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_freezes_full_blocks() {
        let mut c = SegmentedColumn::with_block_rows(4);
        c.extend_from_slice(&[1, 2, 3]);
        assert_eq!(c.frozen_segments(), 0);
        c.push(4);
        assert_eq!(c.frozen_segments(), 1);
        c.push(5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(3), 4);
        assert_eq!(c.get(4), 5);
    }

    #[test]
    fn iter_reconstructs_sequence() {
        let mut c = SegmentedColumn::with_block_rows(16);
        let values: Vec<i64> = (0..100).map(|i| i * 3 - 50).collect();
        c.extend_from_slice(&values);
        let got: Vec<i64> = c.iter().collect();
        assert_eq!(got, values);
    }

    #[test]
    fn serial_data_compresses() {
        let mut c = SegmentedColumn::with_block_rows(1024);
        c.extend_from_slice(&(0..10_240).collect::<Vec<i64>>());
        assert!(
            c.compression_ratio() > 3.0,
            "ratio {}",
            c.compression_ratio()
        );
    }

    #[test]
    fn block_values_cover_tail() {
        let mut c = SegmentedColumn::with_block_rows(4);
        c.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(c.num_blocks(), 2);
        assert_eq!(c.block_values(0), vec![1, 2, 3, 4]);
        assert_eq!(c.block_values(1), vec![5, 6]);
    }

    #[test]
    fn empty_column() {
        let c = SegmentedColumn::new();
        assert!(c.is_empty());
        assert_eq!(c.num_blocks(), 0);
        assert_eq!(c.compression_ratio(), 1.0);
    }

    #[test]
    fn block_granular_access() {
        let values: Vec<i64> = (0..2500).collect();
        let c = SegmentedColumn::from_values(&values);
        assert_eq!(c.block_rows(), DEFAULT_BLOCK_ROWS);
        assert_eq!(c.frozen_segments(), 2);
        assert_eq!(c.block_start(1), DEFAULT_BLOCK_ROWS);
        let b0 = c.frozen_block(0).unwrap();
        assert_eq!(b0.len(), DEFAULT_BLOCK_ROWS);
        assert_eq!(b0.decode(), values[..DEFAULT_BLOCK_ROWS].to_vec());
        assert!(c.frozen_block(2).is_none(), "tail is not frozen");
        assert_eq!(c.tail_values(), &values[2 * DEFAULT_BLOCK_ROWS..]);
    }
}
