//! The amnesiac table: columns + activity + epochs + access stats.

use std::borrow::Cow;

use amnesia_util::{storage_err, Error, Result, SimRng};
use serde::{Deserialize, Serialize};

use crate::access::AccessStats;
use crate::activity::ActivityMap;
use crate::column::Column;
use crate::compress::Encoding;
use crate::schema::Schema;
use crate::tier::TieredColumn;
use crate::types::{Epoch, RowId, Value, DEFAULT_BLOCK_ROWS};

/// A columnar table whose tuples can be *forgotten*.
///
/// Forgetting here means marking inactive (the simulator's measurable
/// notion, paper §2.1); what *physically* happens to forgotten tuples
/// (deletion, cold storage, summaries, index eviction) is decided by the
/// layers above, which this crate also provides.
///
/// Storage is *tiered* (see [`crate::tier`]): each column keeps its old
/// full blocks compressed in place behind a hot uncompressed tail.
/// Freshly built tables are fully hot; [`Table::freeze_upto`] moves the
/// cold prefix into its compressed resting state, and
/// [`Table::drop_forgotten_blocks`] / [`Table::recompress_frozen`] are
/// the block-granular amnesia transitions layered on top.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    activity: ActivityMap,
    insert_epoch: Vec<Epoch>,
    access: AccessStats,
    current_epoch: Epoch,
    block_rows: usize,
}

impl Table {
    /// Empty table with the given schema and the default tier block size.
    pub fn new(schema: Schema) -> Self {
        Self::with_block_rows(schema, DEFAULT_BLOCK_ROWS)
    }

    /// Empty table with a custom tier block size (rows per frozen block;
    /// must be a positive multiple of 64 so blocks tile activity words).
    pub fn with_block_rows(schema: Schema, block_rows: usize) -> Self {
        let arity = schema.arity();
        Self {
            schema,
            columns: (0..arity)
                .map(|_| Column::with_block_rows(block_rows))
                .collect(),
            activity: ActivityMap::new(),
            insert_epoch: Vec::new(),
            access: AccessStats::new(),
            current_epoch: 0,
            block_rows,
        }
    }

    /// Empty single-attribute table (the paper's setting).
    pub fn single(name: impl Into<String>) -> Self {
        Self::new(Schema::single(name))
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Check that one row could be inserted (schema arity match) without
    /// mutating anything. Write-ahead callers validate with this *before*
    /// logging, so a rejected call never leaves a durable record whose
    /// replay would fail.
    pub fn validate_insert(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(storage_err!(
                "row arity {} does not match schema arity {}",
                values.len(),
                self.schema.arity()
            ));
        }
        Ok(())
    }

    /// Check that a single-column batch insert is legal (arity 1) without
    /// mutating anything — the write-ahead twin of [`Table::insert_batch`].
    pub fn validate_insert_batch(&self) -> Result<()> {
        if self.schema.arity() != 1 {
            return Err(storage_err!(
                "insert_batch requires a single-column table (arity {})",
                self.schema.arity()
            ));
        }
        Ok(())
    }

    /// Check that `row` is forgettable (in range) without mutating
    /// anything — the write-ahead twin of [`Table::forget`].
    pub fn validate_forget(&self, row: RowId) -> Result<()> {
        if row.as_usize() >= self.num_rows() {
            return Err(storage_err!("row {row} out of range"));
        }
        Ok(())
    }

    /// Insert one row (`values` must match the schema arity). Returns the
    /// new row id.
    pub fn insert(&mut self, values: &[Value], epoch: Epoch) -> Result<RowId> {
        self.validate_insert(values)?;
        let id = RowId::from(self.num_rows());
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        self.activity.push_active(1);
        self.insert_epoch.push(epoch);
        self.access.push_rows(1);
        self.current_epoch = self.current_epoch.max(epoch);
        Ok(id)
    }

    /// Insert a batch of single-column values (convenience for the
    /// simulator's one-attribute tables). Returns the id of the first row.
    pub fn insert_batch(&mut self, values: &[Value], epoch: Epoch) -> Result<RowId> {
        self.validate_insert_batch()?;
        let first = RowId::from(self.num_rows());
        self.columns[0].extend_from_slice(values);
        self.activity.push_active(values.len());
        self.insert_epoch
            .resize(self.insert_epoch.len() + values.len(), epoch);
        self.access.push_rows(values.len());
        self.current_epoch = self.current_epoch.max(epoch);
        Ok(first)
    }

    /// Mark a row forgotten at `epoch`. Errors if the id is out of range;
    /// forgetting an already-forgotten row is a no-op returning `false`.
    /// First-time forgets propagate to the tier layer so frozen-block
    /// metadata (active counts) stays exact.
    pub fn forget(&mut self, row: RowId, epoch: Epoch) -> Result<bool> {
        self.validate_forget(row)?;
        let first = self.activity.forget(row, epoch);
        if first {
            for c in &mut self.columns {
                c.tier_mut().note_forget(row.as_usize());
            }
        }
        Ok(first)
    }

    /// Value of `col` at `row` (whether or not the row is active).
    #[inline]
    pub fn value(&self, col: usize, row: RowId) -> Value {
        self.columns[col].get(row.as_usize())
    }

    /// Full row as a vector of values.
    pub fn row_values(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row.as_usize())).collect()
    }

    /// The column at index `col`.
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// Contiguous values of `col` in physical row order, including rows
    /// that have been forgotten — the batch kernels' flat fast path,
    /// paired with [`Table::activity_words`].
    ///
    /// Only available while the column is fully hot; once blocks are
    /// frozen there is no contiguous slice, and this *panics* so an
    /// unmigrated flat caller fails loudly. Tier-aware consumers use
    /// [`Table::col_tier`]; whole-column materializers use
    /// [`Table::col_values_dense`].
    #[inline]
    pub fn col_values(&self, col: usize) -> &[Value] {
        self.columns[col].values()
    }

    /// The tiered representation of `col`: frozen compressed blocks with
    /// cached per-block metadata, then the hot tail. This is the entry
    /// point for the engine's tier-aware kernels.
    #[inline]
    pub fn col_tier(&self, col: usize) -> &TieredColumn {
        self.columns[col].tier()
    }

    /// The whole column in physical row order: borrowed while fully hot,
    /// decoded into an owned buffer when blocks are frozen. For consumers
    /// (joins, index builds, ground-truth scoring) that genuinely need
    /// every value materialized.
    pub fn col_values_dense(&self, col: usize) -> Cow<'_, [Value]> {
        self.columns[col].dense_values()
    }

    /// True when any column holds frozen blocks (all columns freeze in
    /// lockstep, so checking the first suffices).
    pub fn has_frozen(&self) -> bool {
        self.columns
            .first()
            .is_some_and(|c| !c.tier().is_fully_hot())
    }

    /// Rows per tier block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Pin (or unpin) the freeze codec of one column — the codec-ablation
    /// and equivalence-test hook; production tables use the automatic
    /// per-block chooser.
    pub fn pin_encoding(&mut self, col: usize, encoding: Option<Encoding>) {
        self.columns[col].tier_mut().pin_encoding(encoding);
    }

    /// Freeze every column's full blocks below `row` (rounded down to a
    /// block boundary): the cold prefix moves into its compressed resting
    /// state with per-block min/max/active metadata cached from the
    /// current activity map. Returns the number of blocks frozen (per
    /// column — all columns freeze in lockstep).
    pub fn freeze_upto(&mut self, row: usize) -> usize {
        let words = self.activity.words().to_vec();
        let mut frozen = 0;
        for c in &mut self.columns {
            frozen = c.tier_mut().freeze_upto(row, &words);
        }
        frozen
    }

    /// Thaw frozen blocks `b..` of every column back into hot storage
    /// (suffix-granular — see
    /// [`TieredColumn::thaw_block`](crate::tier::TieredColumn::thaw_block)).
    /// Returns the rows thawed.
    pub fn thaw_block(&mut self, b: usize) -> usize {
        let mut thawed = 0;
        for c in &mut self.columns {
            thawed = c.tier_mut().thaw_block(b);
        }
        thawed
    }

    /// Drop the payload of every fully-forgotten frozen block — the most
    /// radical tier transition: forgetting a whole block reclaims its
    /// bytes while row ids stay stable. Returns `(blocks dropped, bytes
    /// reclaimed)`.
    pub fn drop_forgotten_blocks(&mut self) -> (usize, usize) {
        let mut blocks = 0;
        let mut bytes = 0;
        let nb = self.frozen_blocks();
        for b in 0..nb {
            if self.columns[0].tier().meta(b).active != 0 {
                continue;
            }
            let mut dropped_any = false;
            for c in &mut self.columns {
                let freed = c.tier_mut().drop_block(b);
                if freed > 0 {
                    dropped_any = true;
                }
                bytes += freed;
            }
            if dropped_any {
                blocks += 1;
            }
        }
        (blocks, bytes)
    }

    /// Recompress frozen blocks whose active fraction fell to
    /// `max_active_fraction` or below: forgotten rows squash onto active
    /// neighbours, codecs re-run, meta bounds tighten. Returns `(blocks
    /// recompressed, bytes saved)`.
    pub fn recompress_frozen(&mut self, max_active_fraction: f64) -> (usize, usize) {
        let words = self.activity.words().to_vec();
        let mut blocks = 0;
        let mut bytes = 0;
        let nb = self.frozen_blocks();
        for b in 0..nb {
            let meta = *self.columns[0].tier().meta(b);
            if self.columns[0]
                .tier()
                .frozen(b)
                .is_some_and(|f| f.is_dropped())
            {
                continue;
            }
            if meta.active as f64 > max_active_fraction * self.block_rows as f64 {
                continue;
            }
            let mut saved_any = false;
            for c in &mut self.columns {
                let saved = c.tier_mut().recompress_block(b, &words);
                if saved > 0 {
                    saved_any = true;
                }
                bytes += saved;
            }
            if saved_any {
                blocks += 1;
            }
        }
        (blocks, bytes)
    }

    /// Number of frozen blocks (identical across columns).
    pub fn frozen_blocks(&self) -> usize {
        self.columns.first().map_or(0, |c| c.tier().frozen_blocks())
    }

    /// Compressed bytes currently held by frozen blocks, summed over
    /// columns.
    pub fn bytes_frozen(&self) -> usize {
        self.columns.iter().map(|c| c.tier().bytes_frozen()).sum()
    }

    /// Rows living in dropped blocks (identical across columns — blocks
    /// drop in lockstep). These row ids still exist but their values were
    /// surrendered; they are excluded from [`Table::compression_ratio`]
    /// so amnesia savings never masquerade as codec savings.
    pub fn dropped_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.tier().dropped_rows())
    }

    /// Flat bytes of *surviving* rows / resident bytes over all columns
    /// (≥ 1 means tiering is saving memory). Dropped blocks' rows are
    /// excluded from the numerator — see
    /// [`TieredColumn::compression_ratio`](crate::tier::TieredColumn::compression_ratio).
    pub fn compression_ratio(&self) -> f64 {
        let surviving: usize = self
            .columns
            .iter()
            .map(|c| (c.tier().len() - c.tier().dropped_rows()) * std::mem::size_of::<Value>())
            .sum();
        let resident: usize = self.columns.iter().map(|c| c.tier().memory_bytes()).sum();
        if resident == 0 || surviving == 0 {
            1.0
        } else {
            surviving as f64 / resident as f64
        }
    }

    /// Total frozen-block accesses (blocks that survived pruning and were
    /// actually scanned or probed) summed over every column — the
    /// feedback signal for recency-driven freezing and estimator
    /// calibration. See
    /// [`TieredColumn::note_block_access`](crate::tier::TieredColumn::note_block_access).
    pub fn block_accesses(&self) -> u64 {
        self.columns
            .iter()
            .map(|c| c.tier().total_block_accesses())
            .sum()
    }

    /// The packed active-row words (see
    /// [`ActivityMap::words`](crate::activity::ActivityMap::words)).
    #[inline]
    pub fn activity_words(&self) -> &[u64] {
        self.activity.words()
    }

    /// Values of `col` for one `block_rows`-sized block (the last block
    /// may be short). Block-granular access pairs with
    /// [`ZoneMap`](crate::zonemap::ZoneMap) pruning so scans touch only
    /// surviving blocks. Flat-path only: panics once blocks are frozen
    /// (use [`Table::col_tier`] then).
    #[inline]
    pub fn col_block_values(&self, col: usize, block: usize, block_rows: usize) -> &[Value] {
        let values = self.columns[col].values();
        let lo = (block * block_rows).min(values.len());
        let hi = (lo + block_rows).min(values.len());
        &values[lo..hi]
    }

    /// Freeze a compressed *snapshot* of `col`: full blocks are encoded
    /// with the best codec, the remainder stays as an uncompressed tail.
    /// Unlike [`Table::freeze_upto`] — which changes the column's resting
    /// state in place — this copy is owned by the caller (point-in-time
    /// exports, the compressed-kernel benches).
    pub fn compress_column(&self, col: usize) -> crate::segment::SegmentedColumn {
        crate::segment::SegmentedColumn::from_values(&self.columns[col].dense_values())
    }

    /// Reassemble a table from restored parts (snapshot reader): the
    /// tiers install as-is — no dense materialization, no throwaway hot
    /// columns — and the activity map is built directly from the
    /// persisted forget list rather than routed through [`Table::forget`]
    /// (the tiers' block metadata already reflects those forgets, so
    /// `note_forget` must not run again). Column stats restore separately
    /// via [`Table::restore_col_stats`].
    pub fn from_restored_parts(
        schema: Schema,
        block_rows: usize,
        tiers: Vec<TieredColumn>,
        insert_epoch: Vec<Epoch>,
        forgotten: &[(RowId, Epoch)],
    ) -> Result<Self> {
        if tiers.len() != schema.arity() {
            return Err(storage_err!(
                "{} tiers for a schema of arity {}",
                tiers.len(),
                schema.arity()
            ));
        }
        let n = insert_epoch.len();
        let mut activity = ActivityMap::new();
        activity.push_active(n);
        for &(row, epoch) in forgotten {
            if row.as_usize() >= n {
                return Err(storage_err!("forgotten row {row} out of range"));
            }
            activity.forget(row, epoch);
        }
        let mut access = AccessStats::new();
        access.push_rows(n);
        let current_epoch = insert_epoch.iter().copied().max().unwrap_or(0);
        let mut table = Self {
            schema,
            columns: Vec::with_capacity(tiers.len()),
            activity,
            insert_epoch,
            access,
            current_epoch,
            block_rows,
        };
        for (c, tier) in tiers.into_iter().enumerate() {
            if tier.len() != n {
                return Err(storage_err!(
                    "tier for column {c} holds {} rows, expected {n}",
                    tier.len()
                ));
            }
            let mut col = Column::with_block_rows(block_rows);
            col.install_tier(tier);
            table.columns.push(col);
        }
        Ok(table)
    }

    /// Install a restored tiered column (snapshot reader). The tier must
    /// hold exactly as many rows as the table.
    pub fn install_tier(&mut self, col: usize, tier: TieredColumn) -> Result<()> {
        if tier.len() != self.num_rows() {
            return Err(storage_err!(
                "tier for column {col} holds {} rows, expected {}",
                tier.len(),
                self.num_rows()
            ));
        }
        self.columns[col].install_tier(tier);
        Ok(())
    }

    /// Restore one column's historical min/max (snapshot reader; dropped
    /// blocks lose their values so stats cannot be recomputed).
    pub fn restore_col_stats(&mut self, col: usize, min: Option<Value>, max: Option<Value>) {
        self.columns[col].restore_stats(min, max);
    }

    /// Total physical rows (active + forgotten).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of active rows — the storage budget the paper holds at
    /// `DBSIZE`.
    pub fn active_rows(&self) -> usize {
        self.activity.active_count()
    }

    /// Number of forgotten rows.
    pub fn forgotten_rows(&self) -> usize {
        self.activity.forgotten_count()
    }

    /// The activity map.
    pub fn activity(&self) -> &ActivityMap {
        &self.activity
    }

    /// Access statistics (frequency / recency per tuple).
    pub fn access(&self) -> &AccessStats {
        &self.access
    }

    /// Mutable access statistics (the executor touches result rows).
    pub fn access_mut(&mut self) -> &mut AccessStats {
        &mut self.access
    }

    /// Insertion epoch of a row.
    #[inline]
    pub fn insert_epoch(&self, row: RowId) -> Epoch {
        self.insert_epoch[row.as_usize()]
    }

    /// All insertion epochs (physical order).
    pub fn insert_epochs(&self) -> &[Epoch] {
        &self.insert_epoch
    }

    /// Highest epoch observed on insert.
    pub fn current_epoch(&self) -> Epoch {
        self.current_epoch
    }

    /// Iterate over active row ids in insertion order.
    pub fn iter_active(&self) -> impl Iterator<Item = RowId> + '_ {
        self.activity.iter_active()
    }

    /// Collect the active row ids.
    pub fn active_row_ids(&self) -> Vec<RowId> {
        self.iter_active().collect()
    }

    /// Uniformly random active row.
    pub fn random_active(&self, rng: &mut SimRng) -> Option<RowId> {
        self.activity.random_active(rng)
    }

    /// Largest value seen in `col` since table creation (the paper's
    /// `RANGE` bound for query generation).
    pub fn max_seen(&self, col: usize) -> Option<Value> {
        self.columns[col].max_seen()
    }

    /// Smallest value seen in `col`.
    pub fn min_seen(&self, col: usize) -> Option<Value> {
        self.columns[col].min_seen()
    }

    /// True *resident* heap bytes: compressed frozen blocks + hot tails +
    /// per-block metadata + marking + stats. Frozen columns report their
    /// compressed size, not the flat size they replaced — this is the
    /// number the budget- and cost-based layers must see for compression
    /// to actually postpone forgetting (paper §4.4).
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum::<usize>()
            + self.activity.memory_bytes()
            + self.access.memory_bytes()
            + self.insert_epoch.capacity() * std::mem::size_of::<Epoch>()
    }

    /// Validate internal consistency (lengths agree); used by tests and
    /// debug assertions in the simulator.
    pub fn check_invariants(&self) -> Result<()> {
        let n = self.num_rows();
        for (i, c) in self.columns.iter().enumerate() {
            if c.len() != n {
                return Err(Error::Storage(format!(
                    "column {i} has {} rows, expected {n}",
                    c.len()
                )));
            }
        }
        if self.activity.len() != n {
            return Err(storage_err!(
                "activity map covers {} rows, expected {n}",
                self.activity.len()
            ));
        }
        if self.insert_epoch.len() != n {
            return Err(storage_err!(
                "epoch vector covers {} rows, expected {n}",
                self.insert_epoch.len()
            ));
        }
        if self.access.len() != n {
            return Err(storage_err!(
                "access stats cover {} rows, expected {n}",
                self.access.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(values: &[Value]) -> Table {
        let mut t = Table::single("a");
        t.insert_batch(values, 0).unwrap();
        t
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = Table::new(Schema::new(vec!["a", "b"]));
        let r0 = t.insert(&[1, 10], 0).unwrap();
        let r1 = t.insert(&[2, 20], 1).unwrap();
        assert_eq!(r0, RowId(0));
        assert_eq!(r1, RowId(1));
        assert_eq!(t.value(0, r1), 2);
        assert_eq!(t.value(1, r1), 20);
        assert_eq!(t.row_values(r0), vec![1, 10]);
        assert_eq!(t.insert_epoch(r1), 1);
        assert_eq!(t.current_epoch(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(Schema::new(vec!["a", "b"]));
        assert!(t.insert(&[1], 0).is_err());
        let mut t1 = Table::single("a");
        t1.insert_batch(&[1, 2], 0).unwrap();
        let mut t2 = Table::new(Schema::new(vec!["a", "b"]));
        assert!(t2.insert_batch(&[1, 2], 0).is_err());
    }

    #[test]
    fn forget_changes_counts_not_storage() {
        let mut t = table_with(&[10, 20, 30]);
        assert_eq!(t.active_rows(), 3);
        assert!(t.forget(RowId(1), 1).unwrap());
        assert_eq!(t.active_rows(), 2);
        assert_eq!(t.forgotten_rows(), 1);
        assert_eq!(t.num_rows(), 3, "physical rows unchanged");
        // The value is still there: only marked.
        assert_eq!(t.value(0, RowId(1)), 20);
        // Double forget is a no-op.
        assert!(!t.forget(RowId(1), 2).unwrap());
        // Out of range errors.
        assert!(t.forget(RowId(99), 1).is_err());
    }

    #[test]
    fn batch_insert_sets_epochs() {
        let mut t = Table::single("a");
        t.insert_batch(&[1, 2], 0).unwrap();
        let first = t.insert_batch(&[3, 4, 5], 7).unwrap();
        assert_eq!(first, RowId(2));
        assert_eq!(t.insert_epoch(RowId(0)), 0);
        assert_eq!(t.insert_epoch(RowId(4)), 7);
        assert_eq!(t.current_epoch(), 7);
        assert_eq!(t.num_rows(), 5);
        t.check_invariants().unwrap();
    }

    #[test]
    fn max_seen_includes_forgotten() {
        let mut t = table_with(&[5, 100, 7]);
        t.forget(RowId(1), 1).unwrap();
        assert_eq!(t.max_seen(0), Some(100), "RANGE covers forgotten values");
    }

    #[test]
    fn iter_active_skips_forgotten() {
        let mut t = table_with(&[1, 2, 3, 4]);
        t.forget(RowId(0), 1).unwrap();
        t.forget(RowId(2), 1).unwrap();
        assert_eq!(t.active_row_ids(), vec![RowId(1), RowId(3)]);
    }

    #[test]
    fn block_access_and_compressed_snapshot() {
        let values: Vec<Value> = (0..1500).map(|i| i * 2).collect();
        let t = table_with(&values);
        assert_eq!(t.col_block_values(0, 0, 1024), &values[..1024]);
        assert_eq!(t.col_block_values(0, 1, 1024), &values[1024..]);
        assert!(t.col_block_values(0, 5, 1024).is_empty());
        let seg = t.compress_column(0);
        assert_eq!(seg.len(), values.len());
        assert_eq!(seg.frozen_segments(), 1);
        let got: Vec<Value> = seg.iter().collect();
        assert_eq!(got, values);
    }

    #[test]
    fn freeze_reduces_resident_bytes_and_preserves_reads() {
        let values: Vec<Value> = (0..10_000).collect();
        let mut t = table_with(&values);
        let flat_bytes = t.memory_bytes();
        assert!(!t.has_frozen());
        let frozen = t.freeze_upto(t.num_rows());
        assert_eq!(frozen, 9, "9 full blocks of 1024");
        assert!(t.has_frozen());
        assert!(t.bytes_frozen() > 0);
        // Table-level bytes include activity/epoch/access bookkeeping;
        // the column payload itself shrinks by an order of magnitude.
        assert!(
            t.memory_bytes() < flat_bytes,
            "tiered {} vs flat {flat_bytes}",
            t.memory_bytes()
        );
        assert!(t.compression_ratio() > 2.0);
        // Point reads go through the codec fast paths.
        for r in [0usize, 63, 64, 1023, 1024, 5000, 9999] {
            assert_eq!(t.value(0, RowId::from(r)), r as i64, "row {r}");
        }
        assert_eq!(t.col_values_dense(0).as_ref(), &values[..]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn block_drop_and_recompress_lifecycle() {
        // Block 1 alternates a hot constant with serial noise: forgetting
        // the noisy rows lets recompression collapse it to one long run.
        let values: Vec<Value> = (0..4096)
            .map(|i| {
                if (1024..2048).contains(&i) && i % 2 == 0 {
                    7
                } else {
                    i
                }
            })
            .collect();
        let mut t = table_with(&values);
        t.freeze_upto(4096);
        assert_eq!(t.frozen_blocks(), 4);
        // Fully forget block 0, forget the noisy half of block 1.
        for r in 0..1024u64 {
            t.forget(RowId(r), 1).unwrap();
        }
        for r in (1025..2048u64).step_by(2) {
            t.forget(RowId(r), 1).unwrap();
        }
        let before = t.bytes_frozen();
        let (dropped, freed) = t.drop_forgotten_blocks();
        assert_eq!(dropped, 1);
        assert!(freed > 0);
        let (recompressed, saved) = t.recompress_frozen(0.5);
        assert_eq!(recompressed, 1, "only the half-forgotten block");
        assert!(saved > 0, "a constant run must shrink the payload");
        assert!(t.bytes_frozen() < before);
        // Active rows still answer exactly.
        assert_eq!(t.value(0, RowId(1026)), 7);
        assert_eq!(t.value(0, RowId(3000)), 3000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn thaw_returns_rows_to_hot() {
        let mut t = table_with(&(0..3000).collect::<Vec<Value>>());
        t.freeze_upto(3000);
        assert_eq!(t.frozen_blocks(), 2);
        let thawed = t.thaw_block(1);
        assert_eq!(thawed, 1024);
        assert_eq!(t.frozen_blocks(), 1);
        assert_eq!(t.col_values_dense(0).as_ref().len(), 3000);
        assert_eq!(t.value(0, RowId(2999)), 2999);
        t.check_invariants().unwrap();
    }

    #[test]
    fn custom_block_rows_tables() {
        let mut t = Table::with_block_rows(Schema::single("a"), 64);
        t.insert_batch(&(0..200).collect::<Vec<Value>>(), 0)
            .unwrap();
        assert_eq!(t.block_rows(), 64);
        t.freeze_upto(200);
        assert_eq!(t.frozen_blocks(), 3);
        assert_eq!(t.value(0, RowId(100)), 100);
    }

    #[test]
    fn access_stats_flow_through() {
        let mut t = table_with(&[1, 2, 3]);
        t.access_mut().touch_all(&[RowId(0), RowId(2)], 3);
        assert_eq!(t.access().frequency(RowId(0)), 1.0);
        assert_eq!(t.access().frequency(RowId(1)), 0.0);
        assert_eq!(t.access().last_access(RowId(2)), 3);
    }
}
