//! The amnesiac table: columns + activity + epochs + access stats.

use amnesia_util::{storage_err, Error, Result, SimRng};
use serde::{Deserialize, Serialize};

use crate::access::AccessStats;
use crate::activity::ActivityMap;
use crate::column::Column;
use crate::schema::Schema;
use crate::types::{Epoch, RowId, Value};

/// A columnar table whose tuples can be *forgotten*.
///
/// Forgetting here means marking inactive (the simulator's measurable
/// notion, paper §2.1); what *physically* happens to forgotten tuples
/// (deletion, cold storage, summaries, index eviction) is decided by the
/// layers above, which this crate also provides.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    activity: ActivityMap,
    insert_epoch: Vec<Epoch>,
    access: AccessStats,
    current_epoch: Epoch,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Self {
            schema,
            columns: (0..arity).map(|_| Column::new()).collect(),
            activity: ActivityMap::new(),
            insert_epoch: Vec::new(),
            access: AccessStats::new(),
            current_epoch: 0,
        }
    }

    /// Empty single-attribute table (the paper's setting).
    pub fn single(name: impl Into<String>) -> Self {
        Self::new(Schema::single(name))
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert one row (`values` must match the schema arity). Returns the
    /// new row id.
    pub fn insert(&mut self, values: &[Value], epoch: Epoch) -> Result<RowId> {
        if values.len() != self.schema.arity() {
            return Err(storage_err!(
                "row arity {} does not match schema arity {}",
                values.len(),
                self.schema.arity()
            ));
        }
        let id = RowId::from(self.num_rows());
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        self.activity.push_active(1);
        self.insert_epoch.push(epoch);
        self.access.push_rows(1);
        self.current_epoch = self.current_epoch.max(epoch);
        Ok(id)
    }

    /// Insert a batch of single-column values (convenience for the
    /// simulator's one-attribute tables). Returns the id of the first row.
    pub fn insert_batch(&mut self, values: &[Value], epoch: Epoch) -> Result<RowId> {
        if self.schema.arity() != 1 {
            return Err(storage_err!(
                "insert_batch requires a single-column table (arity {})",
                self.schema.arity()
            ));
        }
        let first = RowId::from(self.num_rows());
        self.columns[0].extend_from_slice(values);
        self.activity.push_active(values.len());
        self.insert_epoch
            .resize(self.insert_epoch.len() + values.len(), epoch);
        self.access.push_rows(values.len());
        self.current_epoch = self.current_epoch.max(epoch);
        Ok(first)
    }

    /// Mark a row forgotten at `epoch`. Errors if the id is out of range;
    /// forgetting an already-forgotten row is a no-op returning `false`.
    pub fn forget(&mut self, row: RowId, epoch: Epoch) -> Result<bool> {
        if row.as_usize() >= self.num_rows() {
            return Err(storage_err!("row {row} out of range"));
        }
        Ok(self.activity.forget(row, epoch))
    }

    /// Value of `col` at `row` (whether or not the row is active).
    #[inline]
    pub fn value(&self, col: usize, row: RowId) -> Value {
        self.columns[col].get(row.as_usize())
    }

    /// Full row as a vector of values.
    pub fn row_values(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row.as_usize())).collect()
    }

    /// The column at index `col`.
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// Contiguous values of `col` in physical row order, including rows
    /// that have been forgotten. This is the batch-kernel entry point:
    /// pair it with [`Table::activity_words`] to scan word-at-a-time.
    #[inline]
    pub fn col_values(&self, col: usize) -> &[Value] {
        self.columns[col].values()
    }

    /// The packed active-row words (see
    /// [`ActivityMap::words`](crate::activity::ActivityMap::words)).
    #[inline]
    pub fn activity_words(&self) -> &[u64] {
        self.activity.words()
    }

    /// Values of `col` for one `block_rows`-sized block (the last block
    /// may be short). Block-granular access pairs with
    /// [`ZoneMap`](crate::zonemap::ZoneMap) pruning so scans touch only
    /// surviving blocks.
    #[inline]
    pub fn col_block_values(&self, col: usize, block: usize, block_rows: usize) -> &[Value] {
        let values = self.columns[col].values();
        let lo = (block * block_rows).min(values.len());
        let hi = (lo + block_rows).min(values.len());
        &values[lo..hi]
    }

    /// Freeze a compressed snapshot of `col`: full blocks are encoded
    /// with the best codec, the remainder stays as an uncompressed tail.
    /// This is the cold representation the fused compressed-scan kernels
    /// run on — compression postpones forgetting (paper §4.4) only
    /// because those kernels keep it scannable at batch speed.
    pub fn compress_column(&self, col: usize) -> crate::segment::SegmentedColumn {
        crate::segment::SegmentedColumn::from_values(self.columns[col].values())
    }

    /// Total physical rows (active + forgotten).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of active rows — the storage budget the paper holds at
    /// `DBSIZE`.
    pub fn active_rows(&self) -> usize {
        self.activity.active_count()
    }

    /// Number of forgotten rows.
    pub fn forgotten_rows(&self) -> usize {
        self.activity.forgotten_count()
    }

    /// The activity map.
    pub fn activity(&self) -> &ActivityMap {
        &self.activity
    }

    /// Access statistics (frequency / recency per tuple).
    pub fn access(&self) -> &AccessStats {
        &self.access
    }

    /// Mutable access statistics (the executor touches result rows).
    pub fn access_mut(&mut self) -> &mut AccessStats {
        &mut self.access
    }

    /// Insertion epoch of a row.
    #[inline]
    pub fn insert_epoch(&self, row: RowId) -> Epoch {
        self.insert_epoch[row.as_usize()]
    }

    /// All insertion epochs (physical order).
    pub fn insert_epochs(&self) -> &[Epoch] {
        &self.insert_epoch
    }

    /// Highest epoch observed on insert.
    pub fn current_epoch(&self) -> Epoch {
        self.current_epoch
    }

    /// Iterate over active row ids in insertion order.
    pub fn iter_active(&self) -> impl Iterator<Item = RowId> + '_ {
        self.activity.iter_active()
    }

    /// Collect the active row ids.
    pub fn active_row_ids(&self) -> Vec<RowId> {
        self.iter_active().collect()
    }

    /// Uniformly random active row.
    pub fn random_active(&self, rng: &mut SimRng) -> Option<RowId> {
        self.activity.random_active(rng)
    }

    /// Mark a row forgotten without epoch bookkeeping (tests/tools).
    pub fn activity_mut(&mut self) -> &mut ActivityMap {
        &mut self.activity
    }

    /// Largest value seen in `col` since table creation (the paper's
    /// `RANGE` bound for query generation).
    pub fn max_seen(&self, col: usize) -> Option<Value> {
        self.columns[col].max_seen()
    }

    /// Smallest value seen in `col`.
    pub fn min_seen(&self, col: usize) -> Option<Value> {
        self.columns[col].min_seen()
    }

    /// Approximate heap footprint in bytes (columns + marking + stats).
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum::<usize>()
            + self.activity.memory_bytes()
            + self.access.memory_bytes()
            + self.insert_epoch.capacity() * std::mem::size_of::<Epoch>()
    }

    /// Validate internal consistency (lengths agree); used by tests and
    /// debug assertions in the simulator.
    pub fn check_invariants(&self) -> Result<()> {
        let n = self.num_rows();
        for (i, c) in self.columns.iter().enumerate() {
            if c.len() != n {
                return Err(Error::Storage(format!(
                    "column {i} has {} rows, expected {n}",
                    c.len()
                )));
            }
        }
        if self.activity.len() != n {
            return Err(storage_err!(
                "activity map covers {} rows, expected {n}",
                self.activity.len()
            ));
        }
        if self.insert_epoch.len() != n {
            return Err(storage_err!(
                "epoch vector covers {} rows, expected {n}",
                self.insert_epoch.len()
            ));
        }
        if self.access.len() != n {
            return Err(storage_err!(
                "access stats cover {} rows, expected {n}",
                self.access.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(values: &[Value]) -> Table {
        let mut t = Table::single("a");
        t.insert_batch(values, 0).unwrap();
        t
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = Table::new(Schema::new(vec!["a", "b"]));
        let r0 = t.insert(&[1, 10], 0).unwrap();
        let r1 = t.insert(&[2, 20], 1).unwrap();
        assert_eq!(r0, RowId(0));
        assert_eq!(r1, RowId(1));
        assert_eq!(t.value(0, r1), 2);
        assert_eq!(t.value(1, r1), 20);
        assert_eq!(t.row_values(r0), vec![1, 10]);
        assert_eq!(t.insert_epoch(r1), 1);
        assert_eq!(t.current_epoch(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(Schema::new(vec!["a", "b"]));
        assert!(t.insert(&[1], 0).is_err());
        let mut t1 = Table::single("a");
        t1.insert_batch(&[1, 2], 0).unwrap();
        let mut t2 = Table::new(Schema::new(vec!["a", "b"]));
        assert!(t2.insert_batch(&[1, 2], 0).is_err());
    }

    #[test]
    fn forget_changes_counts_not_storage() {
        let mut t = table_with(&[10, 20, 30]);
        assert_eq!(t.active_rows(), 3);
        assert!(t.forget(RowId(1), 1).unwrap());
        assert_eq!(t.active_rows(), 2);
        assert_eq!(t.forgotten_rows(), 1);
        assert_eq!(t.num_rows(), 3, "physical rows unchanged");
        // The value is still there: only marked.
        assert_eq!(t.value(0, RowId(1)), 20);
        // Double forget is a no-op.
        assert!(!t.forget(RowId(1), 2).unwrap());
        // Out of range errors.
        assert!(t.forget(RowId(99), 1).is_err());
    }

    #[test]
    fn batch_insert_sets_epochs() {
        let mut t = Table::single("a");
        t.insert_batch(&[1, 2], 0).unwrap();
        let first = t.insert_batch(&[3, 4, 5], 7).unwrap();
        assert_eq!(first, RowId(2));
        assert_eq!(t.insert_epoch(RowId(0)), 0);
        assert_eq!(t.insert_epoch(RowId(4)), 7);
        assert_eq!(t.current_epoch(), 7);
        assert_eq!(t.num_rows(), 5);
        t.check_invariants().unwrap();
    }

    #[test]
    fn max_seen_includes_forgotten() {
        let mut t = table_with(&[5, 100, 7]);
        t.forget(RowId(1), 1).unwrap();
        assert_eq!(t.max_seen(0), Some(100), "RANGE covers forgotten values");
    }

    #[test]
    fn iter_active_skips_forgotten() {
        let mut t = table_with(&[1, 2, 3, 4]);
        t.forget(RowId(0), 1).unwrap();
        t.forget(RowId(2), 1).unwrap();
        assert_eq!(t.active_row_ids(), vec![RowId(1), RowId(3)]);
    }

    #[test]
    fn block_access_and_compressed_snapshot() {
        let values: Vec<Value> = (0..1500).map(|i| i * 2).collect();
        let t = table_with(&values);
        assert_eq!(t.col_block_values(0, 0, 1024), &values[..1024]);
        assert_eq!(t.col_block_values(0, 1, 1024), &values[1024..]);
        assert!(t.col_block_values(0, 5, 1024).is_empty());
        let seg = t.compress_column(0);
        assert_eq!(seg.len(), values.len());
        assert_eq!(seg.frozen_segments(), 1);
        let got: Vec<Value> = seg.iter().collect();
        assert_eq!(got, values);
    }

    #[test]
    fn access_stats_flow_through() {
        let mut t = table_with(&[1, 2, 3]);
        t.access_mut().touch_all(&[RowId(0), RowId(2)], 3);
        assert_eq!(t.access().frequency(RowId(0)), 1.0);
        assert_eq!(t.access().frequency(RowId(1)), 0.0);
        assert_eq!(t.access().last_access(RowId(2)), 3);
    }
}
