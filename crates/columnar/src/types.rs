//! Fundamental identifiers and value types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Attribute values are 64-bit integers; the paper's simulator "only
/// considers tables filled with integers in the range 0..DOMAIN" (§2.1).
pub type Value = i64;

/// Update-batch counter. Epoch 0 is the initial load; epoch *b* is the
/// b-th update batch. Tuple age in batches = `current_epoch - insert_epoch`.
pub type Epoch = u64;

/// Stable identifier of a tuple: its insertion position in the table.
///
/// Row ids are never reused; physical vacuuming produces a remapping table
/// instead of renumbering in place, so policy state referring to old ids
/// can be migrated explicitly.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RowId(pub u64);

impl RowId {
    /// The row id as a usize offset into column storage.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<usize> for RowId {
    fn from(v: usize) -> Self {
        RowId(v as u64)
    }
}

/// Default number of rows per storage block used by zone maps and the
/// segmented column. Chosen so a block of `i64`s spans a few cache pages.
pub const DEFAULT_BLOCK_ROWS: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowid_roundtrip_and_display() {
        let r = RowId::from(42usize);
        assert_eq!(r.as_usize(), 42);
        assert_eq!(r.to_string(), "#42");
        assert_eq!(r, RowId(42));
    }

    #[test]
    fn rowid_orders_by_insertion() {
        assert!(RowId(1) < RowId(2));
        let mut v = vec![RowId(3), RowId(1), RowId(2)];
        v.sort();
        assert_eq!(v, vec![RowId(1), RowId(2), RowId(3)]);
    }
}
