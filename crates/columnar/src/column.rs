//! Append-only integer column.

use amnesia_util::MinMax;
use serde::{Deserialize, Serialize};

use crate::types::Value;

/// An append-only column of `i64` values with running min/max statistics.
///
/// Deletion never happens here: the amnesia design keeps tuples physically
/// present and marks them inactive (paper §2.1); physical removal is the
/// job of [`crate::vacuum`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Column {
    values: Vec<Value>,
    stats: MinMax,
}

impl Column {
    /// Empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty column with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            values: Vec::with_capacity(cap),
            stats: MinMax::new(),
        }
    }

    /// Append one value.
    #[inline]
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
        self.stats.push(v);
    }

    /// Append many values.
    pub fn extend_from_slice(&mut self, vs: &[Value]) {
        self.values.extend_from_slice(vs);
        for &v in vs {
            self.stats.push(v);
        }
    }

    /// Value at a physical position. Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        self.values[row]
    }

    /// All values (including those belonging to forgotten tuples).
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of physical rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Minimum value ever appended (forgotten or not).
    pub fn min_seen(&self) -> Option<Value> {
        self.stats.min()
    }

    /// Maximum value ever appended (forgotten or not).
    ///
    /// This is the `RANGE` bound the paper's query generator uses: "RANGE
    /// is in the range 0 to the maximum value seen up to the latest update
    /// batch" (§4.2).
    pub fn max_seen(&self) -> Option<Value> {
        self.stats.max()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<Value>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut c = Column::new();
        c.push(5);
        c.push(-3);
        c.extend_from_slice(&[10, 0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(0), 5);
        assert_eq!(c.get(1), -3);
        assert_eq!(c.values(), &[5, -3, 10, 0]);
    }

    #[test]
    fn min_max_track_history() {
        let mut c = Column::with_capacity(8);
        assert_eq!(c.min_seen(), None);
        c.extend_from_slice(&[7, 2, 9]);
        assert_eq!(c.min_seen(), Some(2));
        assert_eq!(c.max_seen(), Some(9));
        // min/max never shrink, even conceptually after forgetting.
        c.push(100);
        assert_eq!(c.max_seen(), Some(100));
    }

    #[test]
    fn empty_checks() {
        let c = Column::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.memory_bytes() >= std::mem::size_of::<Column>());
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        let c = Column::new();
        let _ = c.get(0);
    }
}
