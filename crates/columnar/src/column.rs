//! Append-only integer column over tiered storage.

use std::borrow::Cow;

use amnesia_util::MinMax;
use serde::{Deserialize, Serialize};

use crate::tier::TieredColumn;
use crate::types::Value;

/// An append-only column of `i64` values with running min/max statistics.
///
/// Since the tiered-storage refactor the values live in a
/// [`TieredColumn`]: cold full blocks compressed in place behind a hot
/// uncompressed tail. A freshly built column is fully hot and behaves
/// exactly like the flat `Vec<Value>` it used to be; freezing is an
/// explicit transition driven by the table (see
/// [`crate::table::Table::freeze_upto`]).
///
/// Deletion never happens here: the amnesia design keeps tuples
/// physically present and marks them inactive (paper §2.1); physical
/// removal is the job of [`crate::vacuum`] and of the tier layer's
/// block drops.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Column {
    tier: TieredColumn,
    stats: MinMax,
}

impl Column {
    /// Empty column with the default block size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty column with reserved hot-tail capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut c = Self::default();
        c.tier.reserve(cap);
        c
    }

    /// Empty column with a custom tier block size (must be a positive
    /// multiple of 64 rows).
    pub fn with_block_rows(block_rows: usize) -> Self {
        Self {
            tier: TieredColumn::with_block_rows(block_rows),
            stats: MinMax::new(),
        }
    }

    /// Append one value.
    #[inline]
    pub fn push(&mut self, v: Value) {
        self.tier.push(v);
        self.stats.push(v);
    }

    /// Append many values.
    pub fn extend_from_slice(&mut self, vs: &[Value]) {
        self.tier.extend_from_slice(vs);
        for &v in vs {
            self.stats.push(v);
        }
    }

    /// Value at a physical position. Hot rows are array indexing; frozen
    /// rows take the owning codec's `value_at` fast path (no block
    /// decode). Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        self.tier.value_at(row)
    }

    /// All values as one flat slice — the batch kernels' fast path.
    ///
    /// Only possible while the column is fully hot; once blocks are
    /// frozen there is no contiguous slice to hand out, and every caller
    /// must either go tier-aware ([`Self::tier`]) or materialize
    /// ([`Self::dense_values`]). Panics if anything is frozen, so an
    /// unmigrated flat-path caller fails loudly instead of scanning
    /// stale data.
    #[inline]
    pub fn values(&self) -> &[Value] {
        assert!(
            self.tier.is_fully_hot(),
            "flat value access on a column with {} frozen blocks; \
             use tier() or dense_values()",
            self.tier.frozen_blocks()
        );
        self.tier.hot_values()
    }

    /// The tiered representation (frozen blocks + hot tail).
    pub fn tier(&self) -> &TieredColumn {
        &self.tier
    }

    /// Mutable tiered representation (freeze/thaw/drop/recompress).
    pub fn tier_mut(&mut self) -> &mut TieredColumn {
        &mut self.tier
    }

    /// Replace the tiered representation wholesale (snapshot restore).
    /// The caller vouches the rows match; stats are restored separately
    /// via [`Self::restore_stats`].
    pub fn install_tier(&mut self, tier: TieredColumn) {
        self.tier = tier;
    }

    /// Restore the historical min/max statistics (snapshot restore —
    /// dropped blocks lose their values, so stats cannot be recomputed).
    pub fn restore_stats(&mut self, min: Option<Value>, max: Option<Value>) {
        let mut stats = MinMax::new();
        if let Some(m) = min {
            stats.push(m);
        }
        if let Some(m) = max {
            stats.push(m);
        }
        self.stats = stats;
    }

    /// The whole column in physical row order: borrowed while fully hot,
    /// decoded into an owned buffer once blocks are frozen.
    pub fn dense_values(&self) -> Cow<'_, [Value]> {
        if self.tier.is_fully_hot() {
            Cow::Borrowed(self.tier.hot_values())
        } else {
            Cow::Owned(self.tier.dense_values())
        }
    }

    /// Number of physical rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.tier.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.tier.is_empty()
    }

    /// Minimum value ever appended (forgotten or not).
    pub fn min_seen(&self) -> Option<Value> {
        self.stats.min()
    }

    /// Maximum value ever appended (forgotten or not).
    ///
    /// This is the `RANGE` bound the paper's query generator uses: "RANGE
    /// is in the range 0 to the maximum value seen up to the latest update
    /// batch" (§4.2).
    pub fn max_seen(&self) -> Option<Value> {
        self.stats.max()
    }

    /// Approximate resident heap bytes: compressed frozen payloads +
    /// per-block metadata + hot-tail capacity. This is what shrinks when
    /// cold segments freeze — the number budget- and cost-based policies
    /// watch.
    pub fn memory_bytes(&self) -> usize {
        self.tier.memory_bytes() + std::mem::size_of::<MinMax>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut c = Column::new();
        c.push(5);
        c.push(-3);
        c.extend_from_slice(&[10, 0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(0), 5);
        assert_eq!(c.get(1), -3);
        assert_eq!(c.values(), &[5, -3, 10, 0]);
        assert_eq!(c.dense_values().as_ref(), &[5, -3, 10, 0]);
    }

    #[test]
    fn min_max_track_history() {
        let mut c = Column::with_capacity(8);
        assert_eq!(c.min_seen(), None);
        c.extend_from_slice(&[7, 2, 9]);
        assert_eq!(c.min_seen(), Some(2));
        assert_eq!(c.max_seen(), Some(9));
        // min/max never shrink, even conceptually after forgetting.
        c.push(100);
        assert_eq!(c.max_seen(), Some(100));
    }

    #[test]
    fn empty_checks() {
        let c = Column::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.memory_bytes() >= std::mem::size_of::<Column>());
    }

    #[test]
    fn frozen_column_reads_through_tiers() {
        let mut c = Column::with_block_rows(64);
        let values: Vec<i64> = (0..150).collect();
        c.extend_from_slice(&values);
        let words = vec![!0u64; 3];
        c.tier_mut().freeze_upto(150, &words);
        assert_eq!(c.tier().frozen_blocks(), 2);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v, "row {i}");
        }
        assert_eq!(c.dense_values().as_ref(), &values[..]);
        assert_eq!(c.max_seen(), Some(149), "stats survive freezing");
    }

    #[test]
    #[should_panic]
    fn flat_access_on_frozen_column_panics() {
        let mut c = Column::with_block_rows(64);
        c.extend_from_slice(&(0..64).collect::<Vec<i64>>());
        c.tier_mut().freeze_upto(64, &[!0u64]);
        let _ = c.values();
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        let c = Column::new();
        let _ = c.get(0);
    }
}
