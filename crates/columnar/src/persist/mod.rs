//! Durability for amnesiac tables: snapshots, write-ahead logging, and
//! crash recovery.
//!
//! The paper keeps forgetting reversible only through operator action:
//! "data is forgotten and will never show up in query results, unless the
//! user takes the action and recover a backup version of the database
//! from cold storage explicitly" (§5). This module is that backup path —
//! a [`snapshot`] is the recoverable "backup version", the [`wal`] keeps
//! the tail of history since the last snapshot, and [`PersistentTable`]
//! glues them into an open/insert/forget/checkpoint/recover lifecycle.
//!
//! Recovery is prefix-consistent: a torn or bit-flipped WAL tail loses
//! only the unacknowledged suffix, never the checkpointed state.

pub mod reader;
pub mod snapshot;
pub mod wal;

use std::path::{Path, PathBuf};

use amnesia_util::Result;

use crate::schema::Schema;
use crate::table::Table;
use crate::types::{Epoch, RowId, Value};

pub use wal::{replay, ReplayOutcome, Wal, WalRecord};

/// Snapshot file name inside a table directory.
pub const SNAPSHOT_FILE: &str = "table.snap";
/// WAL file name inside a table directory.
pub const WAL_FILE: &str = "table.wal";

/// A [`Table`] with a durable home directory.
///
/// Writes go to the in-memory table and the WAL; [`checkpoint`]
/// (snapshot + WAL truncation) bounds replay time. [`PersistentTable::open`]
/// recovers snapshot + WAL tail after a crash.
///
/// [`checkpoint`]: PersistentTable::checkpoint
#[derive(Debug)]
pub struct PersistentTable {
    table: Table,
    wal: Wal,
    dir: PathBuf,
    recovered_clean: bool,
    records_since_checkpoint: u64,
}

impl PersistentTable {
    /// Create a fresh durable table in `dir` (created if missing). An
    /// initial empty snapshot is written immediately so that `open` on a
    /// crashed-before-first-checkpoint directory still finds the schema.
    pub fn create(dir: impl Into<PathBuf>, schema: Schema) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let table = Table::new(schema);
        snapshot::save(&table, &dir.join(SNAPSHOT_FILE))?;
        // A fresh table starts with an empty log.
        let wal_path = dir.join(WAL_FILE);
        let _ = std::fs::remove_file(&wal_path);
        let wal = Wal::open(&wal_path)?;
        Ok(Self {
            table,
            wal,
            dir,
            recovered_clean: true,
            records_since_checkpoint: 0,
        })
    }

    /// Open an existing durable table: load the snapshot, replay the WAL
    /// tail. A damaged tail is trimmed (prefix recovery), after which the
    /// log is reopened at the trimmed length.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let mut table = snapshot::load(&dir.join(SNAPSHOT_FILE))?;
        let wal_path = dir.join(WAL_FILE);
        let outcome = replay(&wal_path)?;
        for rec in &outcome.records {
            match rec {
                WalRecord::Insert { epoch, rows } => {
                    for row in rows {
                        table.insert(row, *epoch)?;
                    }
                }
                WalRecord::Forget { epoch, row } => {
                    table.forget(*row, *epoch)?;
                }
            }
        }
        if !outcome.clean {
            // Drop the damaged suffix so future appends extend the valid
            // prefix instead of interleaving with garbage.
            let bytes = std::fs::read(&wal_path).unwrap_or_default();
            std::fs::write(&wal_path, &bytes[..outcome.valid_bytes as usize])?;
        }
        let records = outcome.records.len() as u64;
        let wal = Wal::open(&wal_path)?;
        Ok(Self {
            table,
            wal,
            dir,
            recovered_clean: outcome.clean,
            records_since_checkpoint: records,
        })
    }

    /// The in-memory table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Did the last `open` find an undamaged log?
    pub fn recovered_clean(&self) -> bool {
        self.recovered_clean
    }

    /// WAL records applied since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// Insert one row durably (logged, then applied).
    pub fn insert(&mut self, values: &[Value], epoch: Epoch) -> Result<RowId> {
        self.wal.append(&WalRecord::Insert {
            epoch,
            rows: vec![values.to_vec()],
        })?;
        self.records_since_checkpoint += 1;
        self.table.insert(values, epoch)
    }

    /// Insert a batch of single-column values durably.
    pub fn insert_batch(&mut self, values: &[Value], epoch: Epoch) -> Result<RowId> {
        self.wal.append(&WalRecord::Insert {
            epoch,
            rows: values.iter().map(|&v| vec![v]).collect(),
        })?;
        self.records_since_checkpoint += 1;
        self.table.insert_batch(values, epoch)
    }

    /// Forget one row durably.
    pub fn forget(&mut self, row: RowId, epoch: Epoch) -> Result<bool> {
        self.wal.append(&WalRecord::Forget { epoch, row })?;
        self.records_since_checkpoint += 1;
        self.table.forget(row, epoch)
    }

    /// Make everything appended so far durable.
    pub fn sync(&self) -> Result<()> {
        self.wal.sync()
    }

    /// Write a snapshot and truncate the WAL. Replay after a crash now
    /// starts from this state.
    pub fn checkpoint(&mut self) -> Result<()> {
        snapshot::save(&self.table, &self.dir.join(SNAPSHOT_FILE))?;
        self.wal.truncate()?;
        self.records_since_checkpoint = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amn-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn drive(pt: &mut PersistentTable) {
        pt.insert_batch(&(0..100).collect::<Vec<i64>>(), 0).unwrap();
        for r in (0..50u64).step_by(3) {
            pt.forget(RowId(r), 1).unwrap();
        }
        pt.insert_batch(&(100..150).collect::<Vec<i64>>(), 2)
            .unwrap();
        pt.sync().unwrap();
    }

    #[test]
    fn create_write_reopen_equals_live_state() {
        let dir = tmp_dir("reopen");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        drive(&mut pt);
        let live_active = pt.table().active_rows();
        let live_rows = pt.table().num_rows();
        drop(pt);

        let reopened = PersistentTable::open(&dir).unwrap();
        assert!(reopened.recovered_clean());
        assert_eq!(reopened.table().num_rows(), live_rows);
        assert_eq!(reopened.table().active_rows(), live_active);
        assert_eq!(reopened.table().value(0, RowId(120)), 120);
        assert_eq!(reopened.table().insert_epoch(RowId(120)), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_bounds_the_log() {
        let dir = tmp_dir("checkpoint");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        drive(&mut pt);
        assert!(pt.records_since_checkpoint() > 0);
        pt.checkpoint().unwrap();
        assert_eq!(pt.records_since_checkpoint(), 0);
        assert_eq!(pt.wal.len_bytes().unwrap(), 0);
        // Post-checkpoint writes land in the fresh log and recover.
        pt.insert(&[999], 3).unwrap();
        pt.sync().unwrap();
        drop(pt);
        let reopened = PersistentTable::open(&dir).unwrap();
        assert_eq!(reopened.records_since_checkpoint(), 1);
        let last = RowId::from(reopened.table().num_rows() - 1);
        assert_eq!(reopened.table().value(0, last), 999);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_with_torn_tail_recovers_prefix() {
        let dir = tmp_dir("torn");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        pt.insert_batch(&(0..10).collect::<Vec<i64>>(), 0).unwrap();
        pt.forget(RowId(3), 1).unwrap();
        pt.sync().unwrap();
        drop(pt);
        // Simulate a crash mid-append: chop bytes off the log tail.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

        let reopened = PersistentTable::open(&dir).unwrap();
        assert!(!reopened.recovered_clean());
        // The forget record was the torn one: inserts survive, the
        // unacknowledged forget is gone.
        assert_eq!(reopened.table().num_rows(), 10);
        assert_eq!(reopened.table().active_rows(), 10);
        // The trimmed log accepts new appends and recovers them.
        let mut reopened = reopened;
        reopened.forget(RowId(5), 2).unwrap();
        reopened.sync().unwrap();
        drop(reopened);
        let again = PersistentTable::open(&dir).unwrap();
        assert!(again.recovered_clean());
        assert_eq!(again.table().active_rows(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_column_rows_survive_recovery() {
        let dir = tmp_dir("multicol");
        let mut pt = PersistentTable::create(&dir, Schema::new(vec!["k", "v"])).unwrap();
        pt.insert(&[1, 100], 0).unwrap();
        pt.insert(&[2, 200], 0).unwrap();
        pt.forget(RowId(0), 1).unwrap();
        pt.checkpoint().unwrap();
        pt.insert(&[3, 300], 2).unwrap();
        pt.sync().unwrap();
        drop(pt);
        let pt = PersistentTable::open(&dir).unwrap();
        assert_eq!(pt.table().row_values(RowId(2)), vec![3, 300]);
        assert!(!pt.table().activity().is_active(RowId(0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_without_directory_errors() {
        assert!(PersistentTable::open(tmp_dir("missing")).is_err());
    }
}
