//! Crash-consistent durability for amnesiac tables: segmented compressed
//! WAL, snapshots, tier-transition logging, and physical shredding.
//!
//! The paper keeps forgetting reversible only through operator action:
//! "data is forgotten and will never show up in query results, unless the
//! user takes the action and recover a backup version of the database
//! from cold storage explicitly" (§5). That contract has two durable
//! halves. A [`snapshot`] is the recoverable "backup version" and the
//! [`segment`]ed log keeps the tail of history since the last snapshot —
//! including the tier transitions, so recovery lands on the *exact*
//! pre-crash layout. And once a drop is checkpointed, the shredder
//! destroys the segments that still held the forgotten values' bytes:
//! amnesia is physical, not just logical.
//!
//! # Segment lifecycle
//!
//! ```text
//!           append                    rotate (size threshold)
//!   record ────────▶ active segment ─────────────▶ sealed segment
//!                        │                              │
//!                        │ checkpoint                   │ checkpoint:
//!                        │ (snapshot commit)            │   covered? ──▶ unlink
//!                        ▼                              │ drop+shred:
//!                   keeps appending                     │   covered? ──▶ zero,
//!                   (covered prefix is                  │       fsync, unlink
//!                    skipped at replay)                 ▼
//! ```
//!
//! # Recovery
//!
//! [`PersistentTable::open`] walks this state machine:
//!
//! ```text
//!        ┌────────────────┐  version < 3 + table.wal   ┌───────────────┐
//!        │ load snapshot   │ ─────────────────────────▶ │ legacy replay │
//!        │ (+RecoveryMeta) │                            │ + checkpoint  │
//!        └───────┬────────┘                            │ + unlink .wal │
//!                │ v3: snapshot covers seqno ≤ S        └───────────────┘
//!                ▼
//!        ┌────────────────┐  per segment, index order
//!        │ scan segments   │──▶ dead header ─▶ unlink (shred/create died)
//!        │                 │──▶ torn tail ──▶ truncate in place at the
//!        │                 │                  last valid frame
//!        │                 │──▶ seqno gap ──▶ stop; unlink the rest
//!        └───────┬────────┘
//!                ▼
//!        ┌────────────────┐
//!        │ apply records   │  skip seqno ≤ S; inserts/forgets mutate rows,
//!        │ with seqno > S  │  Freeze/DropBlocks/Recompress replay the
//!        └────────────────┘  tier transitions parameter-for-parameter
//! ```
//!
//! Recovery is prefix-consistent: a torn or bit-flipped tail loses only
//! the unacknowledged suffix, never checkpointed state, and a record is
//! never applied unless every record before it was.
//!
//! # Durability policies
//!
//! "Acknowledged" means different things under different [`SyncPolicy`]s:
//! per-record (every append fsyncs before returning), per-batch (a
//! [`DurabilityHook::commit`] / [`PersistentTable::sync`] fsyncs the
//! batch), or manual. Crash tests in `tests/persistence.rs` enforce each
//! policy's contract under scripted fault injection ([`fault::FaultVfs`]).
//!
//! The crash matrix has a static twin: `amnesia-lint` bans `unwrap`/
//! `expect`/`panic!` throughout this module tree, so corrupt on-disk
//! bytes surface as `Err` on every path, not just the ones a fault
//! schedule happens to hit (rules and waiver syntax: `CONTRIBUTING.md`
//! at the repo root).

pub mod fault;
pub mod reader;
pub mod segment;
pub mod snapshot;
pub mod vfs;
pub mod wal;

use std::path::{Path, PathBuf};

use amnesia_util::Result;

use crate::schema::Schema;
use crate::table::Table;
use crate::types::{Epoch, RowId, Value};

pub use fault::{Fault, FaultKind, FaultVfs};
pub use segment::{recover_segments, SegmentedWal, WalStats, DEFAULT_SEGMENT_BYTES};
pub use snapshot::RecoveryMeta;
pub use vfs::{SharedVfs, StdVfs, Vfs, VfsFile};
pub use wal::{replay, ReplayOutcome, Wal, WalRecord};

use snapshot as snap;

/// Snapshot file name inside a table directory.
pub const SNAPSHOT_FILE: &str = "table.snap";
/// Pre-segment (monolithic) WAL file name; found only in directories
/// written before the segmented log, and migrated away on first open.
pub const LEGACY_WAL_FILE: &str = "table.wal";

/// When appended records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync inside every logging call: once `insert`/`forget` returns,
    /// the record survives any crash. The strongest and slowest option.
    #[default]
    PerRecord,
    /// fsync at batch boundaries ([`DurabilityHook::commit`] /
    /// [`PersistentTable::sync`]): a crash mid-batch may lose the whole
    /// unsynced batch, never a synced one.
    PerBatch,
    /// The caller owns [`PersistentTable::sync`]; nothing is implied.
    Manual,
}

/// The seam through which a table owner (the core store, or
/// [`PersistentTable`] itself) reaches the durability layer.
///
/// Logging calls append to the WAL *before* the in-memory mutation is
/// applied (write-ahead) — so the owner must validate the operation
/// against the table first (`Table::validate_insert` /
/// `validate_insert_batch` / `validate_forget`): a record that reaches
/// the log must always apply, both now and at replay, or a single
/// rejected call would leave a durable record that bricks every future
/// recovery. `checkpoint` and `shred` take the table by reference
/// because the hook does not own it.
pub trait DurabilityHook: std::fmt::Debug + Send {
    /// Log a batch of row inserts.
    fn log_insert_rows(&mut self, rows: &[Vec<Value>], epoch: Epoch) -> Result<()>;
    /// Log one forget.
    fn log_forget(&mut self, row: RowId, epoch: Epoch) -> Result<()>;
    /// Log a `freeze_upto(upto)` tier transition.
    fn log_freeze(&mut self, upto: usize) -> Result<()>;
    /// Log a `drop_forgotten_blocks()` tier transition.
    fn log_drop_blocks(&mut self) -> Result<()>;
    /// Log a `recompress_frozen(max_active_fraction)` tier transition.
    fn log_recompress(&mut self, max_active_fraction: f64) -> Result<()>;
    /// Report how many blocks the just-applied transitions dropped and
    /// recompressed (keeps cumulative counters recovery-accurate).
    fn note_transition_results(&mut self, blocks_dropped: u64, blocks_recompressed: u64);
    /// Batch boundary: under [`SyncPolicy::PerBatch`] this is the fsync.
    fn commit(&mut self) -> Result<()>;
    /// Snapshot `table` and prune covered segments (unlink only).
    fn checkpoint(&mut self, table: &Table) -> Result<()>;
    /// Snapshot `table`, then physically destroy (zero + fsync + unlink)
    /// every covered segment. Call after a drop so forgotten values'
    /// encoded bytes do not survive in the log.
    fn shred(&mut self, table: &Table) -> Result<()>;
    /// Make everything appended so far durable regardless of policy.
    fn sync(&mut self) -> Result<()>;
    /// Durability counters.
    fn stats(&self) -> WalStats;
}

/// The durability half of a [`PersistentTable`]: segmented WAL, snapshot
/// bookkeeping, sync policy, and cumulative tier counters. Owns no table
/// — the core store attaches one of these to its own table via
/// [`DurabilityHook`].
#[derive(Debug)]
pub struct DurableLog {
    vfs: SharedVfs,
    dir: PathBuf,
    wal: SegmentedWal,
    policy: SyncPolicy,
    /// Seqno covered by the snapshot on disk.
    snap_seqno: u64,
    /// Cumulative tier counters (live; persisted in the snapshot meta).
    blocks_dropped: u64,
    blocks_recompressed: u64,
    last_epoch: u64,
    records_since_checkpoint: u64,
}

impl DurableLog {
    fn append(&mut self, rec: &WalRecord) -> Result<()> {
        self.wal.append(rec, self.last_epoch)?;
        self.records_since_checkpoint += 1;
        if self.policy == SyncPolicy::PerRecord {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Change the sync policy (affects subsequent appends).
    pub fn set_policy(&mut self, policy: SyncPolicy) {
        self.policy = policy;
    }

    /// Cumulative frozen blocks dropped (survives checkpoints/restarts).
    pub fn blocks_dropped(&self) -> u64 {
        self.blocks_dropped
    }

    /// Cumulative frozen blocks recompressed.
    pub fn blocks_recompressed(&self) -> u64 {
        self.blocks_recompressed
    }

    /// Records logged since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    fn meta(&self, through_seqno: u64) -> RecoveryMeta {
        RecoveryMeta {
            last_seqno: through_seqno,
            blocks_dropped: self.blocks_dropped,
            blocks_recompressed: self.blocks_recompressed,
        }
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }
}

impl DurabilityHook for DurableLog {
    fn log_insert_rows(&mut self, rows: &[Vec<Value>], epoch: Epoch) -> Result<()> {
        self.last_epoch = epoch;
        self.append(&WalRecord::Insert {
            epoch,
            rows: rows.to_vec(),
        })
    }

    fn log_forget(&mut self, row: RowId, epoch: Epoch) -> Result<()> {
        self.last_epoch = epoch;
        self.append(&WalRecord::Forget { epoch, row })
    }

    fn log_freeze(&mut self, upto: usize) -> Result<()> {
        self.append(&WalRecord::Freeze { upto })
    }

    fn log_drop_blocks(&mut self) -> Result<()> {
        // The drop must be durable before anything is destroyed: if the
        // shred's snapshot never commits, replay has to redo the drop.
        self.append(&WalRecord::DropBlocks)?;
        if self.policy != SyncPolicy::PerRecord {
            self.wal.sync()?;
        }
        Ok(())
    }

    fn log_recompress(&mut self, max_active_fraction: f64) -> Result<()> {
        self.append(&WalRecord::Recompress {
            max_active_fraction,
        })
    }

    fn note_transition_results(&mut self, blocks_dropped: u64, blocks_recompressed: u64) {
        self.blocks_dropped += blocks_dropped;
        self.blocks_recompressed += blocks_recompressed;
    }

    fn commit(&mut self) -> Result<()> {
        if self.policy == SyncPolicy::PerBatch {
            self.wal.sync()?;
        }
        Ok(())
    }

    fn checkpoint(&mut self, table: &Table) -> Result<()> {
        let through = self.wal.next_seqno() - 1;
        snap::save_with(&*self.vfs, table, self.meta(through), &self.snapshot_path())?;
        // The rename above is the commit point: from here on, replay
        // starts at `through + 1` and the covered segments are redundant.
        self.snap_seqno = through;
        self.wal.note_checkpoint();
        self.wal.prune_covered(through)?;
        self.append(&WalRecord::Checkpoint {
            through_seqno: through,
        })?;
        self.records_since_checkpoint = 0;
        Ok(())
    }

    fn shred(&mut self, table: &Table) -> Result<()> {
        let through = self.wal.next_seqno() - 1;
        snap::save_with(&*self.vfs, table, self.meta(through), &self.snapshot_path())?;
        self.snap_seqno = through;
        self.wal.note_checkpoint();
        // Everything (including the active segment) is covered: destroy
        // the bytes, not just the directory entries.
        self.wal.shred_covered(through)?;
        self.records_since_checkpoint = 0;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    fn stats(&self) -> WalStats {
        self.wal.stats()
    }
}

/// Apply one replayed record to a table. Returns `(blocks_dropped,
/// blocks_recompressed)` increments so recovery can keep the cumulative
/// counters exact.
fn apply_record(table: &mut Table, rec: &WalRecord) -> Result<(u64, u64)> {
    match rec {
        WalRecord::Insert { epoch, rows } => {
            for row in rows {
                table.insert(row, *epoch)?;
            }
        }
        WalRecord::Forget { epoch, row } => {
            table.forget(*row, *epoch)?;
        }
        WalRecord::Freeze { upto } => {
            table.freeze_upto(*upto);
        }
        WalRecord::DropBlocks => {
            let (blocks, _rows) = table.drop_forgotten_blocks();
            return Ok((blocks as u64, 0));
        }
        WalRecord::Recompress {
            max_active_fraction,
        } => {
            let (blocks, _bytes) = table.recompress_frozen(*max_active_fraction);
            return Ok((0, blocks as u64));
        }
        WalRecord::Checkpoint { .. } => {}
    }
    Ok((0, 0))
}

/// A [`Table`] with a durable home directory.
///
/// Writes go to the segmented WAL first, then the in-memory table;
/// [`checkpoint`] (snapshot + segment pruning) bounds replay time, and
/// tier transitions are both logged and — for drops — followed by a
/// physical shred of the covered segments. [`PersistentTable::open`]
/// recovers snapshot + segment tail after a crash (see the module docs
/// for the full state machine).
///
/// [`checkpoint`]: PersistentTable::checkpoint
#[derive(Debug)]
pub struct PersistentTable {
    table: Table,
    log: DurableLog,
    recovered_clean: bool,
}

impl PersistentTable {
    /// Create a fresh durable table in `dir` (created if missing) with
    /// the default backend and [`SyncPolicy::PerRecord`]. An initial
    /// empty snapshot is written immediately so that `open` on a
    /// crashed-before-first-checkpoint directory still finds the schema.
    pub fn create(dir: impl Into<PathBuf>, schema: Schema) -> Result<Self> {
        Self::create_with(StdVfs::shared(), dir, schema, SyncPolicy::PerRecord)
    }

    /// [`create`](PersistentTable::create) with an explicit storage
    /// backend and sync policy.
    pub fn create_with(
        vfs: SharedVfs,
        dir: impl Into<PathBuf>,
        schema: Schema,
        policy: SyncPolicy,
    ) -> Result<Self> {
        Self::create_with_table(vfs, dir, Table::new(schema), policy)
    }

    /// [`create`](PersistentTable::create) around a caller-built table —
    /// e.g. one with a non-default tier block size, or already holding
    /// rows (the initial snapshot covers them; the log starts empty).
    pub fn create_with_table(
        vfs: SharedVfs,
        dir: impl Into<PathBuf>,
        table: Table,
        policy: SyncPolicy,
    ) -> Result<Self> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        // Clear any stale log files from a previous incarnation.
        for path in vfs.list_dir(&dir)? {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == LEGACY_WAL_FILE
                || (name.starts_with(segment::SEGMENT_PREFIX)
                    && name.ends_with(segment::SEGMENT_SUFFIX))
            {
                vfs.remove_file(&path)?;
            }
        }
        snap::save_with(
            &*vfs,
            &table,
            RecoveryMeta::default(),
            &dir.join(SNAPSHOT_FILE),
        )?;
        let wal = SegmentedWal::create(vfs.clone(), &dir, 1)?;
        Ok(Self {
            table,
            log: DurableLog {
                vfs,
                dir,
                wal,
                policy,
                snap_seqno: 0,
                blocks_dropped: 0,
                blocks_recompressed: 0,
                last_epoch: 0,
                records_since_checkpoint: 0,
            },
            recovered_clean: true,
        })
    }

    /// Open an existing durable table with the default backend.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with(StdVfs::shared(), dir)
    }

    /// Open an existing durable table: load the snapshot, repair and
    /// replay the segment tail (or migrate a pre-segment directory).
    pub fn open_with(vfs: SharedVfs, dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let snap_path = dir.join(SNAPSHOT_FILE);
        let snap_bytes = vfs.read(&snap_path)?;
        let version = snap::peek_version(&snap_bytes)?;
        let (mut table, meta) = snap::decode_with_meta(&snap_bytes)?;
        let legacy_path = dir.join(LEGACY_WAL_FILE);

        if version < 3 && vfs.exists(&legacy_path) {
            // Pre-segment directory: replay the monolithic log, then
            // checkpoint into the new layout and drop the old file. A v3
            // snapshot is the "migrated" marker — its rename commits the
            // migration, so a crash before the unlink merely re-runs the
            // (now no-op) cleanup, never re-applies the legacy records.
            let outcome = replay(&legacy_path)?;
            let mut dropped = 0;
            let mut recompressed = 0;
            for rec in &outcome.records {
                let (d, r) = apply_record(&mut table, rec)?;
                dropped += d;
                recompressed += r;
            }
            let wal = SegmentedWal::create(vfs.clone(), &dir, 1)?;
            let log = DurableLog {
                vfs,
                dir,
                wal,
                policy: SyncPolicy::PerRecord,
                snap_seqno: 0,
                blocks_dropped: meta.blocks_dropped + dropped,
                blocks_recompressed: meta.blocks_recompressed + recompressed,
                last_epoch: 0,
                records_since_checkpoint: 0,
            };
            snap::save_with(&*log.vfs, &table, log.meta(0), &log.snapshot_path())?;
            log.vfs.remove_file(&legacy_path)?;
            return Ok(Self {
                table,
                log,
                recovered_clean: outcome.clean,
            });
        }
        if vfs.exists(&legacy_path) {
            // Migration already committed (v3 snapshot) but the cleanup
            // unlink crashed: finish it now.
            vfs.remove_file(&legacy_path)?;
        }

        let recovery = recover_segments(vfs.clone(), &dir, meta.last_seqno, DEFAULT_SEGMENT_BYTES)?;
        let mut dropped = meta.blocks_dropped;
        let mut recompressed = meta.blocks_recompressed;
        let mut applied = 0u64;
        for rec in &recovery.records {
            let (d, r) = apply_record(&mut table, rec)?;
            dropped += d;
            recompressed += r;
            if !matches!(rec, WalRecord::Checkpoint { .. }) {
                applied += 1;
            }
        }
        Ok(Self {
            table,
            log: DurableLog {
                vfs,
                dir,
                wal: recovery.wal,
                policy: SyncPolicy::PerRecord,
                snap_seqno: meta.last_seqno,
                blocks_dropped: dropped,
                blocks_recompressed: recompressed,
                last_epoch: 0,
                records_since_checkpoint: applied,
            },
            recovered_clean: recovery.clean,
        })
    }

    /// The in-memory table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        self.log.dir()
    }

    /// Did the last `open` find an undamaged log?
    pub fn recovered_clean(&self) -> bool {
        self.recovered_clean
    }

    /// WAL records applied since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.log.records_since_checkpoint()
    }

    /// Current sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.log.policy()
    }

    /// Change the sync policy for subsequent writes.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.log.set_policy(policy);
    }

    /// Durability counters (appends, rotations, shreds, fsyncs).
    pub fn stats(&self) -> WalStats {
        self.log.stats()
    }

    /// Cumulative frozen blocks dropped across the table's history.
    pub fn blocks_dropped(&self) -> u64 {
        self.log.blocks_dropped()
    }

    /// Cumulative frozen blocks recompressed across the table's history.
    pub fn blocks_recompressed(&self) -> u64 {
        self.log.blocks_recompressed()
    }

    /// Split into the table and its durability hook (the core store
    /// wires the hook into its own write paths).
    pub fn into_parts(self) -> (Table, DurableLog) {
        (self.table, self.log)
    }

    /// Insert one row durably (validated, logged, then applied — a call
    /// the table would reject never reaches the log, so replay can never
    /// hit a record that fails to apply).
    pub fn insert(&mut self, values: &[Value], epoch: Epoch) -> Result<RowId> {
        self.table.validate_insert(values)?;
        self.log.log_insert_rows(&[values.to_vec()], epoch)?;
        self.table.insert(values, epoch)
    }

    /// Insert a batch of single-column values durably.
    pub fn insert_batch(&mut self, values: &[Value], epoch: Epoch) -> Result<RowId> {
        self.table.validate_insert_batch()?;
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![v]).collect();
        self.log.log_insert_rows(&rows, epoch)?;
        self.table.insert_batch(values, epoch)
    }

    /// Forget one row durably.
    pub fn forget(&mut self, row: RowId, epoch: Epoch) -> Result<bool> {
        self.table.validate_forget(row)?;
        self.log.log_forget(row, epoch)?;
        self.table.forget(row, epoch)
    }

    /// Freeze full blocks at or below `upto` rows, durably. Returns the
    /// number of blocks frozen.
    pub fn freeze_upto(&mut self, upto: usize) -> Result<usize> {
        self.log.log_freeze(upto)?;
        Ok(self.table.freeze_upto(upto))
    }

    /// Drop fully-forgotten frozen blocks, durably and *physically*: the
    /// drop is logged, applied, checkpointed, and the log segments that
    /// still carried the dropped values are zero-overwritten and
    /// unlinked. Returns `(blocks dropped, bytes freed)`.
    pub fn drop_forgotten_blocks(&mut self) -> Result<(usize, usize)> {
        self.log.log_drop_blocks()?;
        let (blocks, bytes) = self.table.drop_forgotten_blocks();
        self.log.note_transition_results(blocks as u64, 0);
        if blocks > 0 {
            self.log.shred(&self.table)?;
        }
        Ok((blocks, bytes))
    }

    /// Recompress frozen blocks whose active fraction fell below the
    /// threshold, durably. Returns `(blocks, bytes saved)`.
    pub fn recompress_frozen(&mut self, max_active_fraction: f64) -> Result<(usize, usize)> {
        self.log.log_recompress(max_active_fraction)?;
        let (blocks, bytes) = self.table.recompress_frozen(max_active_fraction);
        self.log.note_transition_results(0, blocks as u64);
        Ok((blocks, bytes))
    }

    /// Make everything appended so far durable.
    pub fn sync(&mut self) -> Result<()> {
        self.log.sync()
    }

    /// Write a snapshot and prune covered segments. Replay after a crash
    /// now starts from this state.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.log.checkpoint(&self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amn-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn drive(pt: &mut PersistentTable) {
        pt.insert_batch(&(0..100).collect::<Vec<i64>>(), 0).unwrap();
        for r in (0..50u64).step_by(3) {
            pt.forget(RowId(r), 1).unwrap();
        }
        pt.insert_batch(&(100..150).collect::<Vec<i64>>(), 2)
            .unwrap();
        pt.sync().unwrap();
    }

    fn segment_files(dir: &Path) -> Vec<PathBuf> {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                let name = p.file_name()?.to_str()?;
                (name.starts_with(segment::SEGMENT_PREFIX)
                    && name.ends_with(segment::SEGMENT_SUFFIX))
                .then_some(p)
            })
            .collect()
    }

    #[test]
    fn create_write_reopen_equals_live_state() {
        let dir = tmp_dir("reopen");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        drive(&mut pt);
        let live_active = pt.table().active_rows();
        let live_rows = pt.table().num_rows();
        drop(pt);

        let reopened = PersistentTable::open(&dir).unwrap();
        assert!(reopened.recovered_clean());
        assert_eq!(reopened.table().num_rows(), live_rows);
        assert_eq!(reopened.table().active_rows(), live_active);
        assert_eq!(reopened.table().value(0, RowId(120)), 120);
        assert_eq!(reopened.table().insert_epoch(RowId(120)), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_bounds_the_log() {
        let dir = tmp_dir("checkpoint");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        drive(&mut pt);
        assert!(pt.records_since_checkpoint() > 0);
        pt.checkpoint().unwrap();
        assert_eq!(pt.records_since_checkpoint(), 0);
        // Post-checkpoint writes land in the log and recover.
        pt.insert(&[999], 3).unwrap();
        pt.sync().unwrap();
        drop(pt);
        let reopened = PersistentTable::open(&dir).unwrap();
        assert_eq!(reopened.records_since_checkpoint(), 1);
        let last = RowId::from(reopened.table().num_rows() - 1);
        assert_eq!(reopened.table().value(0, last), 999);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_with_torn_tail_recovers_prefix() {
        let dir = tmp_dir("torn");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        pt.insert_batch(&(0..10).collect::<Vec<i64>>(), 0).unwrap();
        pt.forget(RowId(3), 1).unwrap();
        pt.sync().unwrap();
        drop(pt);
        // Simulate a crash mid-append: chop bytes off the newest segment.
        let seg = segment_files(&dir).pop().unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let reopened = PersistentTable::open(&dir).unwrap();
        assert!(!reopened.recovered_clean());
        // The forget record was the torn one: inserts survive, the
        // unacknowledged forget is gone.
        assert_eq!(reopened.table().num_rows(), 10);
        assert_eq!(reopened.table().active_rows(), 10);
        // The trimmed log accepts new appends and recovers them.
        let mut reopened = reopened;
        reopened.forget(RowId(5), 2).unwrap();
        reopened.sync().unwrap();
        drop(reopened);
        let again = PersistentTable::open(&dir).unwrap();
        assert!(again.recovered_clean());
        assert_eq!(again.table().active_rows(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_column_rows_survive_recovery() {
        let dir = tmp_dir("multicol");
        let mut pt = PersistentTable::create(&dir, Schema::new(vec!["k", "v"])).unwrap();
        pt.insert(&[1, 100], 0).unwrap();
        pt.insert(&[2, 200], 0).unwrap();
        pt.forget(RowId(0), 1).unwrap();
        pt.checkpoint().unwrap();
        pt.insert(&[3, 300], 2).unwrap();
        pt.sync().unwrap();
        drop(pt);
        let pt = PersistentTable::open(&dir).unwrap();
        assert_eq!(pt.table().row_values(RowId(2)), vec![3, 300]);
        assert!(!pt.table().activity().is_active(RowId(0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_without_directory_errors() {
        assert!(PersistentTable::open(tmp_dir("missing")).is_err());
    }

    #[test]
    fn rejected_calls_leave_no_poison_in_the_log() {
        // Write-ahead means a record hits the log before the table; a
        // call the table rejects must therefore be caught *before*
        // logging, or the durable record would fail to apply at every
        // replay and brick recovery forever.
        let dir = tmp_dir("poison");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        pt.insert(&[1], 0).unwrap();
        assert!(pt.insert(&[1, 2], 0).is_err(), "arity mismatch rejected");
        assert!(pt.forget(RowId(99), 0).is_err(), "out-of-range rejected");
        pt.insert(&[2], 1).unwrap();
        pt.sync().unwrap();
        drop(pt);
        let rec = PersistentTable::open(&dir).expect("rejected calls must not poison recovery");
        assert!(rec.recovered_clean());
        assert_eq!(rec.table().num_rows(), 2);
        assert_eq!(rec.table().active_rows(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_ahead_of_lost_wal_tail_keeps_later_writes_recoverable() {
        // Manual sync: records are acknowledged into the OS buffer, a
        // checkpoint durably commits a snapshot covering them, then the
        // crash loses the unflushed WAL tail. Recovery must not reopen
        // the stale tail segment for appending — new writes would create
        // an in-segment seqno gap that the *next* open mistakes for
        // corruption and discards.
        let dir = tmp_dir("horizon");
        let mut pt = PersistentTable::create_with(
            StdVfs::shared(),
            &dir,
            Schema::single("a"),
            SyncPolicy::Manual,
        )
        .unwrap();
        for i in 0..10 {
            pt.insert(&[i], 0).unwrap();
        }
        pt.checkpoint().unwrap(); // snapshot covers seqnos 1..=10
        drop(pt);
        // Simulate the lost tail: every logged record vanishes, only the
        // segment header (and the durable snapshot) survive.
        for seg in segment_files(&dir) {
            let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
            f.set_len(segment::SEGMENT_HEADER_LEN as u64).unwrap();
        }
        let mut pt = PersistentTable::open(&dir).unwrap();
        assert_eq!(pt.table().num_rows(), 10, "snapshot carries the rows");
        pt.insert(&[99], 1).unwrap();
        pt.sync().unwrap();
        drop(pt);
        // The acknowledged post-crash insert must survive the next open.
        let rec = PersistentTable::open(&dir).unwrap();
        assert!(rec.recovered_clean(), "no fake corruption");
        assert_eq!(rec.table().num_rows(), 11);
        assert_eq!(rec.table().value(0, RowId(10)), 99);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tier_transitions_replay_to_the_exact_layout() {
        let dir = tmp_dir("tiers");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        let values: Vec<i64> = (0..4096).collect();
        pt.insert_batch(&values, 0).unwrap();
        pt.freeze_upto(4096).unwrap();
        for r in 0..1024u64 {
            pt.forget(RowId(r), 1).unwrap();
        }
        for r in (1024..2048u64).step_by(2) {
            pt.forget(RowId(r), 2).unwrap();
        }
        pt.recompress_frozen(0.6).unwrap();
        pt.sync().unwrap();
        let live_frozen = pt.table().frozen_blocks();
        let live_bytes = pt.table().bytes_frozen();
        let live_recompressed = pt.blocks_recompressed();
        drop(pt);
        // No checkpoint happened since the transitions: recovery must
        // replay Freeze + Recompress records to the identical layout.
        let rec = PersistentTable::open(&dir).unwrap();
        assert!(rec.recovered_clean());
        assert_eq!(rec.table().frozen_blocks(), live_frozen);
        assert_eq!(rec.table().bytes_frozen(), live_bytes);
        assert_eq!(rec.blocks_recompressed(), live_recompressed);
        rec.table().check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_shreds_the_covered_segments() {
        let dir = tmp_dir("dropshred");
        let mut pt = PersistentTable::create(&dir, Schema::single("a")).unwrap();
        let values: Vec<i64> = (0..2048).collect();
        pt.insert_batch(&values, 0).unwrap();
        pt.freeze_upto(2048).unwrap();
        for r in 0..1024u64 {
            pt.forget(RowId(r), 1).unwrap();
        }
        let (blocks, bytes) = pt.drop_forgotten_blocks().unwrap();
        assert!(blocks > 0 && bytes > 0);
        assert!(pt.stats().segments_shredded > 0);
        assert!(pt.stats().bytes_shredded > 0);
        assert_eq!(pt.blocks_dropped(), blocks as u64);
        let live_dropped_rows = pt.table().dropped_rows();
        // Recovery agrees with the live layout and counters.
        pt.sync().unwrap();
        drop(pt);
        let rec = PersistentTable::open(&dir).unwrap();
        assert_eq!(rec.blocks_dropped(), blocks as u64);
        assert_eq!(rec.table().dropped_rows(), live_dropped_rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Re-frame current snapshot bytes as version 2 (strip the meta
    /// prefix) to fabricate a pre-segment directory.
    fn to_v2_snapshot(bytes: &[u8]) -> Vec<u8> {
        use amnesia_util::crc32;
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let body = &bytes[20 + 24..20 + payload_len]; // skip 24-byte meta
        let mut out = Vec::with_capacity(body.len() + 24);
        out.extend_from_slice(snapshot::MAGIC);
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(body);
        out.extend_from_slice(&crc32(body).to_le_bytes());
        out
    }

    #[test]
    fn legacy_monolithic_directory_migrates_on_open() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        // Fabricate the old layout: v2 snapshot + monolithic table.wal.
        let mut base = Table::new(Schema::single("a"));
        base.insert_batch(&(0..50).collect::<Vec<i64>>(), 0)
            .unwrap();
        std::fs::write(
            dir.join(SNAPSHOT_FILE),
            to_v2_snapshot(&snap::encode(&base)),
        )
        .unwrap();
        let mut old_wal = Wal::open(dir.join(LEGACY_WAL_FILE)).unwrap();
        old_wal
            .append(&WalRecord::Insert {
                epoch: 1,
                rows: vec![vec![500], vec![501]],
            })
            .unwrap();
        old_wal
            .append(&WalRecord::Forget {
                epoch: 2,
                row: RowId(3),
            })
            .unwrap();
        old_wal.sync().unwrap();
        drop(old_wal);

        let pt = PersistentTable::open(&dir).unwrap();
        assert!(pt.recovered_clean());
        assert_eq!(pt.table().num_rows(), 52);
        assert!(!pt.table().activity().is_active(RowId(3)));
        assert!(
            !dir.join(LEGACY_WAL_FILE).exists(),
            "legacy log removed after migration"
        );
        // The migrated directory reopens through the segment path.
        drop(pt);
        let again = PersistentTable::open(&dir).unwrap();
        assert!(again.recovered_clean());
        assert_eq!(again.table().num_rows(), 52);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_policies_gate_fsyncs() {
        let dir = tmp_dir("policy");
        let vfs = Arc::new(StdVfs);
        let mut pt =
            PersistentTable::create_with(vfs, &dir, Schema::single("a"), SyncPolicy::Manual)
                .unwrap();
        pt.insert(&[1], 0).unwrap();
        pt.insert(&[2], 0).unwrap();
        assert_eq!(pt.stats().fsyncs, 0, "manual policy never syncs");
        pt.set_sync_policy(SyncPolicy::PerRecord);
        pt.insert(&[3], 0).unwrap();
        assert_eq!(pt.stats().fsyncs, 1, "per-record syncs each append");
        pt.set_sync_policy(SyncPolicy::PerBatch);
        pt.insert(&[4], 0).unwrap();
        assert_eq!(pt.stats().fsyncs, 1, "per-batch defers to commit");
        pt.log.commit().unwrap();
        assert_eq!(pt.stats().fsyncs, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
