//! Bounds-checked binary reader for snapshot and WAL decoding.
//!
//! Unlike the codec-internal varint reader (which may panic: codecs own
//! their buffers), everything here returns `Err` on truncation — disk
//! bytes are untrusted input.

use amnesia_util::{storage_err, take_arr, Result};

/// Cursor over untrusted bytes.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// New cursor at offset 0.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.remaining() < n {
            return Err(storage_err!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        Ok(())
    }

    /// Raw byte slice.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.need(n)?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Exactly `N` bytes as a fixed array. `bytes` already bounds-checks,
    /// so the second check cannot fire — but it returns `Err`, keeping
    /// this cursor statically panic-free (lint rule `panic`).
    fn arr<const N: usize>(&mut self) -> Result<[u8; N]> {
        take_arr::<N>(self.bytes(N)?)
            .ok_or_else(|| storage_err!("truncated {N}-byte field at offset {}", self.pos))
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.arr::<1>()?[0])
    }

    /// Little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.arr()?))
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.arr()?))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.arr()?))
    }

    /// Little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.arr()?))
    }

    /// Little-endian f64.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.arr()?))
    }

    /// LEB128 varint, checked.
    pub fn varint(&mut self) -> Result<u64> {
        let mut result = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(storage_err!("varint longer than 10 bytes"));
            }
            result |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Zigzag signed varint, checked.
    pub fn signed_varint(&mut self) -> Result<i64> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Error unless the cursor consumed everything.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(storage_err!(
                "{} unexpected trailing bytes at offset {}",
                self.remaining(),
                self.pos
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_reads_advance_in_order() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.extend_from_slice(&0x1234u16.to_le_bytes());
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&42u64.to_le_bytes());
        buf.extend_from_slice(&1.5f64.to_le_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), 1.5);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // Failed read leaves the untouched bytes readable.
        assert_eq!(r.u16().unwrap(), 0x0201);
    }

    #[test]
    fn varint_round_trip_and_overflow_guard() {
        use bytes::BytesMut;
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            crate::compress::varint::write_varint(&mut buf, v);
        }
        let data = buf.freeze();
        let mut r = Reader::new(&data);
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(r.varint().unwrap(), v);
        }
        // 11 continuation bytes: overflow.
        let bad = [0xFFu8; 11];
        assert!(Reader::new(&bad).varint().is_err());
        // Truncated varint: error, not panic.
        let torn = [0x80u8];
        assert!(Reader::new(&torn).varint().is_err());
    }

    #[test]
    fn signed_varint_matches_codec() {
        use bytes::BytesMut;
        let mut buf = BytesMut::new();
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            crate::compress::varint::write_signed(&mut buf, v);
        }
        let data = buf.freeze();
        let mut r = Reader::new(&data);
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(r.signed_varint().unwrap(), v);
        }
    }

    #[test]
    fn expect_end_flags_trailing_garbage() {
        let mut r = Reader::new(&[1, 2, 3]);
        let _ = r.u8().unwrap();
        assert!(r.expect_end().is_err());
    }
}
