//! WAL record encoding and the legacy single-file write-ahead log.
//!
//! Record framing (legacy `table.wal` and inside
//! [segments](super::segment) alike):
//!
//! ```text
//! u32  body length
//! body: u8 kind, payload
//! u32  CRC-32 of the body
//! ```
//!
//! Kinds:
//!
//! | kind | record | payload |
//! |------|--------|---------|
//! | 1 | insert (row-major) | `varint epoch, varint rows, varint arity, signed varint values` |
//! | 2 | forget | `varint epoch, varint row` |
//! | 3 | insert (column-major) | `varint epoch, varint rows, varint arity`, per column: `u8 codec tag, varint data length, codec bytes` |
//! | 4 | freeze | `varint upto` |
//! | 5 | drop blocks | — |
//! | 6 | recompress | `f64 max active fraction` |
//! | 7 | checkpoint | `varint through-seqno` |
//!
//! Kind 3 is the compressed batch path: each column runs through
//! [`EncodedBlock::encode_auto`], so a WAL full of serial or repetitive
//! inserts costs about what the frozen tier costs, not eight bytes a
//! value. Small batches stay row-major (kind 1) — the codec header would
//! outweigh them. Kinds 4–6 are the tier transitions: they log the
//! *parameters* of `freeze_upto` / `drop_forgotten_blocks` /
//! `recompress_frozen`, which are deterministic given table state, so
//! replay reproduces the exact pre-crash tier layout.
//!
//! Replay walks records until the file ends cleanly or a torn / corrupt
//! record appears — everything before the damage is recovered, everything
//! after is discarded (it was never acknowledged durable).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use amnesia_util::fixed::le_u32;
use amnesia_util::{crc32, storage_err, Result};
use bytes::{BufMut, Bytes, BytesMut};

use crate::compress::varint::{write_signed, write_varint};
use crate::compress::{EncodedBlock, Encoding};
use crate::types::{Epoch, RowId, Value};

use super::reader::Reader;

const KIND_INSERT: u8 = 1;
const KIND_FORGET: u8 = 2;
const KIND_INSERT_COLS: u8 = 3;
const KIND_FREEZE: u8 = 4;
const KIND_DROP_BLOCKS: u8 = 5;
const KIND_RECOMPRESS: u8 = 6;
const KIND_CHECKPOINT: u8 = 7;

/// Insert batches at or above this many rows take the column-major
/// codec-compressed encoding (kind 3); below it, the per-column codec
/// headers would outweigh the values.
const COLUMNAR_THRESHOLD: usize = 8;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A batch of inserted rows (row-major values).
    Insert {
        /// Insertion epoch.
        epoch: Epoch,
        /// Rows, each of schema arity.
        rows: Vec<Vec<Value>>,
    },
    /// One forgotten row.
    Forget {
        /// Forget epoch.
        epoch: Epoch,
        /// Victim.
        row: RowId,
    },
    /// Tier transition: `Table::freeze_upto(upto)`.
    Freeze {
        /// Row bound passed to `freeze_upto`.
        upto: usize,
    },
    /// Tier transition: `Table::drop_forgotten_blocks()`.
    DropBlocks,
    /// Tier transition: `Table::recompress_frozen(max_active_fraction)`.
    Recompress {
        /// Active-fraction threshold below which blocks recompress.
        max_active_fraction: f64,
    },
    /// Marker: everything at or below `through_seqno` is captured by the
    /// snapshot on disk. Replay treats it as a no-op; it exists so the
    /// log itself records where checkpoints happened.
    Checkpoint {
        /// Last sequence number the snapshot covers.
        through_seqno: u64,
    },
}

impl WalRecord {
    /// Encode the record body (kind byte + payload), without framing.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut body = BytesMut::new();
        match self {
            WalRecord::Insert { epoch, rows } => {
                let arity = rows.first().map_or(0, Vec::len);
                if rows.len() >= COLUMNAR_THRESHOLD && arity > 0 {
                    body.put_u8(KIND_INSERT_COLS);
                    write_varint(&mut body, *epoch);
                    write_varint(&mut body, rows.len() as u64);
                    write_varint(&mut body, arity as u64);
                    let mut col = Vec::with_capacity(rows.len());
                    for c in 0..arity {
                        col.clear();
                        for row in rows {
                            debug_assert_eq!(row.len(), arity, "ragged insert batch");
                            col.push(row[c]);
                        }
                        let block = EncodedBlock::encode_auto(&col);
                        body.put_u8(block.encoding().tag());
                        write_varint(&mut body, block.data().len() as u64);
                        body.put_slice(block.data());
                    }
                } else {
                    body.put_u8(KIND_INSERT);
                    write_varint(&mut body, *epoch);
                    write_varint(&mut body, rows.len() as u64);
                    write_varint(&mut body, arity as u64);
                    for row in rows {
                        debug_assert_eq!(row.len(), arity, "ragged insert batch");
                        for &v in row {
                            write_signed(&mut body, v);
                        }
                    }
                }
            }
            WalRecord::Forget { epoch, row } => {
                body.put_u8(KIND_FORGET);
                write_varint(&mut body, *epoch);
                write_varint(&mut body, row.0);
            }
            WalRecord::Freeze { upto } => {
                body.put_u8(KIND_FREEZE);
                write_varint(&mut body, *upto as u64);
            }
            WalRecord::DropBlocks => {
                body.put_u8(KIND_DROP_BLOCKS);
            }
            WalRecord::Recompress {
                max_active_fraction,
            } => {
                body.put_u8(KIND_RECOMPRESS);
                body.put_f64_le(*max_active_fraction);
            }
            WalRecord::Checkpoint { through_seqno } => {
                body.put_u8(KIND_CHECKPOINT);
                write_varint(&mut body, *through_seqno);
            }
        }
        body.to_vec()
    }

    /// Frame the record for the legacy single-file log:
    /// `u32 len | body | u32 crc`.
    fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Decode a record body (inverse of [`WalRecord::encode_body`]).
    pub fn decode_body(body: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(body);
        let kind = r.u8()?;
        let rec = match kind {
            KIND_INSERT => {
                let epoch = r.varint()?;
                let n = r.varint()? as usize;
                let arity = r.varint()? as usize;
                if arity == 0 && n > 0 {
                    return Err(storage_err!("insert record with zero arity"));
                }
                // Guard against absurd sizes from corrupt length fields.
                if n.saturating_mul(arity) > body.len() * 8 {
                    return Err(storage_err!("insert record claims impossible size"));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut row = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        row.push(r.signed_varint()?);
                    }
                    rows.push(row);
                }
                WalRecord::Insert { epoch, rows }
            }
            KIND_INSERT_COLS => {
                let epoch = r.varint()?;
                let n = r.varint()? as usize;
                let arity = r.varint()? as usize;
                if arity == 0 || n == 0 {
                    return Err(storage_err!("columnar insert record with empty shape"));
                }
                if n.saturating_mul(arity) > (1 << 32) {
                    return Err(storage_err!("insert record claims impossible size"));
                }
                let mut rows = vec![Vec::with_capacity(arity); n];
                for c in 0..arity {
                    let tag = r.u8()?;
                    let encoding = Encoding::from_tag(tag)
                        .ok_or_else(|| storage_err!("unknown codec tag {tag} in WAL insert"))?;
                    let data_len = r.varint()? as usize;
                    let data = Bytes::copy_from_slice(r.bytes(data_len)?);
                    let values = EncodedBlock::from_parts(encoding, n, data).decode();
                    if values.len() != n {
                        return Err(storage_err!(
                            "WAL insert column {c} decoded to {} values, expected {n}",
                            values.len()
                        ));
                    }
                    for (row, v) in rows.iter_mut().zip(values) {
                        row.push(v);
                    }
                }
                WalRecord::Insert { epoch, rows }
            }
            KIND_FORGET => WalRecord::Forget {
                epoch: r.varint()?,
                row: RowId(r.varint()?),
            },
            KIND_FREEZE => WalRecord::Freeze {
                upto: r.varint()? as usize,
            },
            KIND_DROP_BLOCKS => WalRecord::DropBlocks,
            KIND_RECOMPRESS => WalRecord::Recompress {
                max_active_fraction: r.f64()?,
            },
            KIND_CHECKPOINT => WalRecord::Checkpoint {
                through_seqno: r.varint()?,
            },
            other => return Err(storage_err!("unknown WAL record kind {other}")),
        };
        r.expect_end()?;
        Ok(rec)
    }

    /// Is this a tier-transition record (as opposed to row data or a
    /// checkpoint marker)?
    pub fn is_tier_transition(&self) -> bool {
        matches!(
            self,
            WalRecord::Freeze { .. } | WalRecord::DropBlocks | WalRecord::Recompress { .. }
        )
    }
}

/// What replay found.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Records recovered, in log order.
    pub records: Vec<WalRecord>,
    /// True when the log ended exactly at a record boundary.
    pub clean: bool,
    /// Bytes of valid log prefix (where the next append should start).
    pub valid_bytes: u64,
}

/// The legacy single-file write-ahead log (`table.wal`).
///
/// Superseded by [`segment::SegmentedWal`](super::segment::SegmentedWal);
/// kept so that pre-segment directories can be read and migrated, and as
/// the baseline in the WAL benchmarks.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if missing) for appending.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self { file, path })
    }

    /// The log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (buffered by the OS; call [`Wal::sync`] for
    /// durability).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.file.write_all(&record.encode())?;
        Ok(())
    }

    /// fsync the log.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Discard every record (after a checkpoint made them redundant).
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Replay a legacy log file. Missing file = empty clean log. Corruption
/// (torn frame, bad CRC, undecodable body) ends replay at the last good
/// record.
pub fn replay(path: &Path) -> Result<ReplayOutcome> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReplayOutcome {
                records: Vec::new(),
                clean: true,
                valid_bytes: 0,
            })
        }
        Err(e) => return Err(e.into()),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    let clean = loop {
        if pos == bytes.len() {
            break true; // exact boundary
        }
        let Some((body, next)) = next_frame(&bytes, pos) else {
            break false;
        };
        match WalRecord::decode_body(body) {
            Ok(rec) => records.push(rec),
            Err(_) => break false,
        }
        pos = next;
    };
    Ok(ReplayOutcome {
        records,
        clean,
        valid_bytes: pos as u64,
    })
}

/// Parse one `u32 len | body | u32 crc` frame at `pos`. Returns the body
/// slice and the offset just past the frame, or `None` when the frame is
/// torn or its CRC does not match.
pub(super) fn next_frame(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    // Checked reads throughout (`le_u32` is `None` on a short slice):
    // torn frames surface as `None`, never as a panic (lint rule `panic`).
    let len = le_u32(bytes.get(pos..)?)? as usize;
    let body_start = pos + 4;
    let crc_start = body_start.checked_add(len)?;
    if crc_start.checked_add(4)? > bytes.len() {
        return None; // torn body or checksum
    }
    let body = &bytes[body_start..crc_start];
    let stored = le_u32(&bytes[crc_start..])?;
    if crc32(body) != stored {
        return None; // bit rot or partial overwrite
    }
    Some((body, crc_start + 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amn-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                epoch: 0,
                rows: vec![vec![1, 10], vec![2, 20], vec![3, 30]],
            },
            WalRecord::Forget {
                epoch: 1,
                row: RowId(1),
            },
            WalRecord::Insert {
                epoch: 1,
                rows: vec![vec![-4, 40]],
            },
            WalRecord::Freeze { upto: 2048 },
            WalRecord::Recompress {
                max_active_fraction: 0.5,
            },
            WalRecord::DropBlocks,
            WalRecord::Forget {
                epoch: 2,
                row: RowId(0),
            },
            WalRecord::Checkpoint { through_seqno: 7 },
        ]
    }

    #[test]
    fn every_kind_round_trips_through_body_encoding() {
        let mut all = sample_records();
        // A batch big enough for the column-major path.
        all.push(WalRecord::Insert {
            epoch: 9,
            rows: (0..100).map(|i| vec![i, i * 2, -i]).collect(),
        });
        for rec in &all {
            let body = rec.encode_body();
            assert_eq!(&WalRecord::decode_body(&body).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn large_batches_take_the_columnar_compressed_path() {
        let serial = WalRecord::Insert {
            epoch: 0,
            rows: (0..1000i64).map(|i| vec![i]).collect(),
        };
        let body = serial.encode_body();
        assert_eq!(body[0], KIND_INSERT_COLS, "big batch is column-major");
        // 1000 serial values compress to ~1 byte/value, below the ~2
        // bytes/value the row-major zigzag varints would need.
        assert!(body.len() < 1100, "compressed body is {} bytes", body.len());
        assert_eq!(WalRecord::decode_body(&body).unwrap(), serial);
        // Small batches stay row-major.
        let small = WalRecord::Insert {
            epoch: 0,
            rows: vec![vec![1], vec![2]],
        };
        assert_eq!(small.encode_body()[0], KIND_INSERT);
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        let outcome = replay(&path).unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.records, sample_records());
        assert_eq!(outcome.valid_bytes, wal.len_bytes().unwrap());
    }

    #[test]
    fn missing_file_is_a_clean_empty_log() {
        let outcome = replay(&tmp("never-created.wal")).unwrap();
        assert!(outcome.clean);
        assert!(outcome.records.is_empty());
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every possible byte: replay must never panic
        // and must return a prefix of the logical records.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let outcome = replay(&path).unwrap();
            assert!(outcome.records.len() <= sample_records().len(), "cut {cut}");
            let expected = &sample_records()[..outcome.records.len()];
            assert_eq!(outcome.records, expected, "cut {cut}: prefix property");
            assert!(outcome.valid_bytes <= cut as u64);
            if cut < full.len() {
                assert!(!outcome.clean || outcome.valid_bytes == cut as u64);
            }
        }
    }

    #[test]
    fn bit_flips_drop_the_damaged_suffix() {
        let path = tmp("flip.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        for i in (0..full.len()).step_by(5) {
            let mut dup = full.clone();
            dup[i] ^= 0x40;
            std::fs::write(&path, &dup).unwrap();
            let outcome = replay(&path).unwrap();
            // The records recovered must be a prefix of the originals —
            // a flip can only truncate history, never corrupt it
            // silently into different-but-valid records (CRC would have
            // to collide, which these single-bit flips cannot).
            let expected = &sample_records()[..outcome.records.len()];
            assert_eq!(outcome.records, expected, "flip at {i}");
        }
    }

    #[test]
    fn truncate_resets_the_log() {
        let path = tmp("trunc.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes().unwrap(), 0);
        // Appends continue to work after truncation.
        wal.append(&sample_records()[1]).unwrap();
        wal.sync().unwrap();
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.records, vec![sample_records()[1].clone()]);
    }

    #[test]
    fn unknown_kind_ends_replay() {
        let path = tmp("kind.wal");
        let body = [9u8, 0, 0]; // kind 9 does not exist
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let outcome = replay(&path).unwrap();
        assert!(!outcome.clean);
        assert!(outcome.records.is_empty());
    }

    #[test]
    fn impossible_sizes_are_rejected_not_allocated() {
        // A record whose body claims 2^40 rows must fail fast instead of
        // trying to reserve terabytes.
        let mut body = BytesMut::new();
        body.put_u8(KIND_INSERT);
        write_varint(&mut body, 0); // epoch
        write_varint(&mut body, 1 << 40); // rows
        write_varint(&mut body, 1 << 20); // arity
        let err = WalRecord::decode_body(&body).unwrap_err();
        assert!(err.to_string().contains("impossible"), "{err}");
    }
}
