//! Append-only write-ahead log.
//!
//! Record framing:
//!
//! ```text
//! u32  body length
//! body: u8 kind, payload
//! u32  CRC-32 of the body
//! ```
//!
//! Kinds: 1 = insert batch (`varint epoch, varint rows, varint arity,
//! signed varint values row-major`), 2 = forget (`varint epoch, varint
//! row`). Replay walks records until the file ends cleanly or a torn /
//! corrupt record appears — everything before the damage is recovered,
//! everything after is discarded (it was never acknowledged durable).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use amnesia_util::{crc32, storage_err, Result};
use bytes::{BufMut, BytesMut};

use crate::compress::varint::{write_signed, write_varint};
use crate::types::{Epoch, RowId, Value};

use super::reader::Reader;

const KIND_INSERT: u8 = 1;
const KIND_FORGET: u8 = 2;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A batch of inserted rows (row-major values).
    Insert {
        /// Insertion epoch.
        epoch: Epoch,
        /// Rows, each of schema arity.
        rows: Vec<Vec<Value>>,
    },
    /// One forgotten row.
    Forget {
        /// Forget epoch.
        epoch: Epoch,
        /// Victim.
        row: RowId,
    },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut body = BytesMut::new();
        match self {
            WalRecord::Insert { epoch, rows } => {
                body.put_u8(KIND_INSERT);
                write_varint(&mut body, *epoch);
                write_varint(&mut body, rows.len() as u64);
                let arity = rows.first().map_or(0, Vec::len);
                write_varint(&mut body, arity as u64);
                for row in rows {
                    debug_assert_eq!(row.len(), arity, "ragged insert batch");
                    for &v in row {
                        write_signed(&mut body, v);
                    }
                }
            }
            WalRecord::Forget { epoch, row } => {
                body.put_u8(KIND_FORGET);
                write_varint(&mut body, *epoch);
                write_varint(&mut body, row.0);
            }
        }
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    fn decode(body: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(body);
        let kind = r.u8()?;
        let rec = match kind {
            KIND_INSERT => {
                let epoch = r.varint()?;
                let n = r.varint()? as usize;
                let arity = r.varint()? as usize;
                if arity == 0 && n > 0 {
                    return Err(storage_err!("insert record with zero arity"));
                }
                // Guard against absurd sizes from corrupt length fields.
                if n.saturating_mul(arity) > body.len() * 8 {
                    return Err(storage_err!("insert record claims impossible size"));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut row = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        row.push(r.signed_varint()?);
                    }
                    rows.push(row);
                }
                WalRecord::Insert { epoch, rows }
            }
            KIND_FORGET => WalRecord::Forget {
                epoch: r.varint()?,
                row: RowId(r.varint()?),
            },
            other => return Err(storage_err!("unknown WAL record kind {other}")),
        };
        r.expect_end()?;
        Ok(rec)
    }
}

/// What replay found.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Records recovered, in log order.
    pub records: Vec<WalRecord>,
    /// True when the log ended exactly at a record boundary.
    pub clean: bool,
    /// Bytes of valid log prefix (where the next append should start).
    pub valid_bytes: u64,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if missing) for appending.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self { file, path })
    }

    /// The log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (buffered by the OS; call [`Wal::sync`] for
    /// durability).
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.file.write_all(&record.encode())?;
        Ok(())
    }

    /// fsync the log.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Discard every record (after a checkpoint made them redundant).
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Replay a log file. Missing file = empty clean log. Corruption (torn
/// frame, bad CRC, undecodable body) ends replay at the last good record.
pub fn replay(path: &Path) -> Result<ReplayOutcome> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReplayOutcome {
                records: Vec::new(),
                clean: true,
                valid_bytes: 0,
            })
        }
        Err(e) => return Err(e.into()),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    let clean = loop {
        if pos == bytes.len() {
            break true; // exact boundary
        }
        if bytes.len() - pos < 4 {
            break false; // torn length prefix
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let body_start = pos + 4;
        let Some(crc_start) = body_start.checked_add(len) else {
            break false;
        };
        if crc_start + 4 > bytes.len() {
            break false; // torn body or checksum
        }
        let body = &bytes[body_start..crc_start];
        let stored =
            u32::from_le_bytes(bytes[crc_start..crc_start + 4].try_into().expect("4 bytes"));
        if crc32(body) != stored {
            break false; // bit rot or partial overwrite
        }
        match WalRecord::decode(body) {
            Ok(rec) => records.push(rec),
            Err(_) => break false,
        }
        pos = crc_start + 4;
    };
    Ok(ReplayOutcome {
        records,
        clean,
        valid_bytes: pos as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amn-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                epoch: 0,
                rows: vec![vec![1, 10], vec![2, 20], vec![3, 30]],
            },
            WalRecord::Forget {
                epoch: 1,
                row: RowId(1),
            },
            WalRecord::Insert {
                epoch: 1,
                rows: vec![vec![-4, 40]],
            },
            WalRecord::Forget {
                epoch: 2,
                row: RowId(0),
            },
        ]
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        let outcome = replay(&path).unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.records, sample_records());
        assert_eq!(outcome.valid_bytes, wal.len_bytes().unwrap());
    }

    #[test]
    fn missing_file_is_a_clean_empty_log() {
        let outcome = replay(&tmp("never-created.wal")).unwrap();
        assert!(outcome.clean);
        assert!(outcome.records.is_empty());
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every possible byte: replay must never panic
        // and must return a prefix of the logical records.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let outcome = replay(&path).unwrap();
            assert!(outcome.records.len() <= sample_records().len(), "cut {cut}");
            let expected = &sample_records()[..outcome.records.len()];
            assert_eq!(outcome.records, expected, "cut {cut}: prefix property");
            assert!(outcome.valid_bytes <= cut as u64);
            if cut < full.len() {
                assert!(!outcome.clean || outcome.valid_bytes == cut as u64);
            }
        }
    }

    #[test]
    fn bit_flips_drop_the_damaged_suffix() {
        let path = tmp("flip.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        for i in (0..full.len()).step_by(5) {
            let mut dup = full.clone();
            dup[i] ^= 0x40;
            std::fs::write(&path, &dup).unwrap();
            let outcome = replay(&path).unwrap();
            // The records recovered must be a prefix of the originals —
            // a flip can only truncate history, never corrupt it
            // silently into different-but-valid records (CRC would have
            // to collide, which these single-bit flips cannot).
            let expected = &sample_records()[..outcome.records.len()];
            assert_eq!(outcome.records, expected, "flip at {i}");
        }
    }

    #[test]
    fn truncate_resets_the_log() {
        let path = tmp("trunc.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes().unwrap(), 0);
        // Appends continue to work after truncation.
        wal.append(&sample_records()[1]).unwrap();
        wal.sync().unwrap();
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.records, vec![sample_records()[1].clone()]);
    }

    #[test]
    fn unknown_kind_ends_replay() {
        let path = tmp("kind.wal");
        let body = [9u8, 0, 0]; // kind 9 does not exist
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let outcome = replay(&path).unwrap();
        assert!(!outcome.clean);
        assert!(outcome.records.is_empty());
    }

    #[test]
    fn impossible_sizes_are_rejected_not_allocated() {
        // A record whose body claims 2^40 rows must fail fast instead of
        // trying to reserve terabytes.
        let mut body = BytesMut::new();
        body.put_u8(KIND_INSERT);
        write_varint(&mut body, 0); // epoch
        write_varint(&mut body, 1 << 40); // rows
        write_varint(&mut body, 1 << 20); // arity
        let err = WalRecord::decode(&body).unwrap_err();
        assert!(err.to_string().contains("impossible"), "{err}");
    }
}
