//! Binary table snapshots.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   "AMNSNAP1"                         8 bytes
//! u32     version (= 3)
//! u64     payload length
//! payload:
//!   u64   last WAL seqno this snapshot covers     (v3+)
//!   u64   cumulative blocks dropped               (v3+)
//!   u64   cumulative blocks recompressed          (v3+)
//!   u16   arity
//!   per column: u16 name length, UTF-8 name bytes
//!   u64   row count
//!   u64   tier block rows
//!   per column:
//!     u8    pinned-encoding flag (0xFF = automatic, else encoding tag)
//!     u64   frozen block count
//!     per frozen block: u8 state, u8 encoding tag,
//!                       i64 meta min, i64 meta max, u64 meta active,
//!                       u64 data length, data
//!     u8    tail encoding tag, u64 tail rows, u64 data length, data
//!     u8    stats flag, [i64 min seen, i64 max seen]
//!   u64   forgotten count
//!   per forgotten row: varint row id, varint died-at epoch
//!   per row: signed varint insert-epoch delta (vs previous row)
//!   u64   touched count (rows with access stats)
//!   per touched row: varint row id, f64 frequency, varint last access
//! u32     CRC-32 of the payload
//! ```
//!
//! Version 3 adds the [`RecoveryMeta`] prefix: the WAL sequence number
//! the snapshot covers (so segmented-log replay knows exactly where to
//! resume) and the cumulative tier-transition counters (so a recovered
//! store's metrics snapshot matches the pre-crash one even though the
//! dropped blocks' history spans many checkpoints). Wrappers keep the
//! plain `encode`/`decode` signatures working with zero meta.
//!
//! Version 2 persists the *tiered* representation verbatim: frozen
//! blocks ship their compressed payloads, cached [`BlockMeta`] and
//! lifecycle state byte-for-byte, the hot tail goes through
//! [`EncodedBlock::encode_auto`], and a restore reproduces the exact
//! tier layout — dropped blocks stay dropped, recompressed blocks keep
//! their squashed payloads, and the resident footprint after a restore
//! matches the footprint before the save. The trailing CRC makes
//! corruption loud: a snapshot either loads exactly or errors — never
//! silently half-loads.

use std::path::Path;

use amnesia_util::{crc32, storage_err, Result};
use bytes::{BufMut, Bytes, BytesMut};

use crate::compress::varint::{write_signed, write_varint};
use crate::compress::{EncodedBlock, Encoding};
use crate::schema::Schema;
use crate::table::Table;
use crate::tier::{BlockMeta, BlockState, FrozenBlock, TieredColumn};
use crate::types::RowId;

use super::reader::Reader;

/// File magic.
pub const MAGIC: &[u8; 8] = b"AMNSNAP1";
/// Current format version.
pub const VERSION: u32 = 3;

/// Recovery bookkeeping carried at the head of a v3 payload.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryMeta {
    /// Last WAL sequence number whose effects are inside the snapshot.
    /// Segment replay resumes at `last_seqno + 1`.
    pub last_seqno: u64,
    /// Cumulative frozen blocks dropped over the table's whole history.
    pub blocks_dropped: u64,
    /// Cumulative frozen blocks recompressed over the table's history.
    pub blocks_recompressed: u64,
}

/// Stable on-disk tag for a block's lifecycle state.
fn state_tag(state: BlockState) -> u8 {
    match state {
        BlockState::Frozen => 0,
        BlockState::Recompressed => 1,
        BlockState::Dropped => 2,
    }
}

/// Inverse of [`state_tag`].
fn state_from_tag(tag: u8) -> Option<BlockState> {
    Some(match tag {
        0 => BlockState::Frozen,
        1 => BlockState::Recompressed,
        2 => BlockState::Dropped,
        _ => return None,
    })
}

/// Serialize `table` into snapshot bytes with zero recovery meta (for
/// callers outside the segmented-log lifecycle).
pub fn encode(table: &Table) -> Vec<u8> {
    encode_with_meta(table, RecoveryMeta::default())
}

/// Serialize `table` into snapshot bytes, embedding `meta`.
pub fn encode_with_meta(table: &Table, meta: RecoveryMeta) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.put_u64_le(meta.last_seqno);
    payload.put_u64_le(meta.blocks_dropped);
    payload.put_u64_le(meta.blocks_recompressed);

    // Schema.
    let schema = table.schema();
    payload.put_u16_le(schema.arity() as u16);
    for def in schema.columns() {
        payload.put_u16_le(def.name.len() as u16);
        payload.put_slice(def.name.as_bytes());
    }

    // Columns: the tiered representation, verbatim.
    let n = table.num_rows();
    payload.put_u64_le(n as u64);
    payload.put_u64_le(table.block_rows() as u64);
    for c in 0..schema.arity() {
        let tier = table.col_tier(c);
        payload.put_u8(tier.pinned_encoding().map_or(0xFF, Encoding::tag));
        payload.put_u64_le(tier.frozen_blocks() as u64);
        for b in 0..tier.frozen_blocks() {
            // lint: allow(panic) encode path, not recovery: the loop walks 0..frozen_blocks(), so the index is in range by construction
            let f = tier.frozen(b).expect("block in range");
            payload.put_u8(state_tag(f.state()));
            payload.put_u8(f.encoded().encoding().tag());
            payload.put_i64_le(f.meta().min);
            payload.put_i64_le(f.meta().max);
            payload.put_u64_le(f.meta().active as u64);
            payload.put_u64_le(f.encoded().data().len() as u64);
            payload.put_slice(f.encoded().data());
        }
        let tail = EncodedBlock::encode_auto(tier.hot_values());
        payload.put_u8(tail.encoding().tag());
        payload.put_u64_le(tail.len() as u64);
        payload.put_u64_le(tail.data().len() as u64);
        payload.put_slice(tail.data());
        match (table.min_seen(c), table.max_seen(c)) {
            (Some(min), Some(max)) => {
                payload.put_u8(1);
                payload.put_i64_le(min);
                payload.put_i64_le(max);
            }
            _ => payload.put_u8(0),
        }
    }

    // Forgotten rows with their death epochs.
    let forgotten: Vec<(u64, u64)> = (0..n)
        .filter_map(|r| {
            let id = RowId::from(r);
            table.activity().died_at(id).map(|e| (r as u64, e))
        })
        .collect();
    payload.put_u64_le(forgotten.len() as u64);
    for (row, epoch) in forgotten {
        write_varint(&mut payload, row);
        write_varint(&mut payload, epoch);
    }

    // Insert epochs, delta-coded (batch inserts make these long runs of
    // zero deltas — one byte each).
    let mut prev = 0i64;
    for &e in table.insert_epochs() {
        write_signed(&mut payload, e as i64 - prev);
        prev = e as i64;
    }

    // Access stats: only touched rows.
    let touched: Vec<u64> = (0..n as u64)
        .filter(|&r| table.access().frequency(RowId(r)) > 0.0)
        .collect();
    payload.put_u64_le(touched.len() as u64);
    for r in touched {
        write_varint(&mut payload, r);
        payload.put_f64_le(table.access().frequency(RowId(r)));
        write_varint(&mut payload, table.access().last_access(RowId(r)));
    }

    // Frame.
    let payload = payload.freeze();
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Reconstruct a table from snapshot bytes, discarding recovery meta.
pub fn decode(bytes: &[u8]) -> Result<Table> {
    Ok(decode_with_meta(bytes)?.0)
}

/// Read the format version out of snapshot bytes without decoding the
/// payload (used to detect pre-segment directories needing migration).
pub fn peek_version(bytes: &[u8]) -> Result<u32> {
    let mut r = Reader::new(bytes);
    if r.bytes(8)? != MAGIC {
        return Err(storage_err!("not a snapshot: bad magic"));
    }
    r.u32()
}

/// Reconstruct a table and its recovery meta from snapshot bytes.
/// Versions 1 and 2 predate the meta and return zeros.
pub fn decode_with_meta(bytes: &[u8]) -> Result<(Table, RecoveryMeta)> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(8)?;
    if magic != MAGIC {
        return Err(storage_err!("not a snapshot: bad magic"));
    }
    let version = r.u32()?;
    if !(1..=VERSION).contains(&version) {
        return Err(storage_err!(
            "unsupported snapshot version {version} (expected 1..={VERSION})"
        ));
    }
    let payload_len = r.u64()? as usize;
    let payload = r.bytes(payload_len)?.to_vec();
    let stored_crc = r.u32()?;
    let actual = crc32(&payload);
    if stored_crc != actual {
        return Err(storage_err!(
            "snapshot checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        ));
    }
    if version == 1 {
        return Ok((decode_v1(&payload)?, RecoveryMeta::default()));
    }
    let mut meta = RecoveryMeta::default();
    let body = if version >= 3 {
        let mut m = Reader::new(&payload);
        meta.last_seqno = m.u64()?;
        meta.blocks_dropped = m.u64()?;
        meta.blocks_recompressed = m.u64()?;
        &payload[m.position()..]
    } else {
        &payload[..]
    };
    Ok((decode_v2_body(body)?, meta))
}

/// Decode the column/activity/access body shared by versions 2 and 3.
fn decode_v2_body(payload: &[u8]) -> Result<Table> {
    let mut p = Reader::new(payload);

    // Schema.
    let arity = p.u16()? as usize;
    if arity == 0 {
        return Err(storage_err!("snapshot declares zero columns"));
    }
    let mut names = Vec::with_capacity(arity);
    for _ in 0..arity {
        let len = p.u16()? as usize;
        let raw = p.bytes(len)?;
        names.push(
            std::str::from_utf8(raw)
                .map_err(|_| storage_err!("column name is not UTF-8"))?
                .to_string(),
        );
    }

    // Columns: tiered representation.
    let n = p.u64()? as usize;
    let block_rows = p.u64()? as usize;
    if block_rows == 0 || !block_rows.is_multiple_of(64) {
        return Err(storage_err!("invalid tier block size {block_rows}"));
    }
    struct ColParts {
        tier: TieredColumn,
        stats: Option<(i64, i64)>,
    }
    let mut columns: Vec<ColParts> = Vec::with_capacity(arity);
    for c in 0..arity {
        let pinned = p.u8()?;
        let pinned = if pinned == 0xFF {
            None
        } else {
            Some(
                Encoding::from_tag(pinned)
                    .ok_or_else(|| storage_err!("unknown pinned encoding tag {pinned}"))?,
            )
        };
        let frozen_count = p.u64()? as usize;
        if frozen_count
            .checked_mul(block_rows)
            .is_none_or(|rows| rows > n)
        {
            return Err(storage_err!(
                "column {c} declares {frozen_count} frozen blocks for {n} rows"
            ));
        }
        let mut frozen = Vec::with_capacity(frozen_count);
        for b in 0..frozen_count {
            let state = p.u8()?;
            let state = state_from_tag(state)
                .ok_or_else(|| storage_err!("unknown block state tag {state}"))?;
            let tag = p.u8()?;
            let encoding = Encoding::from_tag(tag)
                .ok_or_else(|| storage_err!("unknown encoding tag {tag}"))?;
            let min = p.i64()?;
            let max = p.i64()?;
            let active = p.u64()? as usize;
            if active > block_rows {
                return Err(storage_err!(
                    "block {b} of column {c} claims {active} active rows"
                ));
            }
            let data_len = p.u64()? as usize;
            let data = Bytes::copy_from_slice(p.bytes(data_len)?);
            let block = EncodedBlock::from_parts(encoding, block_rows, data);
            frozen.push(FrozenBlock::from_parts(
                block,
                BlockMeta { min, max, active },
                state,
            ));
        }
        let tail_tag = p.u8()?;
        let tail_encoding = Encoding::from_tag(tail_tag)
            .ok_or_else(|| storage_err!("unknown tail encoding tag {tail_tag}"))?;
        let tail_rows = p.u64()? as usize;
        if frozen_count * block_rows + tail_rows != n {
            return Err(storage_err!(
                "column {c} covers {} rows, expected {n}",
                frozen_count * block_rows + tail_rows
            ));
        }
        let data_len = p.u64()? as usize;
        let data = Bytes::copy_from_slice(p.bytes(data_len)?);
        let tail = EncodedBlock::from_parts(tail_encoding, tail_rows, data).decode();
        if tail.len() != tail_rows {
            return Err(storage_err!(
                "column {c} tail decoded to {} rows, expected {tail_rows}",
                tail.len()
            ));
        }
        let stats = match p.u8()? {
            0 => None,
            1 => Some((p.i64()?, p.i64()?)),
            f => return Err(storage_err!("bad stats flag {f}")),
        };
        columns.push(ColParts {
            tier: TieredColumn::from_parts(block_rows, pinned, frozen, tail),
            stats,
        });
    }

    // Forgotten rows.
    let forgotten_count = p.u64()? as usize;
    let mut forgotten = Vec::with_capacity(forgotten_count);
    for _ in 0..forgotten_count {
        let row = p.varint()?;
        let epoch = p.varint()?;
        if row as usize >= n {
            return Err(storage_err!("forgotten row {row} out of range"));
        }
        forgotten.push((RowId(row), epoch));
    }

    // Insert epochs.
    let mut epochs = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        prev += p.signed_varint()?;
        if prev < 0 {
            return Err(storage_err!("negative insert epoch"));
        }
        epochs.push(prev as u64);
    }

    // Access stats.
    let touched_count = p.u64()? as usize;
    let mut touched = Vec::with_capacity(touched_count);
    for _ in 0..touched_count {
        let row = p.varint()?;
        let freq = p.f64()?;
        let last = p.varint()?;
        if row as usize >= n {
            return Err(storage_err!("touched row {row} out of range"));
        }
        touched.push((RowId(row), freq, last));
    }
    p.expect_end()?;

    // Rebuild: the persisted tiers install as-is and the activity /
    // epoch / access bookkeeping is reconstructed directly — the restore
    // never materializes a dense copy of the table and allocates nothing
    // beyond the tiers it keeps. Dropped blocks stay dropped, frozen
    // payloads are not re-encoded, and block metadata arrives already
    // reflecting the persisted forgets.
    let (tiers, stats): (Vec<_>, Vec<_>) = columns.into_iter().map(|c| (c.tier, c.stats)).unzip();
    let mut table =
        Table::from_restored_parts(Schema::new(names), block_rows, tiers, epochs, &forgotten)?;
    for (row, freq, last) in touched {
        table.access_mut().restore(row, freq, last);
    }
    for (c, stats) in stats.into_iter().enumerate() {
        if let Some((min, max)) = stats {
            table.restore_col_stats(c, Some(min), Some(max));
        }
    }
    table.check_invariants()?;
    Ok(table)
}

/// Reconstruct a table from a *version 1* (pre-tier) payload.
///
/// v1 snapshots predate tiered storage: each column is one
/// whole-column [`EncodedBlock`] (`u8 encoding tag, u64 value count,
/// u64 data length, data`), with no block size, no per-block metadata
/// and no lifecycle states. They restore into a **fully hot** table with
/// the default tier block size — freezing is a policy decision the
/// restored store makes at its next batch boundary, not something to
/// invent while reading old bytes. Column min/max stats are recomputed
/// from the decoded values, matching the v1 writer's behavior (every
/// value it saved was still physically present).
fn decode_v1(payload: &[u8]) -> Result<Table> {
    let mut p = Reader::new(payload);

    // Schema.
    let arity = p.u16()? as usize;
    if arity == 0 {
        return Err(storage_err!("snapshot declares zero columns"));
    }
    let mut names = Vec::with_capacity(arity);
    for _ in 0..arity {
        let len = p.u16()? as usize;
        let raw = p.bytes(len)?;
        names.push(
            std::str::from_utf8(raw)
                .map_err(|_| storage_err!("column name is not UTF-8"))?
                .to_string(),
        );
    }

    // Columns: one whole-column encoded block each.
    let n = p.u64()? as usize;
    let mut columns: Vec<Vec<i64>> = Vec::with_capacity(arity);
    for c in 0..arity {
        let tag = p.u8()?;
        let encoding =
            Encoding::from_tag(tag).ok_or_else(|| storage_err!("unknown encoding tag {tag}"))?;
        let count = p.u64()? as usize;
        if count != n {
            return Err(storage_err!("column {c} has {count} values, expected {n}"));
        }
        let data_len = p.u64()? as usize;
        let data = Bytes::copy_from_slice(p.bytes(data_len)?);
        let values = EncodedBlock::from_parts(encoding, count, data).decode();
        if values.len() != n {
            return Err(storage_err!(
                "column {c} decoded to {} values, expected {n}",
                values.len()
            ));
        }
        columns.push(values);
    }

    // Forgotten rows.
    let forgotten_count = p.u64()? as usize;
    let mut forgotten = Vec::with_capacity(forgotten_count);
    for _ in 0..forgotten_count {
        let row = p.varint()?;
        let epoch = p.varint()?;
        if row as usize >= n {
            return Err(storage_err!("forgotten row {row} out of range"));
        }
        forgotten.push((RowId(row), epoch));
    }

    // Insert epochs.
    let mut epochs = Vec::with_capacity(n);
    let mut prev = 0i64;
    for _ in 0..n {
        prev += p.signed_varint()?;
        if prev < 0 {
            return Err(storage_err!("negative insert epoch"));
        }
        epochs.push(prev as u64);
    }

    // Access stats.
    let touched_count = p.u64()? as usize;
    let mut touched = Vec::with_capacity(touched_count);
    for _ in 0..touched_count {
        let row = p.varint()?;
        let freq = p.f64()?;
        let last = p.varint()?;
        if row as usize >= n {
            return Err(storage_err!("touched row {row} out of range"));
        }
        touched.push((RowId(row), freq, last));
    }
    p.expect_end()?;

    // Rebuild as a fully hot tiered table. Stats recompute from the
    // decoded values (a v1 snapshot physically held every row), matching
    // what the v1 reader's per-row insert path produced.
    let mut tiers = Vec::with_capacity(arity);
    let mut stats = Vec::with_capacity(arity);
    for values in columns {
        let mut tier = TieredColumn::new();
        stats.push((values.iter().min().copied(), values.iter().max().copied()));
        tier.extend_from_slice(&values);
        tiers.push(tier);
    }
    let mut table = Table::from_restored_parts(
        Schema::new(names),
        crate::types::DEFAULT_BLOCK_ROWS,
        tiers,
        epochs,
        &forgotten,
    )?;
    for (c, (min, max)) in stats.into_iter().enumerate() {
        table.restore_col_stats(c, min, max);
    }
    for (row, freq, last) in touched {
        table.access_mut().restore(row, freq, last);
    }
    table.check_invariants()?;
    Ok(table)
}

/// Write a snapshot atomically: temp file in the same directory, fsync,
/// rename over the target, fsync the directory. The rename is the commit
/// point — a crash before it leaves the old snapshot untouched — and the
/// directory fsync pins the commit: without it, power loss could bring
/// the *old* snapshot back after checkpoint/shred already pruned or
/// zeroed the segments it needs.
pub fn save(table: &Table, path: &Path) -> Result<()> {
    save_with(
        &crate::persist::vfs::StdVfs,
        table,
        RecoveryMeta::default(),
        path,
    )
}

/// [`save`], parameterized over the storage backend and recovery meta.
pub fn save_with(
    vfs: &dyn crate::persist::vfs::Vfs,
    table: &Table,
    meta: RecoveryMeta,
    path: &Path,
) -> Result<()> {
    let bytes = encode_with_meta(table, meta);
    let tmp = path.with_extension("tmp");
    vfs.write_file(&tmp, &bytes)?;
    vfs.sync_file(&tmp)?;
    vfs.rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        vfs.sync_dir(parent)?;
    }
    Ok(())
}

/// Load a snapshot from disk.
pub fn load(path: &Path) -> Result<Table> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

/// Load a snapshot and its recovery meta through a [`Vfs`].
///
/// [`Vfs`]: crate::persist::vfs::Vfs
pub fn load_with(vfs: &dyn crate::persist::vfs::Vfs, path: &Path) -> Result<(Table, RecoveryMeta)> {
    let bytes = vfs.read(path)?;
    decode_with_meta(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_util::SimRng;

    fn sample_table() -> Table {
        let mut t = Table::new(Schema::new(vec!["k", "v"]));
        let mut rng = SimRng::new(3);
        for i in 0..500i64 {
            t.insert(&[i, rng.range_i64(0, 1000)], (i / 100) as u64)
                .unwrap();
        }
        for r in (0..500u64).step_by(7) {
            t.forget(RowId(r), 3).unwrap();
        }
        for r in (0..500u64).step_by(11) {
            t.access_mut().touch(RowId(r), 2);
            t.access_mut().touch(RowId(r), 4);
        }
        t
    }

    fn assert_tables_equal(a: &Table, b: &Table) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.active_rows(), b.active_rows());
        for r in 0..a.num_rows() {
            let id = RowId::from(r);
            for c in 0..a.schema().arity() {
                assert_eq!(a.value(c, id), b.value(c, id), "value {c}@{r}");
            }
            assert_eq!(a.insert_epoch(id), b.insert_epoch(id), "epoch @{r}");
            assert_eq!(
                a.activity().is_active(id),
                b.activity().is_active(id),
                "activity @{r}"
            );
            assert_eq!(
                a.activity().died_at(id),
                b.activity().died_at(id),
                "died_at @{r}"
            );
            assert_eq!(
                a.access().frequency(id),
                b.access().frequency(id),
                "freq @{r}"
            );
            assert_eq!(
                a.access().last_access(id),
                b.access().last_access(id),
                "last @{r}"
            );
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_table();
        let restored = decode(&encode(&t)).unwrap();
        assert_tables_equal(&t, &restored);
    }

    #[test]
    fn recovery_meta_round_trips_and_defaults_to_zero() {
        let t = sample_table();
        let meta = RecoveryMeta {
            last_seqno: 12345,
            blocks_dropped: 6,
            blocks_recompressed: 2,
        };
        let (restored, back) = decode_with_meta(&encode_with_meta(&t, meta)).unwrap();
        assert_eq!(back, meta);
        assert_tables_equal(&t, &restored);
        // Plain encode carries zero meta; v1 payloads decode to zero too.
        let (_, zero) = decode_with_meta(&encode(&t)).unwrap();
        assert_eq!(zero, RecoveryMeta::default());
        let (_, v1_meta) = decode_with_meta(&encode_v1(&t)).unwrap();
        assert_eq!(v1_meta, RecoveryMeta::default());
    }

    #[test]
    fn round_trip_empty_table() {
        let t = Table::new(Schema::single("a"));
        let restored = decode(&encode(&t)).unwrap();
        assert_eq!(restored.num_rows(), 0);
        assert_eq!(restored.schema().arity(), 1);
    }

    #[test]
    fn serial_data_compresses_well() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&(0..10_000).collect::<Vec<i64>>(), 0)
            .unwrap();
        let snap = encode(&t);
        // 10k serial i64s = 80 KB plain; delta coding brings the column
        // to ~1 byte/value (plus 1 byte/row of epoch deltas).
        assert!(snap.len() < 25_000, "snapshot is {} bytes", snap.len());
        assert_tables_equal(&t, &decode(&snap).unwrap());
    }

    #[test]
    fn tiered_table_round_trips_layout_exactly() {
        // Freeze, forget, drop a block, recompress another: the restored
        // table must reproduce the tier layout and the resident bytes.
        let values: Vec<i64> = (0..4096).map(|i| if i % 2 == 0 { 9 } else { i }).collect();
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&values, 0).unwrap();
        t.freeze_upto(4096);
        for r in 0..1024u64 {
            t.forget(RowId(r), 1).unwrap();
        }
        for r in (1025..2048u64).step_by(2) {
            t.forget(RowId(r), 2).unwrap();
        }
        t.drop_forgotten_blocks();
        t.recompress_frozen(0.6);
        let restored = decode(&encode(&t)).unwrap();
        assert_eq!(restored.frozen_blocks(), t.frozen_blocks());
        assert_eq!(restored.bytes_frozen(), t.bytes_frozen());
        for b in 0..t.frozen_blocks() {
            let (a, r) = (
                t.col_tier(0).frozen(b).unwrap(),
                restored.col_tier(0).frozen(b).unwrap(),
            );
            assert_eq!(a.state(), r.state(), "block {b} state");
            assert_eq!(a.meta(), r.meta(), "block {b} meta");
            assert_eq!(a.encoded(), r.encoded(), "block {b} payload");
        }
        // Active rows answer identically; history bounds survive even
        // though block 0's values are gone.
        for row in t.iter_active() {
            assert_eq!(t.value(0, row), restored.value(0, row));
        }
        assert_eq!(restored.max_seen(0), t.max_seen(0));
        assert_eq!(restored.min_seen(0), t.min_seen(0));
        assert_eq!(restored.active_rows(), t.active_rows());
        restored.check_invariants().unwrap();
    }

    /// The version-1 (pre-tier) snapshot writer, kept verbatim from the
    /// PR-2 era as the backward-compat reference: `tests/fixtures/
    /// v1_pre_tier.snap` was produced by this code, and [`decode`] must
    /// keep loading both the fixture and anything this emits.
    pub(super) fn encode_v1(table: &Table) -> Vec<u8> {
        use crate::types::Value;
        let mut payload = BytesMut::new();
        let schema = table.schema();
        payload.put_u16_le(schema.arity() as u16);
        for def in schema.columns() {
            payload.put_u16_le(def.name.len() as u16);
            payload.put_slice(def.name.as_bytes());
        }
        let n = table.num_rows();
        payload.put_u64_le(n as u64);
        for c in 0..schema.arity() {
            let values: Vec<Value> = (0..n).map(|r| table.value(c, RowId::from(r))).collect();
            let block = EncodedBlock::encode_auto(&values);
            payload.put_u8(block.encoding().tag());
            payload.put_u64_le(block.len() as u64);
            payload.put_u64_le(block.data().len() as u64);
            payload.put_slice(block.data());
        }
        let forgotten: Vec<(u64, u64)> = (0..n)
            .filter_map(|r| {
                let id = RowId::from(r);
                table.activity().died_at(id).map(|e| (r as u64, e))
            })
            .collect();
        payload.put_u64_le(forgotten.len() as u64);
        for (row, epoch) in forgotten {
            write_varint(&mut payload, row);
            write_varint(&mut payload, epoch);
        }
        let mut prev = 0i64;
        for &e in table.insert_epochs() {
            write_signed(&mut payload, e as i64 - prev);
            prev = e as i64;
        }
        let touched: Vec<u64> = (0..n as u64)
            .filter(|&r| table.access().frequency(RowId(r)) > 0.0)
            .collect();
        payload.put_u64_le(touched.len() as u64);
        for r in touched {
            write_varint(&mut payload, r);
            payload.put_f64_le(table.access().frequency(RowId(r)));
            write_varint(&mut payload, table.access().last_access(RowId(r)));
        }
        let payload = payload.freeze();
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out
    }

    use bytes::{BufMut, BytesMut};

    #[test]
    fn v1_snapshot_loads_into_fully_hot_table() {
        let t = sample_table();
        let restored = decode(&encode_v1(&t)).unwrap();
        assert_tables_equal(&t, &restored);
        // v1 predates tiering: the restore must come back fully hot with
        // the default block size, ready for the store's own freeze
        // scheduling.
        assert!(!restored.has_frozen(), "v1 restores fully hot");
        assert_eq!(restored.block_rows(), crate::types::DEFAULT_BLOCK_ROWS);
        assert_eq!(restored.max_seen(0), t.max_seen(0));
        assert_eq!(restored.min_seen(0), t.min_seen(0));
        // Re-encoding writes the current version; the round trip holds.
        let reencoded = decode(&encode(&restored)).unwrap();
        assert_tables_equal(&restored, &reencoded);
    }

    #[test]
    fn v1_corruption_is_still_detected() {
        let mut bytes = encode_v1(&sample_table());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(decode(&bytes).is_err(), "v1 CRC must stay enforced");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample_table());
        bytes[0] ^= 0xFF;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode(&sample_table());
        bytes[8] = 99;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn payload_corruption_is_detected() {
        let bytes = encode(&sample_table());
        // Flip one bit in every payload byte position (sparsely, to keep
        // the test fast) — the CRC must catch each.
        for i in (20..bytes.len() - 4).step_by(97) {
            let mut dup = bytes.clone();
            dup[i] ^= 0x01;
            assert!(decode(&dup).is_err(), "flip at {i} survived");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_table());
        for cut in [0, 4, 8, 19, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} survived");
        }
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join(format!("amn-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        let t = sample_table();
        save(&t, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_tables_equal(&t, &restored);
        // No stray temp file remains.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
