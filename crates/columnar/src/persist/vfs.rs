//! Virtual file system seam for the durability layer.
//!
//! Every byte the persistence machinery puts on (or takes off) disk goes
//! through a [`Vfs`]: the WAL segments, snapshots, shredding and the
//! cold-store all speak this narrow interface instead of `std::fs`
//! directly. Production uses the passthrough [`StdVfs`]; tests swap in
//! [`FaultVfs`](super::fault::FaultVfs) to script torn writes, I/O errors
//! and crash points at exact operation boundaries — which is the only
//! honest way to prove recovery: a crash you cannot place is a crash you
//! cannot test.
//!
//! The trait is deliberately whole-file / append-only shaped (no random
//! writes): the durability layer never updates bytes in place except to
//! *destroy* them ([`Vfs::overwrite`], used by the shredder) or to *cut*
//! a torn tail ([`Vfs::truncate`]). Directory *entries* are made durable
//! explicitly ([`Vfs::sync_dir`]) after every rename-commit, segment
//! create and segment unlink — file data fsyncs alone do not stop a
//! pruned or shredded entry from reappearing after power loss. Keeping
//! the interface this small is what lets the out-of-core cold tier reuse
//! it for spill files later.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use amnesia_util::Result;

/// Shared handle to a VFS implementation.
pub type SharedVfs = Arc<dyn Vfs>;

/// An open append-only file handle.
pub trait VfsFile: Send {
    /// Append bytes at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;

    /// Flush OS buffers to stable storage (fsync).
    fn sync(&mut self) -> Result<()>;
}

/// File operations the durability layer is allowed to perform.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Create a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> Result<()>;

    /// Read a whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;

    /// Create (truncating) a file with the given contents.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<()>;

    /// Open (creating if missing) a file for appending.
    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>>;

    /// fsync an existing file by path (used after rename-based commits).
    fn sync_file(&self, path: &Path) -> Result<()>;

    /// fsync a directory, making entry creates, renames and unlinks
    /// inside it durable. Without this, a rename-committed snapshot or
    /// an unlinked (pruned/shredded) segment can reappear after power
    /// loss even though the data inside each file was fsynced.
    fn sync_dir(&self, path: &Path) -> Result<()>;

    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;

    /// Remove a file.
    fn remove_file(&self, path: &Path) -> Result<()>;

    /// Truncate a file to `len` bytes in place (torn-tail repair).
    fn truncate(&self, path: &Path, len: u64) -> Result<()>;

    /// Overwrite the first `bytes.len()` bytes of an existing file *in
    /// place* (the shredder's zero-fill; never extends the file).
    fn overwrite(&self, path: &Path, bytes: &[u8]) -> Result<()>;

    /// Length of a file in bytes.
    fn file_len(&self, path: &Path) -> Result<u64>;

    /// Does the path exist?
    fn exists(&self, path: &Path) -> bool;

    /// List the files in a directory (files only, unsorted).
    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>>;
}

/// Passthrough [`Vfs`] over `std::fs` — the production backend.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl StdVfs {
    /// A shareable handle to the passthrough VFS.
    pub fn shared() -> SharedVfs {
        Arc::new(StdVfs)
    }
}

/// Append handle over a real [`File`].
struct StdFile(File);

impl VfsFile for StdFile {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.0.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.0.sync_data()?;
        Ok(())
    }
}

impl Vfs for StdVfs {
    fn create_dir_all(&self, path: &Path) -> Result<()> {
        std::fs::create_dir_all(path)?;
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        Ok(std::fs::read(path)?)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        std::fs::write(path, bytes)?;
        Ok(())
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn sync_file(&self, path: &Path) -> Result<()> {
        File::open(path)?.sync_all()?;
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        // On POSIX a directory opens read-only and fsyncs like a file.
        File::open(path)?.sync_all()?;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()?;
        Ok(())
    }

    fn overwrite(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let mut f = OpenOptions::new().write(true).open(path)?;
        f.seek(SeekFrom::Start(0))?;
        f.write_all(bytes)?;
        f.sync_data()?;
        Ok(())
    }

    fn file_len(&self, path: &Path) -> Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
}

/// Read a file, returning `None` when it does not exist (other errors
/// still propagate) — the common "maybe there is a log here" pattern.
pub fn read_if_exists(vfs: &dyn Vfs, path: &Path) -> Result<Option<Vec<u8>>> {
    if !vfs.exists(path) {
        return Ok(None);
    }
    match vfs.read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(amnesia_util::Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amn-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_read_truncate_round_trip() {
        let vfs = StdVfs;
        let path = tmp("a.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = vfs.open_append(&path).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        assert_eq!(vfs.file_len(&path).unwrap(), 11);
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        // Reopening for append extends the truncated prefix.
        let mut f = vfs.open_append(&path).unwrap();
        f.append(b"!").unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello!");
    }

    #[test]
    fn overwrite_destroys_bytes_in_place() {
        let vfs = StdVfs;
        let path = tmp("shred.bin");
        vfs.write_file(&path, b"secret-payload").unwrap();
        vfs.overwrite(&path, &[0u8; 14]).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), vec![0u8; 14]);
        assert_eq!(vfs.file_len(&path).unwrap(), 14, "never extends");
    }

    #[test]
    fn rename_and_listing() {
        let vfs = StdVfs;
        let a = tmp("ren-a.bin");
        let b = tmp("ren-b.bin");
        vfs.write_file(&a, b"x").unwrap();
        let _ = std::fs::remove_file(&b);
        vfs.rename(&a, &b).unwrap();
        assert!(!vfs.exists(&a));
        assert!(vfs.exists(&b));
        let dir = b.parent().unwrap();
        assert!(vfs.list_dir(dir).unwrap().contains(&b));
    }

    #[test]
    fn read_if_exists_distinguishes_missing() {
        let vfs = StdVfs;
        assert_eq!(read_if_exists(&vfs, &tmp("nope.bin")).unwrap(), None);
        let p = tmp("yes.bin");
        vfs.write_file(&p, b"y").unwrap();
        assert_eq!(read_if_exists(&vfs, &p).unwrap(), Some(b"y".to_vec()));
    }
}
