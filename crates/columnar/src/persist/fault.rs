//! Scripted fault injection for crash-recovery testing.
//!
//! [`FaultVfs`] wraps the real filesystem and injects failures at exact
//! *operation* boundaries: the Nth mutating call can tear (write only a
//! prefix of its bytes, byte-granular), fail with an I/O error, or
//! "crash" — after which every further operation fails, modelling a dead
//! process whose files survive. Because the underlying bytes are real,
//! recovery then runs against the genuinely-left-behind state: open the
//! same directory with a clean VFS and assert the acknowledged prefix
//! came back.
//!
//! The crash-matrix pattern:
//!
//! 1. run the workload once over a counting `FaultVfs::new()` and read
//!    [`FaultVfs::op_count`] — every mutating op is a potential crash
//!    point;
//! 2. for each point `k`, rerun in a fresh directory with
//!    `FaultVfs::crash_at(k)` until the injected crash fires;
//! 3. reopen with [`StdVfs`] and assert consistency.
//!
//! Mutating operations are counted; reads are passed through unfaulted
//! (a reader cannot corrupt durable state). The op log
//! ([`FaultVfs::op_log`]) records every mutating call, so tests can also
//! assert *how* the layer touched disk — e.g. that torn-tail repair
//! truncated in place instead of rewriting the file.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use amnesia_util::{storage_err, Result};

use super::vfs::{StdVfs, Vfs, VfsFile};

/// What happens when a scripted fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Write only the first `keep` bytes of the buffer, then crash (all
    /// later operations fail). Models a torn append / partial sector.
    TornWrite {
        /// Bytes of the buffer that reach the file before the tear.
        keep: usize,
    },
    /// Fail this one operation with an I/O error; later operations
    /// proceed (a transient fault the caller may observe and handle).
    Error,
    /// Fail this and every subsequent operation (process death before
    /// the operation took effect).
    Crash,
}

/// One scripted fault: fire `kind` on the `at_op`-th mutating operation
/// (0-based, in [`FaultVfs`] op-count order).
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// Index of the mutating operation to fault.
    pub at_op: u64,
    /// Failure mode.
    pub kind: FaultKind,
}

#[derive(Debug, Default)]
struct State {
    ops: u64,
    faults: Vec<Fault>,
    crashed: bool,
    log: Vec<String>,
}

impl State {
    /// Account one mutating op; decide its fate.
    fn admit(&mut self, desc: String) -> Result<Option<FaultKind>> {
        if self.crashed {
            return Err(storage_err!("fault-vfs: crashed (op after injected crash)"));
        }
        let idx = self.ops;
        self.ops += 1;
        self.log.push(desc);
        let fault = self.faults.iter().find(|f| f.at_op == idx).map(|f| f.kind);
        if let Some(FaultKind::Crash | FaultKind::TornWrite { .. }) = fault {
            self.crashed = true;
        }
        Ok(fault)
    }
}

/// A [`Vfs`] that injects scripted faults into an inner [`StdVfs`].
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: StdVfs,
    state: Arc<Mutex<State>>,
}

impl Default for FaultVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultVfs {
    /// Counting VFS with no faults (the recording pass of a crash
    /// matrix).
    pub fn new() -> Self {
        Self::with_faults(Vec::new())
    }

    /// VFS with an explicit fault script.
    pub fn with_faults(faults: Vec<Fault>) -> Self {
        Self {
            inner: StdVfs,
            state: Arc::new(Mutex::new(State {
                faults,
                ..State::default()
            })),
        }
    }

    /// Crash on the `k`-th mutating operation.
    pub fn crash_at(k: u64) -> Self {
        Self::with_faults(vec![Fault {
            at_op: k,
            kind: FaultKind::Crash,
        }])
    }

    /// Tear the `k`-th mutating operation down to `keep` bytes, then
    /// crash.
    pub fn torn_at(k: u64, keep: usize) -> Self {
        Self::with_faults(vec![Fault {
            at_op: k,
            kind: FaultKind::TornWrite { keep },
        }])
    }

    /// Fail the `k`-th mutating operation with a transient I/O error.
    pub fn error_at(k: u64) -> Self {
        Self::with_faults(vec![Fault {
            at_op: k,
            kind: FaultKind::Error,
        }])
    }

    /// Mutating operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().expect("fault state").ops
    }

    /// Has an injected crash fired?
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("fault state").crashed
    }

    /// The mutating-operation log (`"append path 123"`-style entries).
    pub fn op_log(&self) -> Vec<String> {
        self.state.lock().expect("fault state").log.clone()
    }

    fn admit(&self, desc: String) -> Result<Option<FaultKind>> {
        self.state.lock().expect("fault state").admit(desc)
    }

    fn guard_read(&self) -> Result<()> {
        if self.state.lock().expect("fault state").crashed {
            return Err(storage_err!("fault-vfs: crashed (read after crash)"));
        }
        Ok(())
    }
}

/// Append handle that consults the shared fault state on every write.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    state: Arc<Mutex<State>>,
}

impl VfsFile for FaultFile {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        let fault = self.state.lock().expect("fault state").admit(format!(
            "append {} {}",
            self.path.display(),
            bytes.len()
        ))?;
        match fault {
            None => self.inner.append(bytes),
            Some(FaultKind::TornWrite { keep }) => {
                let keep = keep.min(bytes.len());
                self.inner.append(&bytes[..keep])?;
                Err(storage_err!("fault-vfs: torn append ({keep} bytes kept)"))
            }
            Some(FaultKind::Error) => Err(storage_err!("fault-vfs: injected append error")),
            Some(FaultKind::Crash) => Err(storage_err!("fault-vfs: crash before append")),
        }
    }

    fn sync(&mut self) -> Result<()> {
        let fault = self
            .state
            .lock()
            .expect("fault state")
            .admit(format!("fsync {}", self.path.display()))?;
        match fault {
            None => self.inner.sync(),
            Some(_) => Err(storage_err!("fault-vfs: injected fsync failure")),
        }
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, path: &Path) -> Result<()> {
        // Directory creation happens once at setup; not a crash point.
        self.inner.create_dir_all(path)
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        self.guard_read()?;
        self.inner.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.admit(format!("write_file {} {}", path.display(), bytes.len()))? {
            None => self.inner.write_file(path, bytes),
            Some(FaultKind::TornWrite { keep }) => {
                self.inner
                    .write_file(path, &bytes[..keep.min(bytes.len())])?;
                Err(storage_err!("fault-vfs: torn write_file"))
            }
            Some(FaultKind::Error) => Err(storage_err!("fault-vfs: injected write_file error")),
            Some(FaultKind::Crash) => Err(storage_err!("fault-vfs: crash before write_file")),
        }
    }

    fn open_append(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        // Opening is not a mutation of durable *contents*; faults attach
        // to the writes performed through the handle.
        self.guard_read()?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_append(path)?,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        }))
    }

    fn sync_file(&self, path: &Path) -> Result<()> {
        match self.admit(format!("sync_file {}", path.display()))? {
            None => self.inner.sync_file(path),
            Some(_) => Err(storage_err!("fault-vfs: injected sync_file failure")),
        }
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        match self.admit(format!("sync_dir {}", path.display()))? {
            None => self.inner.sync_dir(path),
            Some(_) => Err(storage_err!("fault-vfs: injected sync_dir failure")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        match self.admit(format!("rename {} {}", from.display(), to.display()))? {
            None => self.inner.rename(from, to),
            // Rename is atomic in the model: it either happens or not.
            Some(_) => Err(storage_err!("fault-vfs: crash before rename")),
        }
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        match self.admit(format!("remove {}", path.display()))? {
            None => self.inner.remove_file(path),
            Some(_) => Err(storage_err!("fault-vfs: crash before remove")),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<()> {
        match self.admit(format!("truncate {} {len}", path.display()))? {
            None => self.inner.truncate(path, len),
            Some(_) => Err(storage_err!("fault-vfs: crash before truncate")),
        }
    }

    fn overwrite(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.admit(format!("overwrite {} {}", path.display(), bytes.len()))? {
            None => self.inner.overwrite(path, bytes),
            Some(FaultKind::TornWrite { keep }) => {
                self.inner
                    .overwrite(path, &bytes[..keep.min(bytes.len())])?;
                Err(storage_err!("fault-vfs: torn overwrite"))
            }
            Some(_) => Err(storage_err!("fault-vfs: crash before overwrite")),
        }
    }

    fn file_len(&self, path: &Path) -> Result<u64> {
        self.guard_read()?;
        self.inner.file_len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<PathBuf>> {
        self.guard_read()?;
        self.inner.list_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amn-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn counting_vfs_passes_through_and_counts() {
        let vfs = FaultVfs::new();
        let path = tmp("count.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = vfs.open_append(&path).unwrap();
        f.append(b"abc").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.write_file(&path, b"xyz").unwrap();
        assert_eq!(vfs.op_count(), 3, "append, fsync, write_file");
        assert!(!vfs.crashed());
        assert_eq!(vfs.read(&path).unwrap(), b"xyz");
        let log = vfs.op_log();
        assert!(log[0].starts_with("append"), "{log:?}");
        assert!(log[1].starts_with("fsync"), "{log:?}");
    }

    #[test]
    fn torn_write_keeps_exact_prefix_then_crashes() {
        let vfs = FaultVfs::torn_at(0, 2);
        let path = tmp("torn.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = vfs.open_append(&path).unwrap();
        assert!(f.append(b"abcdef").is_err());
        assert!(vfs.crashed());
        // Everything after the tear fails, including reads.
        assert!(f.append(b"zz").is_err());
        assert!(vfs.read(&path).is_err());
        // The real file holds exactly the torn prefix.
        assert_eq!(std::fs::read(&path).unwrap(), b"ab");
    }

    #[test]
    fn transient_error_does_not_latch() {
        let vfs = FaultVfs::error_at(1);
        let path = tmp("transient.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = vfs.open_append(&path).unwrap();
        f.append(b"a").unwrap();
        assert!(f.append(b"b").is_err(), "op 1 faults");
        f.append(b"c").unwrap();
        assert!(!vfs.crashed());
        assert_eq!(std::fs::read(&path).unwrap(), b"ac");
    }

    #[test]
    fn crash_blocks_every_later_op() {
        let vfs = FaultVfs::crash_at(1);
        let path = tmp("crash.bin");
        let _ = std::fs::remove_file(&path);
        vfs.write_file(&path, b"one").unwrap();
        assert!(vfs.write_file(&path, b"two").is_err());
        assert!(vfs.remove_file(&path).is_err());
        assert!(vfs.truncate(&path, 0).is_err());
        assert!(vfs.rename(&path, &tmp("other.bin")).is_err());
        // The pre-crash bytes survive untouched.
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
    }
}
