//! Rotating, CRC-framed, codec-compressed WAL segments.
//!
//! The log is a directory of `wal-<index>.seg` files. Each segment is:
//!
//! ```text
//! header (36 bytes):
//!   magic "AMNWSEG1"      8 bytes
//!   u32   version (= 1)
//!   u32   flags (reserved)
//!   u64   first seqno in this segment
//!   u64   base epoch (epoch of the workload when the segment opened)
//!   u32   CRC-32 of the 32 header bytes above
//! records, each:
//!   u32   frame length
//!   frame: varint seqno, record body (see `wal` kinds)
//!   u32   CRC-32 of the frame
//! ```
//!
//! Every record carries a global, monotonically increasing sequence
//! number, and seqnos inside one segment are contiguous — so a segment
//! header alone names the half-open seqno range it starts, and the *next*
//! segment's header closes it. That is what lets checkpointing prune
//! ("every record at or below `through` is in the snapshot — unlink any
//! sealed segment whose successor starts at or below `through + 1`")
//! without reading a single record body, and what lets recovery skip
//! already-snapshotted records without trusting file order.
//!
//! Recovery ([`recover_segments`]) walks segments in index order and is
//! the place every crash mode lands:
//!
//! * **torn tail in the newest segment** — cut in place
//!   ([`Vfs::truncate`](super::vfs::Vfs::truncate), never rewrite) and
//!   keep appending after the
//!   valid prefix;
//! * **damage in an older segment** — everything after the damage point
//!   is unreachable without violating prefix order, so later segments are
//!   unlinked;
//! * **zeroed or headerless file** — a shred or segment-create crashed
//!   mid-write; the file is dead weight and is removed (any record it
//!   once held is either covered by the snapshot — the shredder only runs
//!   after a snapshot commits — or lost with the tear, in which case the
//!   seqno gap stops replay at the right place);
//! * **seqno gap between surviving segments** — stop: recovery never
//!   applies record *n+2* without *n+1*.
//!
//! The same machinery implements physical amnesia:
//! [`SegmentedWal::shred_covered`] zero-overwrites covered segments in
//! place, fsyncs the zeros, then unlinks — so a forgotten value's bytes
//! do not survive in the log once the drop has been checkpointed.

use std::path::{Path, PathBuf};

use amnesia_util::fixed::{le_u32, le_u64};
use amnesia_util::{crc32, storage_err, Result};
use bytes::BufMut;

use super::reader::Reader;
use super::vfs::{SharedVfs, VfsFile};
use super::wal::{next_frame, WalRecord};

/// Segment file magic.
pub const SEGMENT_MAGIC: &[u8; 8] = b"AMNWSEG1";
/// Segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Segment header length in bytes.
pub const SEGMENT_HEADER_LEN: usize = 36;
/// Segment file name prefix.
pub const SEGMENT_PREFIX: &str = "wal-";
/// Segment file name suffix.
pub const SEGMENT_SUFFIX: &str = ".seg";
/// Default rotation threshold: a segment that reaches this many bytes is
/// sealed and a fresh one opened.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024;

/// Durability-layer counters, surfaced through
/// [`PersistentTable::stats`](super::PersistentTable::stats) and the
/// core store's metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (across all segments).
    pub records_appended: u64,
    /// Framed bytes appended.
    pub bytes_appended: u64,
    /// Segments sealed because they reached the rotation threshold.
    pub segments_rotated: u64,
    /// Segments destroyed by the shredder.
    pub segments_shredded: u64,
    /// Bytes zero-overwritten by the shredder.
    pub bytes_shredded: u64,
    /// fsync calls issued by the log against segment *data*.
    pub fsyncs: u64,
    /// fsync calls issued against the log *directory* (after segment
    /// creates and prune/shred unlinks, so the entries are durable).
    pub dir_fsyncs: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

/// Path of segment `index` inside `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:08}{SEGMENT_SUFFIX}"))
}

/// Parse a segment index out of a file name, if it is one of ours.
fn segment_index(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?;
    digits.parse().ok()
}

fn encode_header(first_seqno: u64, base_epoch: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..8].copy_from_slice(SEGMENT_MAGIC);
    h[8..12].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&0u32.to_le_bytes());
    h[16..24].copy_from_slice(&first_seqno.to_le_bytes());
    h[24..32].copy_from_slice(&base_epoch.to_le_bytes());
    let crc = crc32(&h[..32]);
    h[32..36].copy_from_slice(&crc.to_le_bytes());
    h
}

/// A parsed segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Sequence number of the first record this segment may hold.
    pub first_seqno: u64,
    /// Workload epoch when the segment was opened.
    pub base_epoch: u64,
}

/// Decode and validate a segment header. `None` means the file is not a
/// usable segment (too short, bad magic/version, checksum mismatch — all
/// of which a crashed shred or create can leave behind).
pub fn decode_header(bytes: &[u8]) -> Option<SegmentHeader> {
    if bytes.len() < SEGMENT_HEADER_LEN || &bytes[..8] != SEGMENT_MAGIC {
        return None;
    }
    // Checked reads (the length test above makes them infallible, but a
    // short slice must yield `None`, never a panic — lint rule `panic`).
    let version = le_u32(&bytes[8..])?;
    if version != SEGMENT_VERSION {
        return None;
    }
    let stored = le_u32(&bytes[32..])?;
    if crc32(&bytes[..32]) != stored {
        return None;
    }
    Some(SegmentHeader {
        first_seqno: le_u64(&bytes[16..])?,
        base_epoch: le_u64(&bytes[24..])?,
    })
}

/// A sealed (no longer appended-to) segment the log still tracks.
#[derive(Debug, Clone)]
struct SealedSegment {
    index: u64,
    first_seqno: u64,
}

/// The active (appendable) segment.
struct ActiveSegment {
    index: u64,
    first_seqno: u64,
    file: Box<dyn VfsFile>,
    bytes: u64,
}

impl std::fmt::Debug for ActiveSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSegment")
            .field("index", &self.index)
            .field("first_seqno", &self.first_seqno)
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// The rotating segmented write-ahead log.
#[derive(Debug)]
pub struct SegmentedWal {
    vfs: SharedVfs,
    dir: PathBuf,
    sealed: Vec<SealedSegment>,
    active: Option<ActiveSegment>,
    next_index: u64,
    next_seqno: u64,
    segment_bytes: u64,
    stats: WalStats,
}

/// What [`recover_segments`] reconstructed.
#[derive(Debug)]
pub struct SegmentRecovery {
    /// The reopened log, positioned to append after the last valid record.
    pub wal: SegmentedWal,
    /// Records with seqno above the snapshot horizon, in seqno order —
    /// exactly the tail the caller must replay on top of the snapshot.
    pub records: Vec<WalRecord>,
    /// Sequence number of the last record in `records` (or the snapshot
    /// horizon when the tail is empty).
    pub last_seqno: u64,
    /// False when any repair was needed (torn tail, dead segment, seqno
    /// gap): some unacknowledged suffix was discarded.
    pub clean: bool,
}

impl SegmentedWal {
    /// Create a fresh log in `dir`. The first record gets sequence number
    /// `start_seqno`.
    pub fn create(vfs: SharedVfs, dir: &Path, start_seqno: u64) -> Result<Self> {
        vfs.create_dir_all(dir)?;
        Ok(Self {
            vfs,
            dir: dir.to_path_buf(),
            sealed: Vec::new(),
            active: None,
            next_index: 0,
            next_seqno: start_seqno,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            stats: WalStats::default(),
        })
    }

    /// Override the rotation threshold (tests use tiny segments to force
    /// rotation; the default is [`DEFAULT_SEGMENT_BYTES`]).
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.segment_bytes = bytes.max(SEGMENT_HEADER_LEN as u64 + 1);
    }

    /// Counters so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Seqno the next appended record will get.
    pub fn next_seqno(&self) -> u64 {
        self.next_seqno
    }

    /// Number of live segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(self.active.is_some())
    }

    /// Open a fresh active segment, sealing the current one.
    fn rotate(&mut self, base_epoch: u64) -> Result<()> {
        if let Some(active) = self.active.take() {
            self.sealed.push(SealedSegment {
                index: active.index,
                first_seqno: active.first_seqno,
            });
            self.stats.segments_rotated += 1;
        }
        let index = self.next_index;
        self.next_index += 1;
        let path = segment_path(&self.dir, index);
        let mut file = self.vfs.open_append(&path)?;
        let header = encode_header(self.next_seqno, base_epoch);
        file.append(&header)?;
        // The new entry must be durable: a data fsync alone does not
        // guarantee the file is findable after power loss.
        self.vfs.sync_dir(&self.dir)?;
        self.stats.dir_fsyncs += 1;
        self.active = Some(ActiveSegment {
            index,
            first_seqno: self.next_seqno,
            file,
            bytes: SEGMENT_HEADER_LEN as u64,
        });
        Ok(())
    }

    /// Append one record; returns its sequence number. Buffered by the
    /// OS — call [`SegmentedWal::sync`] (or use a per-record sync policy)
    /// for durability.
    pub fn append(&mut self, record: &WalRecord, epoch_hint: u64) -> Result<u64> {
        let needs_rotate = match &self.active {
            None => true,
            Some(a) => a.bytes >= self.segment_bytes,
        };
        if needs_rotate {
            self.rotate(epoch_hint)?;
        }
        let seqno = self.next_seqno;
        let mut frame = bytes::BytesMut::new();
        crate::compress::varint::write_varint(&mut frame, seqno);
        frame.put_slice(&record.encode_body());
        let mut framed = Vec::with_capacity(frame.len() + 8);
        framed.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        framed.extend_from_slice(&frame);
        framed.extend_from_slice(&crc32(&frame).to_le_bytes());
        let Some(active) = self.active.as_mut() else {
            // rotate() always installs an active segment; if it somehow
            // did not, fail the append rather than crash mid-durability.
            return Err(storage_err!("wal append with no active segment"));
        };
        active.file.append(&framed)?;
        active.bytes += framed.len() as u64;
        self.next_seqno += 1;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += framed.len() as u64;
        Ok(seqno)
    }

    /// fsync the active segment.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(active) = self.active.as_mut() {
            active.file.sync()?;
            self.stats.fsyncs += 1;
        }
        Ok(())
    }

    /// Unlink sealed segments fully covered by a snapshot through
    /// `through_seqno`. Header bookkeeping only — no record is read. The
    /// active segment is never pruned (recovery's seqno filter skips its
    /// covered prefix instead).
    pub fn prune_covered(&mut self, through_seqno: u64) -> Result<()> {
        // Sealed segment i is fully covered iff its successor's first
        // seqno (sealed i+1, or the active segment) is <= through + 1.
        let mut keep = Vec::with_capacity(self.sealed.len());
        let mut removed = false;
        for i in 0..self.sealed.len() {
            let next_first = self
                .sealed
                .get(i + 1)
                .map(|s| s.first_seqno)
                .or(self.active.as_ref().map(|a| a.first_seqno))
                .unwrap_or(self.next_seqno);
            if next_first <= through_seqno.saturating_add(1) {
                self.vfs
                    .remove_file(&segment_path(&self.dir, self.sealed[i].index))?;
                removed = true;
            } else {
                keep.push(self.sealed[i].clone());
            }
        }
        self.sealed = keep;
        if removed {
            // Make the unlinks durable: a pruned segment that reappears
            // after power loss would replay records the snapshot already
            // covers at best, and resurrect shredded bytes at worst.
            self.vfs.sync_dir(&self.dir)?;
            self.stats.dir_fsyncs += 1;
        }
        Ok(())
    }

    /// Physically destroy every segment fully covered by a snapshot
    /// through `through_seqno`: zero-overwrite in place, fsync the
    /// zeros, unlink. When the active segment is covered too (the usual
    /// case right after a drop checkpoint) it is shredded as well and a
    /// fresh segment opens on the next append.
    ///
    /// Call only after the covering snapshot is durably committed — a
    /// crash mid-shred then loses nothing, because everything destroyed
    /// here is replayable from the snapshot.
    pub fn shred_covered(&mut self, through_seqno: u64) -> Result<()> {
        let mut doomed: Vec<u64> = Vec::new();
        let mut keep = Vec::with_capacity(self.sealed.len());
        for i in 0..self.sealed.len() {
            let next_first = self
                .sealed
                .get(i + 1)
                .map(|s| s.first_seqno)
                .or(self.active.as_ref().map(|a| a.first_seqno))
                .unwrap_or(self.next_seqno);
            if next_first <= through_seqno.saturating_add(1) {
                doomed.push(self.sealed[i].index);
            } else {
                keep.push(self.sealed[i].clone());
            }
        }
        self.sealed = keep;
        if self.next_seqno <= through_seqno + 1 {
            // Every record in the active segment is covered: drop the
            // handle and shred the file too.
            if let Some(active) = self.active.take() {
                doomed.push(active.index);
            }
        }
        let shredded = !doomed.is_empty();
        for index in doomed {
            let path = segment_path(&self.dir, index);
            let len = self.vfs.file_len(&path)? as usize;
            self.vfs.overwrite(&path, &vec![0u8; len])?;
            self.vfs.remove_file(&path)?;
            self.stats.segments_shredded += 1;
            self.stats.bytes_shredded += len as u64;
        }
        if shredded {
            // The unlinks are part of the destruction: fsync the
            // directory so no shredded entry can reappear after power
            // loss.
            self.vfs.sync_dir(&self.dir)?;
            self.stats.dir_fsyncs += 1;
        }
        Ok(())
    }

    /// Record a checkpoint in the counters (the snapshot itself is the
    /// caller's job).
    pub fn note_checkpoint(&mut self) {
        self.stats.checkpoints += 1;
    }
}

/// One parsed segment, before seqno filtering.
struct ParsedSegment {
    index: u64,
    path: PathBuf,
    first_seqno: u64,
    records: Vec<WalRecord>,
    /// Byte offset just past the last valid frame.
    valid_bytes: u64,
    /// File length as read.
    file_len: u64,
}

/// Parse a segment's frames. Seqnos must start at the header's
/// `first_seqno` and increase by one per record; any violation ends the
/// valid prefix (it cannot be distinguished from corruption).
fn parse_segment(bytes: &[u8], header: SegmentHeader) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN;
    let mut expected = header.first_seqno;
    while pos < bytes.len() {
        let Some((frame, next)) = next_frame(bytes, pos) else {
            break;
        };
        let mut r = Reader::new(frame);
        let Ok(seqno) = r.varint() else { break };
        if seqno != expected {
            break;
        }
        let body = &frame[r.position()..];
        let Ok(rec) = WalRecord::decode_body(body) else {
            break;
        };
        records.push(rec);
        expected += 1;
        pos = next;
    }
    (records, pos as u64)
}

/// Recover the segmented log in `dir` on top of a snapshot that covers
/// everything at or below `snap_seqno`. The reopened log rotates at
/// `segment_bytes` (pass [`DEFAULT_SEGMENT_BYTES`] when unconfigured —
/// a custom [`SegmentedWal::set_segment_bytes`] threshold must be passed
/// back in or it would silently revert on every open). Performs physical
/// repair as a side effect (see the module docs for the crash modes) and
/// returns the reopened log plus the record tail to replay.
pub fn recover_segments(
    vfs: SharedVfs,
    dir: &Path,
    snap_seqno: u64,
    segment_bytes: u64,
) -> Result<SegmentRecovery> {
    let segment_bytes = segment_bytes.max(SEGMENT_HEADER_LEN as u64 + 1);
    // Collect and order segment files by index.
    let mut found: Vec<(u64, PathBuf)> = vfs
        .list_dir(dir)?
        .into_iter()
        .filter_map(|p| segment_index(&p).map(|i| (i, p)))
        .collect();
    found.sort_by_key(|(i, _)| *i);

    let mut clean = true;
    let mut unlinked = false; // any entry removed: fsync the dir before returning
    let mut next_index = 0u64;
    let mut parsed: Vec<ParsedSegment> = Vec::new();
    let mut dead_after = false; // damage seen: unlink everything later
    for (index, path) in found {
        next_index = next_index.max(index + 1);
        if dead_after {
            clean = false;
            vfs.remove_file(&path)?;
            unlinked = true;
            continue;
        }
        let bytes = vfs.read(&path)?;
        let Some(header) = decode_header(&bytes) else {
            // Headerless / zeroed file: a shred or create died mid-way.
            clean = false;
            vfs.remove_file(&path)?;
            unlinked = true;
            continue;
        };
        let (records, valid_bytes) = parse_segment(&bytes, header);
        if valid_bytes < bytes.len() as u64 {
            // Damage inside this segment: nothing after it is usable.
            clean = false;
            dead_after = true;
        }
        parsed.push(ParsedSegment {
            index,
            path,
            first_seqno: header.first_seqno,
            records,
            valid_bytes,
            file_len: bytes.len() as u64,
        });
    }

    // Seqno filter: skip what the snapshot covers, stop at any gap.
    let mut expected = snap_seqno + 1;
    let mut out: Vec<WalRecord> = Vec::new();
    let mut kept: Vec<ParsedSegment> = Vec::new();
    let mut gap = false;
    for seg in parsed {
        if gap {
            clean = false;
            vfs.remove_file(&seg.path)?;
            unlinked = true;
            continue;
        }
        let lo = seg.first_seqno;
        let n = seg.records.len() as u64;
        if lo + n <= expected {
            // Fully covered by the snapshot (or empty below the horizon):
            // redundant — unlink now instead of carrying it forward,
            // unless it is the newest segment (kept as the append tail).
            kept.push(seg);
            continue;
        }
        if lo > expected {
            // Records between `expected` and `lo` are gone (a dead
            // segment took them): prefix order forbids applying anything
            // later.
            gap = true;
            clean = false;
            vfs.remove_file(&seg.path)?;
            unlinked = true;
            continue;
        }
        let skip = (expected - lo) as usize;
        out.extend(seg.records[skip..].iter().cloned());
        expected = lo + n;
        kept.push(seg);
    }

    // Physical repair of the newest surviving segment's torn tail: cut in
    // place so future appends extend the valid prefix. (Older segments
    // with damage caused everything after them to be unlinked above.)
    for (i, seg) in kept.iter().enumerate() {
        if seg.valid_bytes < seg.file_len {
            debug_assert_eq!(i, kept.len() - 1, "only the last segment can be torn here");
            vfs.truncate(&seg.path, seg.valid_bytes)?;
        }
    }

    // Prune fully-covered sealed segments (all but the last kept one).
    let mut sealed: Vec<SealedSegment> = Vec::new();
    let keep_tail = kept.len().saturating_sub(1);
    for (i, seg) in kept.iter().enumerate() {
        let covered = i < keep_tail && {
            let next_first = kept[i + 1].first_seqno;
            next_first <= expected && next_first <= snap_seqno.saturating_add(1)
        };
        if covered {
            vfs.remove_file(&seg.path)?;
            unlinked = true;
        } else if i < keep_tail {
            sealed.push(SealedSegment {
                index: seg.index,
                first_seqno: seg.first_seqno,
            });
        }
    }

    // Reopen the newest segment for appending if it is still small —
    // but only when the next seqno (`expected`) extends its record run
    // contiguously. A snapshot horizon past the segment's last record
    // (durable snapshot, unflushed WAL tail at crash under
    // per-batch/manual sync) would otherwise put seqno `expected`
    // straight after a lower seqno, an in-segment gap the next open
    // reads as corruption — silently discarding acknowledged records.
    // Sealing instead makes the next append rotate into a fresh segment
    // whose header starts at `expected`.
    let mut active = None;
    if let Some(seg) = kept.last() {
        let contiguous = seg.first_seqno + seg.records.len() as u64 == expected;
        if contiguous && seg.valid_bytes < segment_bytes {
            let file = vfs.open_append(&seg.path)?;
            active = Some(ActiveSegment {
                index: seg.index,
                first_seqno: seg.first_seqno,
                file,
                bytes: seg.valid_bytes,
            });
        } else {
            sealed.push(SealedSegment {
                index: seg.index,
                first_seqno: seg.first_seqno,
            });
        }
    }

    if unlinked {
        vfs.sync_dir(dir)?;
    }

    let last_seqno = expected - 1;
    let wal = SegmentedWal {
        vfs,
        dir: dir.to_path_buf(),
        sealed,
        active,
        next_index,
        next_seqno: expected,
        segment_bytes,
        stats: WalStats::default(),
    };
    Ok(SegmentRecovery {
        wal,
        records: out,
        last_seqno,
        clean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::vfs::StdVfs;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amn-seg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(i: i64) -> WalRecord {
        WalRecord::Insert {
            epoch: i as u64,
            rows: vec![vec![i, -i]],
        }
    }

    #[test]
    fn append_rotate_recover_round_trips() {
        let dir = tmp_dir("round");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        wal.set_segment_bytes(128); // force rotations
        let records: Vec<WalRecord> = (0..40).map(rec).collect();
        for r in &records {
            wal.append(r, 0).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 1, "tiny threshold must rotate");
        assert!(wal.stats().segments_rotated > 0);
        drop(wal);
        let rec = recover_segments(StdVfs::shared(), &dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(rec.clean);
        assert_eq!(rec.records, records);
        assert_eq!(rec.last_seqno, 40);
        assert_eq!(rec.wal.next_seqno(), 41);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_skips_snapshot_covered_records_and_prunes() {
        let dir = tmp_dir("skip");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        wal.set_segment_bytes(96);
        let records: Vec<WalRecord> = (0..30).map(rec).collect();
        for r in &records {
            wal.append(r, 0).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Snapshot covers the first 12 records.
        let rec = recover_segments(StdVfs::shared(), &dir, 12, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(rec.clean);
        assert_eq!(rec.records, records[12..]);
        assert_eq!(rec.last_seqno, 30);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_cut_in_place_and_appendable() {
        let dir = tmp_dir("torn");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        for i in 0..5 {
            wal.append(&rec(i), 0).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let path = segment_path(&dir, 0);
        let full = std::fs::read(&path).unwrap();
        // Tear mid-record.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full.len() as u64 - 3).unwrap();
        drop(f);
        let outcome = recover_segments(StdVfs::shared(), &dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(!outcome.clean);
        assert_eq!(outcome.records, (0..4).map(rec).collect::<Vec<_>>());
        // Repair happened in place: the file now ends at the valid prefix.
        let repaired = std::fs::read(&path).unwrap();
        assert_eq!(&full[..repaired.len()], &repaired[..], "prefix preserved");
        // Appends continue and recover.
        let mut wal = outcome.wal;
        assert_eq!(wal.next_seqno(), 5);
        wal.append(&rec(99), 0).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let again = recover_segments(StdVfs::shared(), &dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(again.clean);
        let mut expected: Vec<WalRecord> = (0..4).map(rec).collect();
        expected.push(rec(99));
        assert_eq!(again.records, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_byte_cut_of_the_last_segment_is_a_prefix() {
        let dir = tmp_dir("cuts");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        let records: Vec<WalRecord> = (0..6).map(rec).collect();
        for r in &records {
            wal.append(r, 0).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let path = segment_path(&dir, 0);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let outcome =
                recover_segments(StdVfs::shared(), &dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
            assert_eq!(
                outcome.records,
                records[..outcome.records.len()],
                "cut {cut}: prefix property"
            );
            // A cut landing exactly on a frame boundary is
            // indistinguishable from a shorter log and may look clean;
            // everything else must be flagged.
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zeroed_segment_is_removed_and_gap_stops_replay() {
        let dir = tmp_dir("zeroed");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        wal.set_segment_bytes(96);
        let records: Vec<WalRecord> = (0..30).map(rec).collect();
        for r in &records {
            wal.append(r, 0).unwrap();
        }
        wal.sync().unwrap();
        let segs = wal.segment_count();
        assert!(segs >= 3, "need a middle segment, got {segs}");
        drop(wal);
        // Zero segment 1 (a mid-shred crash leaves exactly this).
        let victim = segment_path(&dir, 1);
        let len = std::fs::metadata(&victim).unwrap().len() as usize;
        std::fs::write(&victim, vec![0u8; len]).unwrap();
        let outcome = recover_segments(StdVfs::shared(), &dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(!outcome.clean);
        // Only segment 0's records survive: the gap stops replay.
        let seg0 = recover_segments(StdVfs::shared(), &dir, 0, DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(outcome.records, seg0.records, "replay is stable");
        assert!(outcome.records.len() < records.len());
        assert_eq!(outcome.records, records[..outcome.records.len()]);
        assert!(!victim.exists(), "dead segment removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zeroed_covered_segment_recovers_the_full_tail() {
        // The realistic mid-shred crash: the zeroed segment is *covered*
        // by the snapshot, so recovery loses nothing.
        let dir = tmp_dir("covered");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        wal.set_segment_bytes(96);
        let records: Vec<WalRecord> = (0..30).map(rec).collect();
        for r in &records {
            wal.append(r, 0).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Count records in segment 0 so we can "cover" them.
        let seg0_bytes = std::fs::read(segment_path(&dir, 0)).unwrap();
        let header = decode_header(&seg0_bytes).unwrap();
        let (seg0_records, _) = parse_segment(&seg0_bytes, header);
        let covered = seg0_records.len() as u64;
        let victim = segment_path(&dir, 0);
        let len = std::fs::metadata(&victim).unwrap().len() as usize;
        std::fs::write(&victim, vec![0u8; len]).unwrap();
        let outcome =
            recover_segments(StdVfs::shared(), &dir, covered, DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(outcome.records, records[covered as usize..], "no loss");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_covered_reads_no_bodies_and_keeps_uncovered() {
        let dir = tmp_dir("prune");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        wal.set_segment_bytes(96);
        for i in 0..30 {
            wal.append(&rec(i), 0).unwrap();
        }
        wal.sync().unwrap();
        let before = wal.segment_count();
        assert!(before >= 3);
        // Nothing covered: nothing pruned.
        wal.prune_covered(0).unwrap();
        assert_eq!(wal.segment_count(), before);
        // Everything covered: all sealed segments go; active stays.
        wal.prune_covered(wal.next_seqno() - 1).unwrap();
        assert_eq!(wal.segment_count(), 1);
        // The survivors still replay (their covered prefix is skipped).
        drop(wal);
        let outcome = recover_segments(StdVfs::shared(), &dir, 29, DEFAULT_SEGMENT_BYTES).unwrap();
        assert_eq!(outcome.records, vec![rec(29)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shred_covered_zeroes_then_unlinks() {
        let dir = tmp_dir("shred");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        wal.set_segment_bytes(96);
        for i in 0..30 {
            wal.append(&rec(i), 0).unwrap();
        }
        wal.sync().unwrap();
        let n = wal.next_seqno() - 1;
        wal.shred_covered(n).unwrap();
        let stats = wal.stats();
        assert!(stats.segments_shredded >= 3);
        assert!(stats.bytes_shredded > 0);
        // Directory is empty of segments until the next append.
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| segment_index(&e.unwrap().path()))
            .collect();
        assert!(files.is_empty(), "all segments destroyed: {files:?}");
        // Appends reopen a fresh segment with continuous seqnos.
        wal.append(&rec(77), 5).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let outcome = recover_segments(StdVfs::shared(), &dir, n, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.records, vec![rec(77)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_horizon_past_the_tail_seals_instead_of_reopening() {
        // PerBatch/Manual crash shape: the snapshot (covering through
        // seqno 8) was durably committed, but the WAL tail after seqno 5
        // never hit the disk. Reopening the tail segment as the append
        // target would put seqno 9 right after seqno 5 — an in-segment
        // gap the *next* recovery reads as corruption, silently
        // discarding acknowledged records. The tail must be sealed and
        // appends rotate into a fresh segment starting at 9.
        let dir = tmp_dir("horizon");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        for i in 0..5 {
            wal.append(&rec(i), 0).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let outcome = recover_segments(StdVfs::shared(), &dir, 8, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(outcome.records.is_empty(), "everything is covered");
        assert_eq!(outcome.wal.next_seqno(), 9);
        let mut wal = outcome.wal;
        wal.append(&rec(42), 0).unwrap();
        wal.sync().unwrap();
        assert_eq!(
            wal.segment_count(),
            2,
            "append must rotate into a fresh segment, not extend the stale tail"
        );
        drop(wal);
        let again = recover_segments(StdVfs::shared(), &dir, 8, DEFAULT_SEGMENT_BYTES).unwrap();
        assert!(again.clean, "the new tail is not corruption");
        assert_eq!(again.records, vec![rec(42)], "the acked record survives");
        assert_eq!(again.last_seqno, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_honors_a_custom_segment_threshold() {
        let dir = tmp_dir("threshold");
        let mut wal = SegmentedWal::create(StdVfs::shared(), &dir, 1).unwrap();
        wal.set_segment_bytes(96);
        for i in 0..6 {
            wal.append(&rec(i), 0).unwrap();
        }
        wal.sync().unwrap();
        let live_segments = wal.segment_count();
        assert!(live_segments > 1, "96-byte threshold must rotate");
        drop(wal);
        // Recovering with the same threshold keeps rotating at it; the
        // default would have coalesced everything into one segment.
        let mut wal = recover_segments(StdVfs::shared(), &dir, 0, 96).unwrap().wal;
        for i in 6..12 {
            wal.append(&rec(i), 0).unwrap();
        }
        wal.sync().unwrap();
        assert!(
            wal.segment_count() > live_segments,
            "custom threshold survives recovery: {} segments",
            wal.segment_count()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_survives_scrutiny() {
        let h = encode_header(42, 7);
        let parsed = decode_header(&h).unwrap();
        assert_eq!(parsed.first_seqno, 42);
        assert_eq!(parsed.base_epoch, 7);
        // Any single-bit flip invalidates it.
        for i in 0..h.len() {
            let mut dup = h;
            dup[i] ^= 1;
            assert!(decode_header(&dup).is_none(), "flip at {i}");
        }
        assert!(decode_header(&h[..20]).is_none(), "short header");
        assert!(decode_header(&[0u8; 36]).is_none(), "zeroed header");
    }
}
