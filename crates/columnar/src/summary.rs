//! Aggregate summaries of forgotten data.
//!
//! Paper §1: "a possibly poor information retention approach would be to
//! keep a summary, i.e., a few aggregated values (min, max, avg) of all
//! the forgotten data. This will reduce the storage drastically but the
//! DBMS will only be able to answer specific aggregation queries without
//! making available any other details."
//!
//! [`SummaryStore`] keeps one [`SummaryCell`] per insertion epoch, so
//! aggregate queries can combine the active table with summaries of what
//! rotted away — the `Summarize` forget mode of the simulator.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::types::{Epoch, Value};

/// Mergeable aggregate of a set of forgotten values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryCell {
    /// Number of values absorbed.
    pub count: u64,
    /// Exact integer sum (i128: no overflow for < 2^64 values of i64).
    pub sum: i128,
    /// Sum of squares, for variance estimates (f64: approximate).
    pub sum_sq: f64,
    /// Minimum absorbed value.
    pub min: Value,
    /// Maximum absorbed value.
    pub max: Value,
}

impl Default for SummaryCell {
    /// Same as [`SummaryCell::new`]: min/max start at their sentinels, so
    /// a derived all-zeros default would corrupt `absorb`.
    fn default() -> Self {
        Self::new()
    }
}

impl SummaryCell {
    /// Empty cell.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            sum_sq: 0.0,
            min: Value::MAX,
            max: Value::MIN,
        }
    }

    /// Absorb one value.
    pub fn absorb(&mut self, v: Value) {
        self.count += 1;
        self.sum += v as i128;
        self.sum_sq += (v as f64) * (v as f64);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge another cell.
    pub fn merge(&mut self, other: &SummaryCell) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Average of absorbed values (`None` when empty).
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Population variance estimate (`None` when empty).
    pub fn variance(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mean = self.sum as f64 / self.count as f64;
        Some((self.sum_sq / self.count as f64 - mean * mean).max(0.0))
    }

    /// Minimum (`None` when empty).
    pub fn min_value(&self) -> Option<Value> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum (`None` when empty).
    pub fn max_value(&self) -> Option<Value> {
        (self.count > 0).then_some(self.max)
    }
}

/// Per-epoch summaries of everything forgotten so far.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryStore {
    cells: BTreeMap<Epoch, SummaryCell>,
}

impl SummaryStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb a forgotten value that was inserted at `epoch`.
    pub fn absorb(&mut self, epoch: Epoch, v: Value) {
        self.cells.entry(epoch).or_default().absorb(v);
    }

    /// Summary cell for a single epoch.
    pub fn cell(&self, epoch: Epoch) -> Option<&SummaryCell> {
        self.cells.get(&epoch)
    }

    /// Combined summary across all epochs.
    pub fn combined(&self) -> SummaryCell {
        let mut total = SummaryCell::new();
        for cell in self.cells.values() {
            total.merge(cell);
        }
        total
    }

    /// Combined summary for insertion epochs in `[lo, hi]`.
    pub fn combined_range(&self, lo: Epoch, hi: Epoch) -> SummaryCell {
        let mut total = SummaryCell::new();
        for (_, cell) in self.cells.range(lo..=hi) {
            total.merge(cell);
        }
        total
    }

    /// Number of epochs with data.
    pub fn epochs(&self) -> usize {
        self.cells.len()
    }

    /// Total values absorbed.
    pub fn total_count(&self) -> u64 {
        self.cells.values().map(|c| c.count).sum()
    }

    /// Approximate heap footprint: the point of summaries is that this is
    /// tiny compared to the tuples they replaced.
    pub fn memory_bytes(&self) -> usize {
        self.cells.len() * (std::mem::size_of::<Epoch>() + std::mem::size_of::<SummaryCell>())
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_aggregates_exactly() {
        let mut c = SummaryCell::new();
        for v in [2i64, 4, 4, 4, 5, 5, 7, 9] {
            c.absorb(v);
        }
        assert_eq!(c.count, 8);
        assert_eq!(c.avg(), Some(5.0));
        assert_eq!(c.min_value(), Some(2));
        assert_eq!(c.max_value(), Some(9));
        assert!((c.variance().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn default_equals_new_with_sentinels() {
        // Regression: a derived Default would zero min/max and corrupt
        // the first absorb.
        let mut d = SummaryCell::default();
        assert_eq!(d, SummaryCell::new());
        d.absorb(20);
        assert_eq!(d.min_value(), Some(20));
        assert_eq!(d.max_value(), Some(20));
    }

    #[test]
    fn empty_cell_returns_none() {
        let c = SummaryCell::new();
        assert_eq!(c.avg(), None);
        assert_eq!(c.variance(), None);
        assert_eq!(c.min_value(), None);
        assert_eq!(c.max_value(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let values = [3i64, -5, 8, 8, 100, 0];
        let mut seq = SummaryCell::new();
        for &v in &values {
            seq.absorb(v);
        }
        let mut a = SummaryCell::new();
        let mut b = SummaryCell::new();
        for &v in &values[..3] {
            a.absorb(v);
        }
        for &v in &values[3..] {
            b.absorb(v);
        }
        a.merge(&b);
        assert_eq!(a, seq);
    }

    #[test]
    fn store_groups_by_epoch() {
        let mut s = SummaryStore::new();
        s.absorb(0, 10);
        s.absorb(0, 20);
        s.absorb(3, 100);
        assert_eq!(s.epochs(), 2);
        assert_eq!(s.total_count(), 3);
        assert_eq!(s.cell(0).unwrap().avg(), Some(15.0));
        assert_eq!(s.cell(3).unwrap().count, 1);
        assert!(s.cell(1).is_none());
        let all = s.combined();
        assert_eq!(all.count, 3);
        assert!((all.avg().unwrap() - (130.0 / 3.0)).abs() < 1e-9);
        let r = s.combined_range(0, 2);
        assert_eq!(r.count, 2);
    }

    #[test]
    fn summaries_are_small() {
        let mut s = SummaryStore::new();
        for epoch in 0..10u64 {
            for v in 0..1000 {
                s.absorb(epoch, v);
            }
        }
        // 10k forgotten values summarized into < 1 KiB.
        assert!(s.memory_bytes() < 1024, "got {} bytes", s.memory_bytes());
    }
}
