//! Table schema: named integer columns.
//!
//! The paper fixes the schema to "a collection of columns … filled with
//! integers" (§2.1); we keep names so examples and the engine can address
//! columns symbolically.

use serde::{Deserialize, Serialize};

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within the schema.
    pub name: String,
}

impl ColumnDef {
    /// New column definition.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column names. Panics on duplicates or emptiness.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Self {
        let columns: Vec<ColumnDef> = names.into_iter().map(|n| ColumnDef::new(n)).collect();
        assert!(!columns.is_empty(), "schema needs at least one column");
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(seen.insert(c.name.as_str()), "duplicate column {}", c.name);
        }
        Self { columns }
    }

    /// The single-attribute schema used by the paper's experiments.
    pub fn single(name: impl Into<String>) -> Self {
        Self::new(vec![name.into()])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec!["a", "b", "c"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zz"), None);
        assert_eq!(s.columns()[2].name, "c");
    }

    #[test]
    fn single_helper() {
        let s = Schema::single("attr");
        assert_eq!(s.arity(), 1);
        assert_eq!(s.index_of("attr"), Some(0));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicates_rejected() {
        Schema::new(vec!["x", "x"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_rejected() {
        Schema::new(Vec::<String>::new());
    }
}
