//! Micro-models of forgotten data (paper §5).
//!
//! "A special, but highly relevant approach is to counter the forgetting
//! information process by turning portions of the database into
//! summaries. They can take the form of traditional compression schemes,
//! or for the more adventurous, replacing portions of the database by
//! micro-models \[15\]."
//!
//! A [`MicroModel`] is a constant-size statistical stand-in for the
//! tuples forgotten in one epoch: exact count/sum/min/max plus an
//! equi-width histogram carrying per-bin counts *and sums*. Unlike the
//! plain [`SummaryStore`](crate::summary::SummaryStore) — which can only
//! answer whole-table aggregates — a micro-model *interpolates*: a range
//! predicate is answered by pro-rating the overlapped bins, so ranged
//! `COUNT`/`SUM`/`AVG` queries get an estimate instead of silently
//! missing the forgotten mass.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::types::{Epoch, Value};

/// Inclusive-lo/exclusive-hi value interval used for estimates (matches
/// the engine's range predicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRange {
    /// Inclusive lower bound.
    pub lo: Value,
    /// Exclusive upper bound.
    pub hi: Value,
}

/// What a model (or store) estimates for a range.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Estimated number of forgotten tuples in range.
    pub count: f64,
    /// Estimated sum of forgotten values in range.
    pub sum: f64,
    /// Lower bound on forgotten values in range (exact for whole-range).
    pub min: Option<Value>,
    /// Upper bound on forgotten values in range.
    pub max: Option<Value>,
}

impl Estimate {
    /// Fold another estimate in.
    pub fn merge(&mut self, other: &Estimate) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Estimated average (`None` when nothing is estimated in range).
    pub fn avg(&self) -> Option<f64> {
        (self.count > 1e-12).then(|| self.sum / self.count)
    }
}

/// A fitted model of one epoch's forgotten values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroModel {
    epoch: Epoch,
    count: u64,
    sum: i128,
    min: Value,
    max: Value,
    /// Histogram domain `[lo, hi]`, inclusive both ends.
    lo: Value,
    hi: Value,
    /// Per-bin tuple counts.
    bin_counts: Vec<u32>,
    /// Per-bin value sums (makes ranged SUM/AVG far tighter than
    /// midpoint interpolation).
    bin_sums: Vec<i64>,
}

impl MicroModel {
    /// Fit a model over `values` (must be non-empty) with `bins` buckets.
    pub fn fit(epoch: Epoch, values: &[Value], bins: usize) -> MicroModel {
        assert!(!values.is_empty(), "cannot fit a model of nothing");
        let bins = bins.max(1);
        let (mut lo, mut hi) = (Value::MAX, Value::MIN);
        let mut sum = 0i128;
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v as i128;
        }
        let mut m = MicroModel {
            epoch,
            count: values.len() as u64,
            sum,
            min: lo,
            max: hi,
            lo,
            hi,
            bin_counts: vec![0; bins],
            bin_sums: vec![0; bins],
        };
        for &v in values {
            let b = m.bin_of(v);
            m.bin_counts[b] += 1;
            m.bin_sums[b] += v;
        }
        m
    }

    fn bin_of(&self, v: Value) -> usize {
        let span = (self.hi - self.lo) as f64 + 1.0;
        let rel = (v - self.lo) as f64 / span;
        ((rel * self.bin_counts.len() as f64) as usize).min(self.bin_counts.len() - 1)
    }

    /// The epoch this model stands in for.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Modeled tuple count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact aggregates over everything the model absorbed.
    pub fn totals(&self) -> Estimate {
        Estimate {
            count: self.count as f64,
            sum: self.sum as f64,
            min: Some(self.min),
            max: Some(self.max),
        }
    }

    /// Estimate the forgotten mass inside `range` by pro-rating bins.
    ///
    /// Bins fully inside the range contribute exactly; the two boundary
    /// bins contribute proportionally to their overlap, assuming values
    /// are uniform within a bin (the standard equi-width histogram
    /// assumption).
    pub fn estimate(&self, range: ValueRange) -> Estimate {
        if range.hi <= range.lo || range.hi <= self.lo || range.lo > self.hi {
            return Estimate::default();
        }
        let bins = self.bin_counts.len();
        let span = (self.hi - self.lo) as f64 + 1.0;
        let bin_width = span / bins as f64;
        let mut est = Estimate::default();
        for b in 0..bins {
            if self.bin_counts[b] == 0 {
                continue;
            }
            let b_lo = self.lo as f64 + b as f64 * bin_width;
            let b_hi = b_lo + bin_width;
            let olap_lo = b_lo.max(range.lo as f64);
            let olap_hi = b_hi.min(range.hi as f64);
            if olap_hi <= olap_lo {
                continue;
            }
            let frac = ((olap_hi - olap_lo) / bin_width).clamp(0.0, 1.0);
            est.count += frac * self.bin_counts[b] as f64;
            est.sum += frac * self.bin_sums[b] as f64;
        }
        if est.count > 1e-12 {
            // Bounds clamped to the queried range ∩ model domain.
            est.min = Some(self.min.max(range.lo));
            est.max = Some(self.max.min(range.hi - 1));
        }
        est
    }

    /// Approximate heap footprint.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.bin_counts.capacity() * std::mem::size_of::<u32>()
            + self.bin_sums.capacity() * std::mem::size_of::<i64>()
    }
}

/// Per-epoch micro-models plus the not-yet-sealed raw values of the
/// current batch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelStore {
    bins: usize,
    pending: BTreeMap<Epoch, Vec<Value>>,
    sealed: BTreeMap<Epoch, MicroModel>,
}

impl ModelStore {
    /// Store with `bins` histogram buckets per epoch model.
    pub fn new(bins: usize) -> Self {
        Self {
            bins: bins.max(1),
            pending: BTreeMap::new(),
            sealed: BTreeMap::new(),
        }
    }

    /// Absorb one forgotten value (buffered raw until [`seal`]).
    ///
    /// [`seal`]: ModelStore::seal
    pub fn absorb(&mut self, epoch: Epoch, value: Value) {
        self.pending.entry(epoch).or_default().push(value);
    }

    /// Fit pending values into models (batch boundary). Sealing the same
    /// epoch twice merges: the histogram is refit over the new values
    /// plus the old model re-sampled at its per-bin means (approximate),
    /// while the top-level count/sum/min/max are combined *exactly* — so
    /// whole-table aggregates never drift, only in-range interpolation
    /// blurs.
    pub fn seal(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for (epoch, mut values) in pending {
            let old = self.sealed.remove(&epoch);
            let exact = old.as_ref().map(|o| {
                let new_sum: i128 = values.iter().map(|&v| v as i128).sum();
                let new_min = values.iter().copied().min().unwrap_or(Value::MAX);
                let new_max = values.iter().copied().max().unwrap_or(Value::MIN);
                (
                    o.count + values.len() as u64,
                    o.sum + new_sum,
                    o.min.min(new_min),
                    o.max.max(new_max),
                )
            });
            if let Some(old) = old {
                values.reserve(old.count as usize);
                // Re-sample the old model at its per-bin means to keep
                // the histogram shape roughly right.
                for b in 0..old.bin_counts.len() {
                    let c = old.bin_counts[b];
                    if c == 0 {
                        continue;
                    }
                    let mid = (old.bin_sums[b] as f64 / c as f64).round() as Value;
                    values.extend(std::iter::repeat_n(mid, c as usize));
                }
            }
            let mut model = MicroModel::fit(epoch, &values, self.bins);
            if let Some((count, sum, min, max)) = exact {
                model.count = count;
                model.sum = sum;
                model.min = min;
                model.max = max;
            }
            self.sealed.insert(epoch, model);
        }
    }

    /// Number of sealed models.
    pub fn num_models(&self) -> usize {
        self.sealed.len()
    }

    /// Total tuples absorbed (sealed + pending).
    pub fn absorbed(&self) -> u64 {
        self.sealed.values().map(MicroModel::count).sum::<u64>()
            + self.pending.values().map(|v| v.len() as u64).sum::<u64>()
    }

    /// Estimate forgotten mass in `range` (`None` = everything).
    pub fn estimate(&self, range: Option<ValueRange>) -> Estimate {
        let mut est = Estimate::default();
        for model in self.sealed.values() {
            let part = match range {
                Some(r) => model.estimate(r),
                None => model.totals(),
            };
            est.merge(&part);
        }
        // Pending values are still raw: answer exactly.
        for values in self.pending.values() {
            for &v in values {
                let inside = match range {
                    Some(r) => v >= r.lo && v < r.hi,
                    None => true,
                };
                if inside {
                    est.merge(&Estimate {
                        count: 1.0,
                        sum: v as f64,
                        min: Some(v),
                        max: Some(v),
                    });
                }
            }
        }
        est
    }

    /// Approximate heap footprint.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .sealed
                .values()
                .map(MicroModel::memory_bytes)
                .sum::<usize>()
            + self
                .pending
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<Value>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_exact() {
        let values: Vec<i64> = (0..1000).map(|i| (i * 7) % 500).collect();
        let m = MicroModel::fit(1, &values, 32);
        let t = m.totals();
        assert_eq!(t.count, 1000.0);
        assert_eq!(t.sum, values.iter().sum::<i64>() as f64);
        assert_eq!(t.min, Some(*values.iter().min().unwrap()));
        assert_eq!(t.max, Some(*values.iter().max().unwrap()));
    }

    #[test]
    fn full_range_estimate_equals_totals() {
        let values: Vec<i64> = (0..500).collect();
        let m = MicroModel::fit(0, &values, 16);
        let est = m.estimate(ValueRange { lo: 0, hi: 500 });
        assert!((est.count - 500.0).abs() < 1e-6, "count {}", est.count);
        assert!(
            (est.sum - values.iter().sum::<i64>() as f64).abs() < 1e-6,
            "sum {}",
            est.sum
        );
    }

    #[test]
    fn uniform_data_half_range_is_half_mass() {
        let values: Vec<i64> = (0..10_000).collect();
        let m = MicroModel::fit(0, &values, 64);
        let est = m.estimate(ValueRange { lo: 0, hi: 5000 });
        let rel = (est.count - 5000.0).abs() / 5000.0;
        assert!(rel < 0.02, "count {} (rel err {rel})", est.count);
    }

    #[test]
    fn narrow_range_estimate_tracks_true_density() {
        let values: Vec<i64> = (0..10_000).map(|i| i % 1000).collect(); // 10 of each
        let m = MicroModel::fit(0, &values, 100);
        let est = m.estimate(ValueRange { lo: 200, hi: 300 });
        // True count = 1000.
        let rel = (est.count - 1000.0).abs() / 1000.0;
        assert!(rel < 0.15, "count {} (rel err {rel})", est.count);
    }

    #[test]
    fn disjoint_range_estimates_zero() {
        let m = MicroModel::fit(0, &[10, 20, 30], 4);
        assert_eq!(
            m.estimate(ValueRange { lo: 100, hi: 200 }),
            Estimate::default()
        );
        assert_eq!(m.estimate(ValueRange { lo: 5, hi: 5 }), Estimate::default());
    }

    #[test]
    fn skewed_data_beats_single_cell_summary() {
        // 900 values at 10, 100 values at 990: a single summary cell
        // would smear the average; bins keep the clumps apart.
        let mut values = vec![10i64; 900];
        values.extend(vec![990i64; 100]);
        let m = MicroModel::fit(0, &values, 32);
        let low = m.estimate(ValueRange { lo: 0, hi: 100 });
        assert!((low.count - 900.0).abs() < 1.0, "low clump {}", low.count);
        let high = m.estimate(ValueRange { lo: 900, hi: 1000 });
        assert!(
            (high.count - 100.0).abs() < 1.0,
            "high clump {}",
            high.count
        );
        // Average inside the low clump is the clump value, not the blend.
        assert!((low.avg().unwrap() - 10.0).abs() < 1.0);
    }

    #[test]
    fn store_seals_and_estimates() {
        let mut store = ModelStore::new(16);
        for v in 0..100i64 {
            store.absorb(1, v);
        }
        // Pending values answer exactly even before sealing.
        let est = store.estimate(Some(ValueRange { lo: 0, hi: 50 }));
        assert_eq!(est.count, 50.0);
        store.seal();
        assert_eq!(store.num_models(), 1);
        assert_eq!(store.absorbed(), 100);
        let est = store.estimate(Some(ValueRange { lo: 0, hi: 50 }));
        assert!((est.count - 50.0).abs() < 4.0, "sealed count {}", est.count);
        // Whole-range stays exact after sealing.
        let all = store.estimate(None);
        assert_eq!(all.count, 100.0);
        assert_eq!(all.sum, (0..100i64).sum::<i64>() as f64);
    }

    #[test]
    fn resealing_an_epoch_keeps_totals() {
        let mut store = ModelStore::new(8);
        for v in 0..50i64 {
            store.absorb(2, v);
        }
        store.seal();
        for v in 50..100i64 {
            store.absorb(2, v);
        }
        store.seal();
        assert_eq!(store.num_models(), 1);
        let all = store.estimate(None);
        // Whole-range aggregates stay exact across reseals: only the
        // histogram (in-range interpolation) is approximate.
        assert_eq!(all.count, 100.0);
        assert_eq!(all.sum, (0..100i64).sum::<i64>() as f64);
        assert_eq!(all.min, Some(0));
        assert_eq!(all.max, Some(99));
    }

    #[test]
    fn memory_is_constant_in_tuple_count() {
        let small = MicroModel::fit(0, &(0..100i64).collect::<Vec<_>>(), 32);
        let large = MicroModel::fit(0, &(0..100_000i64).collect::<Vec<_>>(), 32);
        assert_eq!(small.memory_bytes(), large.memory_bytes());
    }

    #[test]
    fn estimates_merge_componentwise() {
        let mut a = Estimate {
            count: 2.0,
            sum: 10.0,
            min: Some(3),
            max: Some(7),
        };
        a.merge(&Estimate {
            count: 1.0,
            sum: 5.0,
            min: Some(1),
            max: Some(5),
        });
        assert_eq!(a.count, 3.0);
        assert_eq!(a.sum, 15.0);
        assert_eq!(a.min, Some(1));
        assert_eq!(a.max, Some(7));
        assert_eq!(a.avg(), Some(5.0));
    }
}
