//! Per-tuple active/forgotten marking.
//!
//! "For each table T, we keep a record of active and forgotten tuples …
//! The granularity is purposely kept to a single record" (paper §2.1).
//! Besides the active bitmap we record the *death epoch* of every
//! forgotten tuple so reports can reconstruct when data rotted away.

use amnesia_util::{Bitmap, SimRng};
use serde::{Deserialize, Serialize};

use crate::types::{Epoch, RowId};

/// Sentinel in `died_at` for rows that are still active.
const ALIVE: Epoch = Epoch::MAX;

/// Activity marking for all rows of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityMap {
    active: Bitmap,
    died_at: Vec<Epoch>,
}

impl ActivityMap {
    /// Empty map.
    pub fn new() -> Self {
        Self {
            active: Bitmap::new(),
            died_at: Vec::new(),
        }
    }

    /// Register `n` freshly inserted (active) rows.
    pub fn push_active(&mut self, n: usize) {
        self.active.extend(n, true);
        self.died_at.resize(self.died_at.len() + n, ALIVE);
    }

    /// Total rows ever registered (active + forgotten).
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True if no rows have been registered.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Number of active rows.
    pub fn active_count(&self) -> usize {
        self.active.count_ones()
    }

    /// Number of forgotten rows.
    pub fn forgotten_count(&self) -> usize {
        self.active.count_zeros()
    }

    /// Is this row still active?
    #[inline]
    pub fn is_active(&self, row: RowId) -> bool {
        self.active.get(row.as_usize())
    }

    /// Mark a row forgotten at `epoch`. Returns `true` if the row was
    /// active (i.e. the call had an effect); forgetting twice is a no-op.
    pub fn forget(&mut self, row: RowId, epoch: Epoch) -> bool {
        let was_active = self.active.set(row.as_usize(), false);
        if was_active {
            self.died_at[row.as_usize()] = epoch;
        }
        was_active
    }

    /// Resurrect a row (used by recovery-from-cold-storage flows).
    pub fn revive(&mut self, row: RowId) {
        self.active.set(row.as_usize(), true);
        self.died_at[row.as_usize()] = ALIVE;
    }

    /// Epoch at which the row was forgotten, if it has been.
    pub fn died_at(&self, row: RowId) -> Option<Epoch> {
        let e = self.died_at[row.as_usize()];
        (e != ALIVE).then_some(e)
    }

    /// Iterate over active row ids in insertion order.
    pub fn iter_active(&self) -> impl Iterator<Item = RowId> + '_ {
        self.active.iter_ones().map(RowId::from)
    }

    /// The underlying active bitmap (for vectorized kernels).
    pub fn bitmap(&self) -> &Bitmap {
        &self.active
    }

    /// The packed activity words (low bit = low row id). Bits past the
    /// last row are guaranteed zero, so word-at-a-time kernels can
    /// popcount and scan whole words without tail masking.
    #[inline]
    pub fn words(&self) -> &[u64] {
        self.active.words()
    }

    /// Uniformly random active row, if any (O(blocks) via rank/select).
    pub fn random_active(&self, rng: &mut SimRng) -> Option<RowId> {
        let n = self.active_count();
        if n == 0 {
            return None;
        }
        let k = rng.index(n);
        self.active.select(k).map(RowId::from)
    }

    /// Next active row at or after `from` (row-space order).
    pub fn next_active(&self, from: RowId) -> Option<RowId> {
        self.active.next_one(from.as_usize()).map(RowId::from)
    }

    /// Previous active row at or before `from` (row-space order).
    pub fn prev_active(&self, from: RowId) -> Option<RowId> {
        self.active.prev_one(from.as_usize()).map(RowId::from)
    }

    /// Count of active rows in the physical range `[lo, hi)`.
    pub fn active_in_range(&self, lo: usize, hi: usize) -> usize {
        self.active.count_ones_in(lo, hi)
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.active.memory_bytes()
            + self.died_at.capacity() * std::mem::size_of::<Epoch>()
            + std::mem::size_of::<Self>()
    }
}

impl Default for ActivityMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut am = ActivityMap::new();
        am.push_active(10);
        assert_eq!(am.len(), 10);
        assert_eq!(am.active_count(), 10);
        assert!(am.is_active(RowId(3)));
        assert_eq!(am.died_at(RowId(3)), None);

        assert!(am.forget(RowId(3), 2));
        assert!(!am.is_active(RowId(3)));
        assert_eq!(am.died_at(RowId(3)), Some(2));
        assert_eq!(am.active_count(), 9);
        assert_eq!(am.forgotten_count(), 1);

        // Forgetting again is a no-op.
        assert!(!am.forget(RowId(3), 5));
        assert_eq!(am.died_at(RowId(3)), Some(2), "death epoch unchanged");

        am.revive(RowId(3));
        assert!(am.is_active(RowId(3)));
        assert_eq!(am.died_at(RowId(3)), None);
    }

    #[test]
    fn iter_active_in_order() {
        let mut am = ActivityMap::new();
        am.push_active(5);
        am.forget(RowId(1), 1);
        am.forget(RowId(4), 1);
        let rows: Vec<RowId> = am.iter_active().collect();
        assert_eq!(rows, vec![RowId(0), RowId(2), RowId(3)]);
    }

    #[test]
    fn random_active_only_returns_active() {
        let mut am = ActivityMap::new();
        am.push_active(100);
        for i in 0..100 {
            if i % 2 == 0 {
                am.forget(RowId(i), 1);
            }
        }
        let mut rng = SimRng::new(20);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let r = am.random_active(&mut rng).unwrap();
            assert!(am.is_active(r));
            seen.insert(r.0);
        }
        // With 1000 draws over 50 rows we should see nearly all of them.
        assert!(seen.len() > 45, "coverage {}", seen.len());
    }

    #[test]
    fn random_active_empty_is_none() {
        let mut am = ActivityMap::new();
        am.push_active(2);
        am.forget(RowId(0), 1);
        am.forget(RowId(1), 1);
        let mut rng = SimRng::new(21);
        assert_eq!(am.random_active(&mut rng), None);
    }

    #[test]
    fn neighbour_scans() {
        let mut am = ActivityMap::new();
        am.push_active(10);
        for i in [2u64, 3, 4, 7] {
            am.forget(RowId(i), 1);
        }
        assert_eq!(am.next_active(RowId(2)), Some(RowId(5)));
        assert_eq!(am.prev_active(RowId(4)), Some(RowId(1)));
        assert_eq!(am.active_in_range(2, 8), 2); // rows 5, 6
    }
}
