//! Tiered column storage: a hot uncompressed tail behind a prefix of
//! frozen compressed blocks — compression as the *resting state* of cold
//! data, not a side-car snapshot.
//!
//! Paper §4.4 argues "data compression can be called upon to postpone the
//! decisions to forget data": every byte a cold segment gives back
//! stretches the storage budget before any tuple must rot. Until this
//! module existed, `compress_column` produced a snapshot the caller
//! owned, so compression never reduced the table's resident footprint and
//! the fused compressed kernels ran against stale copies. A
//! [`TieredColumn`] instead *is* the column: the oldest rows live as
//! [`EncodedBlock`]s with cached per-block [`BlockMeta`] (min/max over
//! active rows, active-row count), the newest rows stay mutable and
//! uncompressed, and every scan/aggregate/vacuum/persist path reads the
//! tiers in place.
//!
//! # The tier state machine
//!
//! Each block of `block_rows` rows moves monotonically through four
//! states, driven by vacuum scheduling and the amnesia policies:
//!
//! ```text
//!   hot ──freeze_upto──▶ frozen ──recompress_block──▶ recompressed
//!    ▲                      │                              │
//!    └─────thaw_block───────┴──────────drop_block──────────▶ dropped
//! ```
//!
//! * **hot** — plain `Vec<Value>` tail; inserts append here, point reads
//!   are array indexing, scans take the raw-slice batch kernels.
//! * **frozen** — [`EncodedBlock::encode_auto`] (or a pinned codec)
//!   compressed the block; scans run the codec's fused
//!   `filter_range_masks` / `fold_range_masked`, point reads take the
//!   codec's `value_at` fast path, and the cached [`BlockMeta`] prunes
//!   blocks the predicate cannot hit before the payload is touched.
//! * **recompressed** — heavy forgetting inside a frozen block squashes
//!   the forgotten rows' values onto their active neighbours and
//!   re-encodes; runs lengthen, dictionaries shrink, and the meta bounds
//!   tighten to the surviving rows. Forgetting physically shrinks cold
//!   data without moving a single row id.
//! * **dropped** — a block whose every row was forgotten surrenders its
//!   payload entirely: only the 2-byte placeholder and the meta survive.
//!   Row ids stay stable (the block still occupies its row range);
//!   reading a dropped row yields 0, which no active-only path ever does.
//!
//! Meta maintenance mirrors the zone-map contract: forgetting keeps
//! bounds *safe* rather than tight (they only shrink on recompression),
//! and `active` counts are exact because [`TieredColumn::note_forget`]
//! observes every first-time forget.

use amnesia_sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use amnesia_util::WORD_BITS;
use bytes::BytesMut;

use crate::compress::varint::{write_signed, write_varint};
use crate::compress::{bit_set, EncodedBlock, Encoding};
use crate::types::{Value, DEFAULT_BLOCK_ROWS};

/// Cached per-block metadata: the tier layer's built-in zone map.
///
/// `min`/`max` cover the block's *active* rows at freeze (or last
/// recompression) time and are stale-safe afterwards — never narrower
/// than the truth. `active` is kept exact by
/// [`TieredColumn::note_forget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// Minimum active value (undefined when `active == 0`).
    pub min: Value,
    /// Maximum active value (undefined when `active == 0`).
    pub max: Value,
    /// Number of active rows in the block.
    pub active: usize,
}

impl BlockMeta {
    /// Can any active row of this block satisfy `lo <= v < hi`?
    /// Stale bounds are only ever wide, so `false` is always safe to
    /// skip on.
    #[inline]
    pub fn may_match(&self, lo: Value, hi: Value) -> bool {
        self.active > 0 && self.min < hi && self.max >= lo
    }

    /// Can any active row of this block satisfy `lo <= v <= hi`? The
    /// *inclusive* variant of [`Self::may_match`], used by the join
    /// kernels to prune probe blocks against a build side's `[min, max]`
    /// key range — which the exclusive form cannot express when
    /// `hi == i64::MAX`. Same stale-bounds safety argument.
    #[inline]
    pub fn may_match_inclusive(&self, lo: Value, hi: Value) -> bool {
        self.active > 0 && self.min <= hi && self.max >= lo
    }
}

/// Lifecycle state of one frozen block (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// Compressed at freeze time; payload intact.
    Frozen,
    /// Re-encoded after heavy forgetting; forgotten rows' values were
    /// squashed onto active neighbours.
    Recompressed,
    /// Fully forgotten; payload surrendered (reads yield 0).
    Dropped,
}

/// One compressed block plus its cached metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrozenBlock {
    block: EncodedBlock,
    meta: BlockMeta,
    state: BlockState,
}

impl FrozenBlock {
    /// The compressed payload.
    pub fn encoded(&self) -> &EncodedBlock {
        &self.block
    }

    /// The cached metadata.
    pub fn meta(&self) -> &BlockMeta {
        &self.meta
    }

    /// The lifecycle state.
    pub fn state(&self) -> BlockState {
        self.state
    }

    /// True once the payload has been surrendered.
    pub fn is_dropped(&self) -> bool {
        self.state == BlockState::Dropped
    }

    /// Reassemble from persisted parts (snapshot reader).
    pub fn from_parts(block: EncodedBlock, meta: BlockMeta, state: BlockState) -> Self {
        Self { block, meta, state }
    }
}

/// Per-block access counters: how many times each frozen block survived
/// pruning and was actually scanned or probed. This is *observability*,
/// not state — the feedback signal recency-driven freezing and the
/// cost-based planner's estimator calibration read — so it is
/// deliberately excluded from equality (`PartialEq` always holds): a
/// recovered or cloned-for-comparison column with fresh counters still
/// compares layout-equal. Counters bump through `&self` (relaxed
/// atomics), so the read-only scan kernels can account without taking a
/// write path.
#[derive(Default)]
pub struct AccessCounters(Vec<AtomicU64>);

impl AccessCounters {
    fn resize(&mut self, blocks: usize) {
        while self.0.len() < blocks {
            self.0.push(AtomicU64::new(0));
        }
        self.0.truncate(blocks);
    }
}

impl Clone for AccessCounters {
    fn clone(&self) -> Self {
        Self(
            self.0
                .iter()
                // Relaxed: counters are advisory scan statistics; a clone
                // concurrent with bumps may be slightly stale, which is
                // fine — no other memory is ordered against them.
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
        )
    }
}

impl PartialEq for AccessCounters {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for AccessCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            // Relaxed: debug rendering of advisory counters; staleness
            // is acceptable and nothing is ordered against the reads.
            .entries(self.0.iter().map(|c| c.load(Ordering::Relaxed)))
            .finish()
    }
}

/// A column whose cold prefix lives compressed in place: frozen
/// [`EncodedBlock`]s with cached [`BlockMeta`], then a hot uncompressed
/// tail. Replaces the raw `Vec<Value>` inside `Table`/`Column`.
///
/// The block size must be a whole number of 64-row activity words so
/// frozen blocks tile activity words exactly — the alignment every fused
/// compressed kernel relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredColumn {
    block_rows: usize,
    /// `None` = per-block automatic codec choice; `Some` pins one codec
    /// (codec ablations and codec-targeted equivalence tests).
    encoding: Option<Encoding>,
    frozen: Vec<FrozenBlock>,
    hot: Vec<Value>,
    accesses: AccessCounters,
}

impl TieredColumn {
    /// Empty column with the default block size.
    pub fn new() -> Self {
        Self::with_block_rows(DEFAULT_BLOCK_ROWS)
    }

    /// Empty column with a custom block size (rows per frozen block).
    pub fn with_block_rows(block_rows: usize) -> Self {
        assert!(
            block_rows > 0 && block_rows.is_multiple_of(WORD_BITS),
            "block size {block_rows} must be a positive multiple of {WORD_BITS}"
        );
        Self {
            block_rows,
            encoding: None,
            frozen: Vec::new(),
            hot: Vec::new(),
            accesses: AccessCounters::default(),
        }
    }

    /// Empty column freezing every block with one pinned codec.
    pub fn with_encoding(block_rows: usize, encoding: Encoding) -> Self {
        let mut c = Self::with_block_rows(block_rows);
        c.encoding = Some(encoding);
        c
    }

    /// Pin (or unpin) the freeze codec.
    pub fn pin_encoding(&mut self, encoding: Option<Encoding>) {
        self.encoding = encoding;
    }

    /// The pinned freeze codec, if any (`None` = automatic per-block
    /// choice).
    pub fn pinned_encoding(&self) -> Option<Encoding> {
        self.encoding
    }

    /// Rebuild from persisted parts (snapshot reader). Every frozen block
    /// must hold exactly `block_rows` rows.
    pub fn from_parts(
        block_rows: usize,
        encoding: Option<Encoding>,
        frozen: Vec<FrozenBlock>,
        hot: Vec<Value>,
    ) -> Self {
        let mut c = Self::with_block_rows(block_rows);
        for (i, f) in frozen.iter().enumerate() {
            assert_eq!(
                f.block.len(),
                block_rows,
                "frozen block {i} holds {} rows, expected {block_rows}",
                f.block.len()
            );
        }
        c.encoding = encoding;
        c.frozen = frozen;
        c.hot = hot;
        c.accesses.resize(c.frozen.len());
        c
    }

    /// Rows per frozen block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Total number of rows (frozen + hot).
    pub fn len(&self) -> usize {
        self.frozen.len() * self.block_rows + self.hot.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of frozen blocks.
    pub fn frozen_blocks(&self) -> usize {
        self.frozen.len()
    }

    /// First physical row of the hot tail (multiple of the block size,
    /// and therefore word-aligned).
    pub fn hot_start(&self) -> usize {
        self.frozen.len() * self.block_rows
    }

    /// The hot uncompressed tail (rows `hot_start()..len()`).
    pub fn hot_values(&self) -> &[Value] {
        &self.hot
    }

    /// True when nothing is frozen and the whole column is one flat
    /// slice.
    pub fn is_fully_hot(&self) -> bool {
        self.frozen.is_empty()
    }

    /// The frozen block at `b` (payload + meta + state).
    pub fn frozen(&self, b: usize) -> Option<&FrozenBlock> {
        self.frozen.get(b)
    }

    /// Cached metadata of frozen block `b`. Panics if out of range.
    pub fn meta(&self, b: usize) -> &BlockMeta {
        &self.frozen[b].meta
    }

    /// Record that frozen block `b` survived pruning and was actually
    /// scanned or probed. Relaxed atomic bump through `&self`, so the
    /// read-only kernels (and their parallel morsel variants) can account
    /// without a write path. Out-of-range indices are ignored.
    #[inline]
    pub fn note_block_access(&self, b: usize) {
        if let Some(c) = self.accesses.0.get(b) {
            // Relaxed: a pure event count; bumps from parallel morsel
            // workers may interleave in any order, only the total matters.
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Times frozen block `b` survived pruning and was scanned/probed
    /// (0 for out-of-range).
    pub fn block_accesses(&self, b: usize) -> u64 {
        self.accesses
            .0
            .get(b)
            // Relaxed: advisory statistic, staleness is acceptable.
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Total block accesses across all frozen blocks of this column.
    pub fn total_block_accesses(&self) -> u64 {
        self.accesses
            .0
            .iter()
            // Relaxed: advisory statistic, staleness is acceptable.
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Cheap, conservative test that this column's physical row order is
    /// nondecreasing in *value* over its active rows: frozen block metas
    /// must chain nondecreasingly (blocks with no active rows contribute
    /// nothing and are skipped) and the hot tail must be sorted and sit
    /// at or above the frozen maximum. Costs O(frozen blocks + hot rows)
    /// and never touches a compressed payload.
    ///
    /// A `true` is a *hint*: block meta cannot see within-block order, so
    /// callers relying on global order (the sort-merge join path) must
    /// verify on the materialized keys before trusting it. `false` is
    /// always safe — it only forfeits an optimization.
    pub fn sorted_hint(&self) -> bool {
        let mut prev = Value::MIN;
        for f in &self.frozen {
            if f.meta.active == 0 {
                continue;
            }
            if f.meta.min < prev {
                return false;
            }
            prev = f.meta.max;
        }
        self.hot.first().is_none_or(|&h0| h0 >= prev) && self.hot.windows(2).all(|w| w[0] <= w[1])
    }

    /// Append one value to the hot tail. Freezing is *explicit*
    /// ([`Self::freeze_upto`]) — appends never compress behind the
    /// caller's back.
    #[inline]
    pub fn push(&mut self, v: Value) {
        self.hot.push(v);
    }

    /// Append many values to the hot tail.
    pub fn extend_from_slice(&mut self, vs: &[Value]) {
        self.hot.extend_from_slice(vs);
    }

    /// Reserve hot-tail capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.hot.reserve(additional);
    }

    /// Value at a physical row. Hot rows are array indexing; frozen rows
    /// take the codec's `value_at` fast path (no block decode); dropped
    /// rows yield 0.
    #[inline]
    pub fn value_at(&self, row: usize) -> Value {
        let hot_start = self.hot_start();
        if row >= hot_start {
            return self.hot[row - hot_start];
        }
        let f = &self.frozen[row / self.block_rows];
        if f.is_dropped() {
            return 0;
        }
        f.block.value_at(row % self.block_rows)
    }

    /// Freeze full blocks so that every row below `row` (rounded *down*
    /// to a block boundary) is compressed. `words` are the table's packed
    /// activity words, consulted to cache each block's [`BlockMeta`].
    /// Returns the number of blocks frozen.
    pub fn freeze_upto(&mut self, row: usize, words: &[u64]) -> usize {
        let target = row.min(self.len()) / self.block_rows;
        if target <= self.frozen.len() {
            return 0;
        }
        let k = target - self.frozen.len();
        let first = self.frozen.len();
        for i in 0..k {
            let base = (first + i) * self.block_rows;
            let chunk = &self.hot[i * self.block_rows..(i + 1) * self.block_rows];
            let meta = meta_of(chunk, words, base);
            let block = match self.encoding {
                Some(e) => EncodedBlock::encode(chunk, e),
                None => EncodedBlock::encode_auto(chunk),
            };
            self.frozen.push(FrozenBlock {
                block,
                meta,
                state: BlockState::Frozen,
            });
        }
        self.hot = self.hot.split_off(k * self.block_rows);
        self.accesses.resize(self.frozen.len());
        k
    }

    /// Thaw blocks `b..` back into the hot tail (the frozen prefix must
    /// stay contiguous, so thawing is suffix-granular: to thaw one block,
    /// pass its index and everything younger melts with it). Dropped
    /// blocks thaw as zero-filled — their values are gone for good.
    /// Returns the number of rows thawed.
    pub fn thaw_block(&mut self, b: usize) -> usize {
        if b >= self.frozen.len() {
            return 0;
        }
        let melted: Vec<FrozenBlock> = self.frozen.split_off(b);
        let mut values = Vec::with_capacity(melted.len() * self.block_rows + self.hot.len());
        for f in &melted {
            if f.is_dropped() {
                values.resize(values.len() + self.block_rows, 0);
            } else {
                values.extend(f.block.decode());
            }
        }
        let thawed = values.len();
        values.append(&mut self.hot);
        self.hot = values;
        self.accesses.resize(self.frozen.len());
        thawed
    }

    /// Record that `row` was forgotten: the owning frozen block's active
    /// count drops so meta pruning sees it immediately. Hot rows have no
    /// meta to maintain.
    #[inline]
    pub fn note_forget(&mut self, row: usize) {
        let b = row / self.block_rows;
        if let Some(f) = self.frozen.get_mut(b) {
            f.meta.active = f.meta.active.saturating_sub(1);
        }
    }

    /// Surrender the payload of fully-forgotten frozen block `b`
    /// (`meta.active` must be 0; otherwise a no-op returning 0). The
    /// block keeps its row range — only a 2-byte all-zero RLE placeholder
    /// remains. Returns the compressed bytes reclaimed.
    pub fn drop_block(&mut self, b: usize) -> usize {
        let Some(f) = self.frozen.get_mut(b) else {
            return 0;
        };
        if f.meta.active != 0 || f.is_dropped() {
            return 0;
        }
        let old = f.block.compressed_bytes();
        let mut buf = BytesMut::new();
        write_signed(&mut buf, 0);
        write_varint(&mut buf, self.block_rows as u64);
        f.block = EncodedBlock::from_parts(Encoding::Rle, self.block_rows, buf.freeze());
        f.state = BlockState::Dropped;
        // Scrub the zone bounds too: they are value-derived (undefined
        // while `active == 0`), and leaving them would let forgotten
        // extremes outlive the drop in snapshots.
        f.meta.min = 0;
        f.meta.max = 0;
        old.saturating_sub(f.block.compressed_bytes())
    }

    /// Re-encode frozen block `b` after forgetting: forgotten rows'
    /// values are squashed onto their last active neighbour (lengthening
    /// runs and shrinking dictionaries), meta bounds tighten to the
    /// surviving rows, and the smaller encoding wins (the old payload is
    /// kept if recompression does not help). Returns compressed bytes
    /// saved.
    ///
    /// Safe because active-only scans AND every mask with the activity
    /// words: a forgotten row's value can change freely without a single
    /// query result moving. The complete-scan regime
    /// (`ScanSeesForgotten`) must not drive recompression — the store
    /// layer gates on visibility.
    pub fn recompress_block(&mut self, b: usize, words: &[u64]) -> usize {
        let block_rows = self.block_rows;
        let Some(f) = self.frozen.get_mut(b) else {
            return 0;
        };
        if f.is_dropped() {
            return 0;
        }
        let base = b * block_rows;
        let mut values = f.block.decode();
        let mut meta = BlockMeta {
            min: Value::MAX,
            max: Value::MIN,
            active: 0,
        };
        let mut last_active = 0i64;
        for (i, v) in values.iter_mut().enumerate() {
            if bit_set(words, base + i) {
                meta.min = meta.min.min(*v);
                meta.max = meta.max.max(*v);
                meta.active += 1;
                last_active = *v;
            } else {
                *v = last_active;
            }
        }
        let reencoded = match self.encoding {
            Some(e) => EncodedBlock::encode(&values, e),
            None => EncodedBlock::encode_auto(&values),
        };
        f.meta = meta;
        let old = f.block.compressed_bytes();
        if reencoded.compressed_bytes() < old {
            f.block = reencoded;
            f.state = BlockState::Recompressed;
            old - f.block.compressed_bytes()
        } else {
            0
        }
    }

    /// Decode one frozen block (or borrow nothing for dropped: yields
    /// zeros) — the slow path for consumers that need materialized
    /// values.
    pub fn block_dense(&self, b: usize) -> Vec<Value> {
        let f = &self.frozen[b];
        if f.is_dropped() {
            vec![0; self.block_rows]
        } else {
            f.block.decode()
        }
    }

    /// Materialize the whole column in physical row order (frozen blocks
    /// decode; dropped blocks yield zeros).
    pub fn dense_values(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len());
        for b in 0..self.frozen.len() {
            out.extend(self.block_dense(b));
        }
        out.extend_from_slice(&self.hot);
        out
    }

    /// Compressed bytes currently held by frozen blocks.
    pub fn bytes_frozen(&self) -> usize {
        self.frozen.iter().map(|f| f.block.compressed_bytes()).sum()
    }

    /// Approximate resident heap bytes: frozen payloads + per-block
    /// bookkeeping + hot-tail capacity.
    pub fn memory_bytes(&self) -> usize {
        self.bytes_frozen()
            + self.frozen.capacity() * std::mem::size_of::<FrozenBlock>()
            + self.hot.capacity() * std::mem::size_of::<Value>()
            + std::mem::size_of::<Self>()
    }

    /// Bytes a flat `Vec<i64>` of the same length would use.
    pub fn plain_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<Value>()
    }

    /// Rows living in dropped blocks — row ids that still exist but whose
    /// values were surrendered. Reported separately from
    /// [`Self::compression_ratio`]: dropped rows are *amnesia* savings,
    /// not *compression* savings, and folding them into the ratio would
    /// let a table that forgot everything claim an arbitrarily large
    /// codec win.
    pub fn dropped_rows(&self) -> usize {
        self.frozen.iter().filter(|f| f.is_dropped()).count() * self.block_rows
    }

    /// Plain bytes of the *surviving* rows / resident bytes (≥ 1 means
    /// tiering is paying rent). Rows whose blocks were dropped are
    /// excluded from the numerator — after `drop_forgotten_blocks`
    /// surrenders payloads, `len` stays fixed while resident bytes
    /// approach zero, and the naive `plain_bytes / resident` quotient
    /// would inflate without bound ([`Self::dropped_rows`] carries that
    /// information instead). Returns 1.0 when nothing survives.
    pub fn compression_ratio(&self) -> f64 {
        let surviving = (self.len() - self.dropped_rows()) * std::mem::size_of::<Value>();
        let resident = self.memory_bytes();
        if resident == 0 || surviving == 0 {
            1.0
        } else {
            surviving as f64 / resident as f64
        }
    }
}

impl Default for TieredColumn {
    fn default() -> Self {
        Self::new()
    }
}

/// Meta over one block's values: min/max/count of the rows whose activity
/// bit (at global row `base + i`) is set.
fn meta_of(chunk: &[Value], words: &[u64], base: usize) -> BlockMeta {
    let mut meta = BlockMeta {
        min: Value::MAX,
        max: Value::MIN,
        active: 0,
    };
    for (i, &v) in chunk.iter().enumerate() {
        if bit_set(words, base + i) {
            meta.min = meta.min.min(v);
            meta.max = meta.max.max(v);
            meta.active += 1;
        }
    }
    meta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_active(n: usize) -> Vec<u64> {
        let mut words = vec![!0u64; n.div_ceil(WORD_BITS)];
        if let Some(last) = words.last_mut() {
            let used = n - (n / WORD_BITS) * WORD_BITS;
            if used != 0 {
                *last = (1u64 << used) - 1;
            }
        }
        words
    }

    #[test]
    fn freeze_upto_compresses_full_blocks_only() {
        let mut c = TieredColumn::with_block_rows(64);
        let values: Vec<i64> = (0..200).collect();
        c.extend_from_slice(&values);
        assert!(c.is_fully_hot());
        let frozen = c.freeze_upto(200, &all_active(200));
        assert_eq!(frozen, 3, "3 full blocks of 64; 8 rows stay hot");
        assert_eq!(c.frozen_blocks(), 3);
        assert_eq!(c.hot_start(), 192);
        assert_eq!(c.hot_values(), &values[192..]);
        assert_eq!(c.len(), 200);
        // Values read back identically through the tiers.
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.value_at(i), v, "row {i}");
        }
        // Meta is cached per block.
        assert_eq!(c.meta(1).min, 64);
        assert_eq!(c.meta(1).max, 127);
        assert_eq!(c.meta(1).active, 64);
        // Freezing again below the boundary is a no-op.
        assert_eq!(c.freeze_upto(100, &all_active(200)), 0);
    }

    #[test]
    fn thaw_restores_hot_suffix() {
        let mut c = TieredColumn::with_block_rows(64);
        let values: Vec<i64> = (0..256).map(|i| i * 7 - 300).collect();
        c.extend_from_slice(&values);
        c.freeze_upto(256, &all_active(256));
        assert_eq!(c.frozen_blocks(), 4);
        let thawed = c.thaw_block(2);
        assert_eq!(thawed, 128);
        assert_eq!(c.frozen_blocks(), 2);
        assert_eq!(c.hot_start(), 128);
        let dense = c.dense_values();
        assert_eq!(dense, values);
        assert_eq!(c.thaw_block(5), 0, "out of range is a no-op");
    }

    #[test]
    fn drop_block_requires_fully_forgotten() {
        let mut c = TieredColumn::with_block_rows(64);
        c.extend_from_slice(&(0..128).collect::<Vec<i64>>());
        let mut words = all_active(128);
        c.freeze_upto(128, &words);
        // Block 0 still has active rows: refuse.
        assert_eq!(c.drop_block(0), 0);
        // Forget every row of block 0.
        words[0] = 0;
        for r in 0..64 {
            c.note_forget(r);
        }
        assert_eq!(c.meta(0).active, 0);
        let freed = c.drop_block(0);
        assert!(freed > 0, "payload reclaimed");
        assert!(c.frozen(0).unwrap().is_dropped());
        assert_eq!(c.value_at(3), 0, "dropped rows read as 0");
        assert_eq!(c.value_at(64), 64, "other blocks untouched");
        assert_eq!(c.drop_block(0), 0, "double drop is a no-op");
        assert_eq!(c.len(), 128, "row ids stay stable");
    }

    #[test]
    fn recompress_squashes_forgotten_rows() {
        // Alternating values defeat RLE; forgetting the odd rows and
        // recompressing turns the block into one long run.
        let values: Vec<i64> = (0..1024).map(|i| if i % 2 == 0 { 5 } else { i }).collect();
        let mut c = TieredColumn::with_block_rows(1024);
        c.extend_from_slice(&values);
        let mut words = all_active(1024);
        c.freeze_upto(1024, &words);
        let before = c.bytes_frozen();
        for r in (1..1024).step_by(2) {
            words[r / 64] &= !(1u64 << (r % 64));
            c.note_forget(r);
        }
        let saved = c.recompress_block(0, &words);
        assert!(saved > 0, "recompression must shrink the payload");
        assert_eq!(c.bytes_frozen(), before - saved);
        assert_eq!(c.frozen(0).unwrap().state(), BlockState::Recompressed);
        // Meta tightened to the active rows.
        assert_eq!(c.meta(0).min, 5);
        assert_eq!(c.meta(0).max, 5);
        assert_eq!(c.meta(0).active, 512);
        // Active rows still read their original values.
        for r in (0..1024).step_by(2) {
            assert_eq!(c.value_at(r), 5, "active row {r}");
        }
    }

    #[test]
    fn meta_prunes_and_tracks_forgets() {
        let mut c = TieredColumn::with_block_rows(64);
        c.extend_from_slice(&(0..128).collect::<Vec<i64>>());
        c.freeze_upto(128, &all_active(128));
        assert!(c.meta(0).may_match(10, 20));
        assert!(!c.meta(0).may_match(64, 100), "bounds prune");
        assert!(!c.meta(1).may_match(0, 64));
        c.note_forget(0);
        assert_eq!(c.meta(0).active, 63);
    }

    #[test]
    fn resident_bytes_shrink_when_cold() {
        let values: Vec<i64> = (0..100_000).collect();
        let mut flat = TieredColumn::new();
        flat.extend_from_slice(&values);
        let mut tiered = flat.clone();
        tiered.freeze_upto(values.len(), &all_active(values.len()));
        assert!(
            tiered.memory_bytes() * 4 < flat.memory_bytes(),
            "frozen {} vs flat {}",
            tiered.memory_bytes(),
            flat.memory_bytes()
        );
        assert!(tiered.compression_ratio() > 4.0);
        assert!(tiered.bytes_frozen() > 0);
        assert_eq!(tiered.dense_values(), values);
    }

    #[test]
    fn dropped_blocks_do_not_inflate_compression_ratio() {
        // Incompressible-ish values: the honest ratio hovers near 1.
        let values: Vec<i64> = (0..4096).map(|i| (i * 0x9E37_79B9) ^ (i << 17)).collect();
        let mut c = TieredColumn::with_block_rows(1024);
        c.extend_from_slice(&values);
        let mut words = all_active(4096);
        c.freeze_upto(4096, &words);
        let honest = c.compression_ratio();
        assert!(honest < 2.0, "incompressible data, got {honest}");
        // Forget and drop 3 of the 4 blocks: resident bytes collapse but
        // the ratio must not claim a codec win it never earned.
        for r in 0..3072 {
            words[r / 64] &= !(1u64 << (r % 64));
            c.note_forget(r);
        }
        for b in 0..3 {
            assert!(c.drop_block(b) > 0);
        }
        assert_eq!(c.dropped_rows(), 3072);
        assert_eq!(c.len(), 4096, "row ids stay stable");
        let after = c.compression_ratio();
        assert!(
            after < honest * 1.5,
            "ratio inflated by drops: {after} vs honest {honest}"
        );
        // A fully dropped column reports a neutral ratio, not infinity.
        for r in 3072..4096 {
            c.note_forget(r);
        }
        c.drop_block(3);
        assert_eq!(c.dropped_rows(), 4096);
        assert_eq!(c.compression_ratio(), 1.0);
    }

    #[test]
    fn pinned_encoding_is_honoured() {
        let mut c = TieredColumn::with_encoding(64, Encoding::Plain);
        c.extend_from_slice(&vec![7i64; 128]);
        c.freeze_upto(128, &all_active(128));
        assert_eq!(c.frozen(0).unwrap().encoded().encoding(), Encoding::Plain);
        c.pin_encoding(Some(Encoding::Rle));
        c.extend_from_slice(&vec![7i64; 64]);
        c.freeze_upto(192, &all_active(192));
        assert_eq!(c.frozen(2).unwrap().encoded().encoding(), Encoding::Rle);
    }

    #[test]
    #[should_panic]
    fn unaligned_block_size_rejected() {
        let _ = TieredColumn::with_block_rows(100);
    }

    #[test]
    fn access_counters_track_blocks_and_stay_out_of_equality() {
        let mut c = TieredColumn::with_block_rows(64);
        c.extend_from_slice(&(0..192).collect::<Vec<i64>>());
        c.freeze_upto(192, &all_active(192));
        assert_eq!(c.total_block_accesses(), 0);
        c.note_block_access(0);
        c.note_block_access(0);
        c.note_block_access(2);
        c.note_block_access(99); // out of range: ignored
        assert_eq!(c.block_accesses(0), 2);
        assert_eq!(c.block_accesses(1), 0);
        assert_eq!(c.block_accesses(2), 1);
        assert_eq!(c.total_block_accesses(), 3);
        // Counters survive clone…
        let twin = c.clone();
        assert_eq!(twin.block_accesses(0), 2);
        // …but never participate in layout equality.
        let mut fresh = TieredColumn::with_block_rows(64);
        fresh.extend_from_slice(&(0..192).collect::<Vec<i64>>());
        fresh.freeze_upto(192, &all_active(192));
        assert_eq!(c, fresh, "access counts are observability, not state");
        // Thawing a suffix truncates its counters.
        c.thaw_block(1);
        assert_eq!(c.total_block_accesses(), 2);
    }

    #[test]
    fn sorted_hint_is_conservative() {
        let mut c = TieredColumn::with_block_rows(64);
        c.extend_from_slice(&(0..200).collect::<Vec<i64>>());
        assert!(c.sorted_hint(), "sorted hot tail");
        c.freeze_upto(200, &all_active(200));
        assert!(c.sorted_hint(), "sorted across tiers");
        // A hot value below the frozen max breaks the chain.
        c.push(-1);
        assert!(!c.sorted_hint());
        // Unsorted hot tail.
        let mut u = TieredColumn::with_block_rows(64);
        u.extend_from_slice(&[3, 1, 2]);
        assert!(!u.sorted_hint());
        // Out-of-order block metas.
        let mut o = TieredColumn::with_block_rows(64);
        o.extend_from_slice(&(0..64).rev().collect::<Vec<i64>>());
        o.extend_from_slice(&(100..164).collect::<Vec<i64>>());
        o.freeze_upto(128, &all_active(128));
        // Block 0 meta is [0,63], block 1 meta [100,163]: the chain holds
        // even though block 0 is internally reversed — which is exactly
        // why the hint must be verified on materialized keys.
        assert!(o.sorted_hint());
        let mut bad = TieredColumn::with_block_rows(64);
        bad.extend_from_slice(&(100..164).collect::<Vec<i64>>());
        bad.extend_from_slice(&(0..64).collect::<Vec<i64>>());
        bad.freeze_upto(128, &all_active(128));
        assert!(!bad.sorted_hint());
        assert!(TieredColumn::new().sorted_hint(), "empty column is sorted");
    }
}
