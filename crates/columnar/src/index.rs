//! Droppable, re-creatable secondary index.
//!
//! Paper §4.4: "indices improve the query processing, but also consume
//! quite some space. They can be easily dropped, and recreated upon need,
//! to reduce the storage footprint. This technique is already heavily used
//! in MonetDB without the user turning performance knobs."
//!
//! [`SortedIndex`] is a value-sorted array of `(value, row)` pairs over the
//! *active* tuples of one column. Forgetting after a build leaves stale
//! entries; probes filter them against the activity map, and a staleness
//! ratio tells the planner when rebuilding pays off. Dropping the index
//! frees its memory instantly — one of the paper's "what to forget first"
//! options that sacrifices no information at all.

use serde::{Deserialize, Serialize};

use crate::table::Table;
use crate::types::{RowId, Value};

/// Lifecycle state of the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexState {
    /// Usable; entries are sorted by value.
    Built,
    /// Dropped to reclaim memory; probes are not possible.
    Dropped,
}

/// A sorted secondary index over one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortedIndex {
    col: usize,
    entries: Vec<(Value, RowId)>,
    state: IndexState,
    /// Forgets observed since the last build (stale entries).
    stale: usize,
    /// Number of times the index has been (re)built.
    builds: usize,
}

impl SortedIndex {
    /// Build over the active rows of `col`.
    pub fn build(table: &Table, col: usize) -> Self {
        let mut idx = Self {
            col,
            entries: Vec::new(),
            state: IndexState::Dropped,
            stale: 0,
            builds: 0,
        };
        idx.rebuild(table);
        idx
    }

    /// Create in the dropped state (build later, on demand).
    pub fn dropped(col: usize) -> Self {
        Self {
            col,
            entries: Vec::new(),
            state: IndexState::Dropped,
            stale: 0,
            builds: 0,
        }
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.col
    }

    /// Current lifecycle state.
    pub fn state(&self) -> IndexState {
        self.state
    }

    /// True if probes are possible.
    pub fn is_usable(&self) -> bool {
        self.state == IndexState::Built
    }

    /// Number of entries (0 when dropped).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Times the index has been (re)built.
    pub fn build_count(&self) -> usize {
        self.builds
    }

    /// (Re)build from the active rows; clears staleness. Tier-aware:
    /// frozen columns are materialized once for the build instead of
    /// paying a codec point-read per row.
    pub fn rebuild(&mut self, table: &Table) {
        self.entries.clear();
        self.entries.reserve(table.active_rows());
        let values = table.col_values_dense(self.col);
        for row in table.iter_active() {
            self.entries.push((values[row.as_usize()], row));
        }
        self.entries.sort_unstable();
        self.state = IndexState::Built;
        self.stale = 0;
        self.builds += 1;
    }

    /// Drop the index, reclaiming its memory.
    pub fn drop_index(&mut self) {
        self.entries = Vec::new();
        self.state = IndexState::Dropped;
        self.stale = 0;
    }

    /// Record that a row was forgotten after the last build.
    pub fn note_forget(&mut self) {
        if self.state == IndexState::Built {
            self.stale += 1;
        }
    }

    /// Fraction of entries that are stale (0.0 right after a build).
    pub fn staleness(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.stale as f64 / self.entries.len() as f64
        }
    }

    /// True when staleness exceeds `threshold` and a rebuild is advisable.
    pub fn needs_rebuild(&self, threshold: f64) -> bool {
        !self.is_usable() || self.staleness() > threshold
    }

    /// Row ids with value in `[lo, hi]`, *including* entries whose rows
    /// were forgotten after the build. Callers that need exact active
    /// results should use [`Self::probe_range_active`].
    ///
    /// Panics if the index is dropped.
    pub fn probe_range(&self, lo: Value, hi: Value) -> Vec<RowId> {
        assert!(self.is_usable(), "probe on a dropped index");
        let start = self.entries.partition_point(|&(v, _)| v < lo);
        let end = self.entries.partition_point(|&(v, _)| v <= hi);
        self.entries[start..end].iter().map(|&(_, r)| r).collect()
    }

    /// Row ids with value in `[lo, hi]`, filtered to active rows.
    ///
    /// This is the "index-based query evaluation will skip the forgotten
    /// data" path from paper §1.
    pub fn probe_range_active(&self, table: &Table, lo: Value, hi: Value) -> Vec<RowId> {
        assert!(self.is_usable(), "probe on a dropped index");
        let activity = table.activity();
        let start = self.entries.partition_point(|&(v, _)| v < lo);
        let end = self.entries.partition_point(|&(v, _)| v <= hi);
        self.entries[start..end]
            .iter()
            .filter(|&&(_, r)| activity.is_active(r))
            .map(|&(_, r)| r)
            .collect()
    }

    /// Approximate heap footprint in bytes (why dropping helps).
    pub fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(Value, RowId)>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table_with(values: &[Value]) -> Table {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(values, 0).unwrap();
        t
    }

    #[test]
    fn probe_returns_sorted_matches() {
        let t = table_with(&[50, 10, 30, 20, 40]);
        let idx = SortedIndex::build(&t, 0);
        assert_eq!(idx.len(), 5);
        let rows = idx.probe_range(15, 35);
        // values 20 (row 3) and 30 (row 2) in value order
        assert_eq!(rows, vec![RowId(3), RowId(2)]);
    }

    #[test]
    fn probe_active_filters_forgotten() {
        let mut t = table_with(&[10, 20, 30, 40]);
        let mut idx = SortedIndex::build(&t, 0);
        t.forget(RowId(1), 1).unwrap();
        idx.note_forget();
        // Raw probe still returns the stale entry…
        assert_eq!(idx.probe_range(0, 100).len(), 4);
        // …but the active probe skips it.
        assert_eq!(
            idx.probe_range_active(&t, 0, 100),
            vec![RowId(0), RowId(2), RowId(3)]
        );
        assert!(idx.staleness() > 0.0);
    }

    #[test]
    fn rebuild_clears_staleness_and_shrinks() {
        let mut t = table_with(&[10, 20, 30, 40]);
        let mut idx = SortedIndex::build(&t, 0);
        t.forget(RowId(0), 1).unwrap();
        t.forget(RowId(2), 1).unwrap();
        idx.note_forget();
        idx.note_forget();
        assert!(idx.needs_rebuild(0.3));
        idx.rebuild(&t);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.staleness(), 0.0);
        assert_eq!(idx.build_count(), 2);
    }

    #[test]
    fn drop_frees_and_blocks_probes() {
        let t = table_with(&[1, 2, 3]);
        let mut idx = SortedIndex::build(&t, 0);
        let before = idx.memory_bytes();
        idx.drop_index();
        assert!(!idx.is_usable());
        assert!(idx.memory_bytes() < before);
        assert!(idx.needs_rebuild(0.0));
    }

    #[test]
    #[should_panic(expected = "dropped index")]
    fn probe_on_dropped_panics() {
        let t = table_with(&[1]);
        let mut idx = SortedIndex::build(&t, 0);
        idx.drop_index();
        let _ = idx.probe_range(0, 10);
    }

    #[test]
    fn duplicate_values_all_returned() {
        let t = table_with(&[5, 5, 5, 1]);
        let idx = SortedIndex::build(&t, 0);
        assert_eq!(idx.probe_range(5, 5).len(), 3);
        assert_eq!(idx.probe_range(6, 10).len(), 0);
    }
}
