//! Shared machinery for the fused decode+filter paths.
//!
//! Every codec exposes a `filter_range_masks` that evaluates a `[lo, hi)`
//! range predicate *inside* the decoder loop and emits packed 64-bit
//! selection masks — bit `i` of word `i / 64` is set iff value `i`
//! matches. The helpers here keep the mask contract in one place: the
//! [`MaskWriter`] packs bits LSB-first and zero-fills the tail of the last
//! partial word, and [`range_width`] / [`in_range`] implement the same
//! single-unsigned-compare range test the batch kernels use, so a mask
//! produced here is directly AND-able with activity words.

use crate::types::Value;

/// Streaming COUNT/SUM/MIN/MAX accumulator for the fused masked-aggregate
/// paths (`fold_range_masked`). The engine folds it into its own
/// `AggState` via one `push_block`; keeping a local type here lets the
/// codecs aggregate in their own domain without a dependency on the
/// engine crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockAgg {
    /// Number of folded values.
    pub count: u64,
    /// Sum of folded values (`i128`: no `i64` input can overflow it).
    pub sum: i128,
    /// Minimum folded value (undefined when `count == 0`).
    pub min: Value,
    /// Maximum folded value (undefined when `count == 0`).
    pub max: Value,
}

impl BlockAgg {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: Value::MAX,
            max: Value::MIN,
        }
    }

    /// Fold one value.
    #[inline]
    pub fn push(&mut self, v: Value) {
        self.count += 1;
        self.sum += v as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `n` copies of the same value (the RLE fan-out).
    #[inline]
    pub fn push_repeated(&mut self, v: Value, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += v as i128 * n as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

impl Default for BlockAgg {
    fn default() -> Self {
        Self::new()
    }
}

/// Is the row's bit set in the block-local selection words?
#[inline]
pub(crate) fn bit_set(words: &[u64], i: usize) -> bool {
    words.get(i / 64).is_some_and(|w| w >> (i % 64) & 1 == 1)
}

/// All-ones mask of the low `n` bits (total for `n <= 64`).
#[inline]
fn low_ones(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// The `wi`-th little-endian u64 of a packed region, 0 past the end —
/// one unaligned load, no intermediate `Vec<u64>`.
#[inline]
fn read_packed_word(region: &[u8], wi: usize) -> u64 {
    let start = wi * 8;
    match region.get(start..start + 8) {
        Some(b) => u64::from_le_bytes(b.try_into().expect("8 bytes")),
        None => 0,
    }
}

/// Read the `width`-bit field at index `i` from a fixed-width packed
/// region: one branchless two-word unpack (the adjacent words are
/// widened to `u128`, shifted, masked) — no per-bit loop, no
/// allocation, valid for any width up to 64. Shared by the dict code
/// and frame-of-reference offset random-access paths.
#[inline]
pub(super) fn unpack_fixed(region: &[u8], width: u32, i: usize) -> u64 {
    let bit = i * width as usize;
    let wi = bit / 64;
    let shift = (bit % 64) as u32;
    let pair =
        read_packed_word(region, wi) as u128 | (read_packed_word(region, wi + 1) as u128) << 64;
    ((pair >> shift) as u64) & low_ones(width)
}

/// `hi − lo` in the unsigned domain; 0 when the range is empty, so the
/// wrapping compare in [`in_range`] rejects everything.
#[inline]
pub(super) fn range_width(lo: Value, hi: Value) -> u64 {
    (hi as i128 - lo as i128).max(0) as u64
}

/// Single-compare range test: `lo <= v < hi` given `width = hi − lo`.
#[inline]
pub(super) fn in_range(v: Value, lo: Value, width: u64) -> bool {
    (v as u64).wrapping_sub(lo as u64) < width
}

/// Packs predicate bits into 64-bit selection words, LSB-first.
///
/// The writer appends one word per 64 values pushed; [`MaskWriter::finish`]
/// flushes a partial word with its unused high bits clear, so consumers
/// can AND the result with (clipped) activity words without masking again.
pub(super) struct MaskWriter<'a> {
    out: &'a mut Vec<u64>,
    word: u64,
    filled: u32,
}

impl<'a> MaskWriter<'a> {
    /// Writer appending to `out`.
    pub(super) fn new(out: &'a mut Vec<u64>) -> Self {
        Self {
            out,
            word: 0,
            filled: 0,
        }
    }

    /// Append one predicate bit.
    #[inline]
    pub(super) fn push_bit(&mut self, matched: bool) {
        self.word |= (matched as u64) << self.filled;
        self.filled += 1;
        if self.filled == 64 {
            self.out.push(self.word);
            self.word = 0;
            self.filled = 0;
        }
    }

    /// Append `len` copies of the same predicate bit (the RLE fan-out):
    /// whole matching words are emitted as `!0` with no per-bit work.
    pub(super) fn push_run(&mut self, matched: bool, mut len: usize) {
        if self.filled != 0 {
            // Fill the current partial word first.
            let take = len.min(64 - self.filled as usize);
            if matched {
                let ones = if take == 64 { !0 } else { (1u64 << take) - 1 };
                self.word |= ones << self.filled;
            }
            self.filled += take as u32;
            len -= take;
            if self.filled == 64 {
                self.out.push(self.word);
                self.word = 0;
                self.filled = 0;
            }
        }
        // Whole words at once.
        let full = if matched { !0u64 } else { 0 };
        while len >= 64 {
            self.out.push(full);
            len -= 64;
        }
        if len > 0 {
            if matched {
                self.word = (1u64 << len) - 1;
            }
            self.filled = len as u32;
        }
    }

    /// Flush any trailing partial word (high bits zero).
    pub(super) fn finish(self) {
        if self.filled > 0 {
            self.out.push(self.word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_packs_bits_lsb_first() {
        let mut out = Vec::new();
        let mut w = MaskWriter::new(&mut out);
        for i in 0..70 {
            w.push_bit(i % 3 == 0);
        }
        w.finish();
        assert_eq!(out.len(), 2);
        for i in 0..70usize {
            let bit = out[i / 64] >> (i % 64) & 1;
            assert_eq!(bit == 1, i % 3 == 0, "bit {i}");
        }
        // Tail bits of the last word stay clear.
        assert_eq!(out[1] >> 6, 0);
    }

    #[test]
    fn runs_match_bitwise_reference() {
        let runs = [
            (true, 3usize),
            (false, 61),
            (true, 64),
            (false, 1),
            (true, 130),
        ];
        let mut fast = Vec::new();
        let mut w = MaskWriter::new(&mut fast);
        for &(m, len) in &runs {
            w.push_run(m, len);
        }
        w.finish();
        let mut slow = Vec::new();
        let mut w = MaskWriter::new(&mut slow);
        for &(m, len) in &runs {
            for _ in 0..len {
                w.push_bit(m);
            }
        }
        w.finish();
        assert_eq!(fast, slow);
    }

    #[test]
    fn block_agg_folds() {
        let mut a = BlockAgg::new();
        a.push(5);
        a.push_repeated(-2, 3);
        a.push_repeated(100, 0);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, -1);
        assert_eq!(a.min, -2);
        assert_eq!(a.max, 5);
    }

    #[test]
    fn unpack_fixed_matches_bit_reference() {
        // 200 fields of each width, packed LSB-first, then read back.
        for width in [1u32, 3, 7, 8, 13, 31, 33, 64] {
            let values: Vec<u64> = (0..200u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & low_ones(width))
                .collect();
            let mut bits = Vec::new();
            for &v in &values {
                for b in 0..width {
                    bits.push(v >> b & 1 == 1);
                }
            }
            let mut region = vec![0u8; bits.len().div_ceil(8)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    region[i / 8] |= 1 << (i % 8);
                }
            }
            // Pad to whole words like the encoders do.
            region.resize(region.len().div_ceil(8) * 8, 0);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(unpack_fixed(&region, width, i), v, "width {width} i {i}");
            }
        }
    }

    #[test]
    fn range_width_and_in_range() {
        assert_eq!(range_width(10, 10), 0);
        assert_eq!(range_width(10, 5), 0);
        assert_eq!(range_width(i64::MIN, i64::MAX), u64::MAX);
        let w = range_width(-5, 5);
        assert!(in_range(-5, -5, w));
        assert!(in_range(4, -5, w));
        assert!(!in_range(5, -5, w));
        assert!(!in_range(-6, -5, w));
        assert!(!in_range(i64::MIN, -5, w));
        assert!(!in_range(i64::MAX, -5, w));
    }
}
