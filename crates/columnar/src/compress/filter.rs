//! Shared machinery for the fused decode+filter paths.
//!
//! Every codec exposes a `filter_range_masks` that evaluates a `[lo, hi)`
//! range predicate *inside* the decoder loop and emits packed 64-bit
//! selection masks — bit `i` of word `i / 64` is set iff value `i`
//! matches. The helpers here keep the mask contract in one place: the
//! [`MaskWriter`] packs bits LSB-first and zero-fills the tail of the last
//! partial word, and [`range_width`] / [`in_range`] implement the same
//! single-unsigned-compare range test the batch kernels use, so a mask
//! produced here is directly AND-able with activity words.

use crate::types::Value;

/// `hi − lo` in the unsigned domain; 0 when the range is empty, so the
/// wrapping compare in [`in_range`] rejects everything.
#[inline]
pub(super) fn range_width(lo: Value, hi: Value) -> u64 {
    (hi as i128 - lo as i128).max(0) as u64
}

/// Single-compare range test: `lo <= v < hi` given `width = hi − lo`.
#[inline]
pub(super) fn in_range(v: Value, lo: Value, width: u64) -> bool {
    (v as u64).wrapping_sub(lo as u64) < width
}

/// Packs predicate bits into 64-bit selection words, LSB-first.
///
/// The writer appends one word per 64 values pushed; [`MaskWriter::finish`]
/// flushes a partial word with its unused high bits clear, so consumers
/// can AND the result with (clipped) activity words without masking again.
pub(super) struct MaskWriter<'a> {
    out: &'a mut Vec<u64>,
    word: u64,
    filled: u32,
}

impl<'a> MaskWriter<'a> {
    /// Writer appending to `out`.
    pub(super) fn new(out: &'a mut Vec<u64>) -> Self {
        Self {
            out,
            word: 0,
            filled: 0,
        }
    }

    /// Append one predicate bit.
    #[inline]
    pub(super) fn push_bit(&mut self, matched: bool) {
        self.word |= (matched as u64) << self.filled;
        self.filled += 1;
        if self.filled == 64 {
            self.out.push(self.word);
            self.word = 0;
            self.filled = 0;
        }
    }

    /// Append `len` copies of the same predicate bit (the RLE fan-out):
    /// whole matching words are emitted as `!0` with no per-bit work.
    pub(super) fn push_run(&mut self, matched: bool, mut len: usize) {
        if self.filled != 0 {
            // Fill the current partial word first.
            let take = len.min(64 - self.filled as usize);
            if matched {
                let ones = if take == 64 { !0 } else { (1u64 << take) - 1 };
                self.word |= ones << self.filled;
            }
            self.filled += take as u32;
            len -= take;
            if self.filled == 64 {
                self.out.push(self.word);
                self.word = 0;
                self.filled = 0;
            }
        }
        // Whole words at once.
        let full = if matched { !0u64 } else { 0 };
        while len >= 64 {
            self.out.push(full);
            len -= 64;
        }
        if len > 0 {
            if matched {
                self.word = (1u64 << len) - 1;
            }
            self.filled = len as u32;
        }
    }

    /// Flush any trailing partial word (high bits zero).
    pub(super) fn finish(self) {
        if self.filled > 0 {
            self.out.push(self.word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_packs_bits_lsb_first() {
        let mut out = Vec::new();
        let mut w = MaskWriter::new(&mut out);
        for i in 0..70 {
            w.push_bit(i % 3 == 0);
        }
        w.finish();
        assert_eq!(out.len(), 2);
        for i in 0..70usize {
            let bit = out[i / 64] >> (i % 64) & 1;
            assert_eq!(bit == 1, i % 3 == 0, "bit {i}");
        }
        // Tail bits of the last word stay clear.
        assert_eq!(out[1] >> 6, 0);
    }

    #[test]
    fn runs_match_bitwise_reference() {
        let runs = [
            (true, 3usize),
            (false, 61),
            (true, 64),
            (false, 1),
            (true, 130),
        ];
        let mut fast = Vec::new();
        let mut w = MaskWriter::new(&mut fast);
        for &(m, len) in &runs {
            w.push_run(m, len);
        }
        w.finish();
        let mut slow = Vec::new();
        let mut w = MaskWriter::new(&mut slow);
        for &(m, len) in &runs {
            for _ in 0..len {
                w.push_bit(m);
            }
        }
        w.finish();
        assert_eq!(fast, slow);
    }

    #[test]
    fn range_width_and_in_range() {
        assert_eq!(range_width(10, 10), 0);
        assert_eq!(range_width(10, 5), 0);
        assert_eq!(range_width(i64::MIN, i64::MAX), u64::MAX);
        let w = range_width(-5, 5);
        assert!(in_range(-5, -5, w));
        assert!(in_range(4, -5, w));
        assert!(!in_range(5, -5, w));
        assert!(!in_range(-6, -5, w));
        assert!(!in_range(i64::MIN, -5, w));
        assert!(!in_range(i64::MAX, -5, w));
    }
}
