//! Lightweight column compression.
//!
//! Paper §4.4: "Data compression can be called upon to postpone the
//! decisions to forget data." Every byte saved stretches the storage
//! budget `DBSIZE` before any tuple must rot. This module implements the
//! classic column-store codecs — run-length, delta, frame-of-reference
//! bit-packing and dictionary — behind one [`EncodedBlock`] type with an
//! automatic chooser, so the ablation experiment can quantify exactly how
//! many batches of amnesia each codec buys per distribution.
//!
//! # The mask contract (fused decode+filter)
//!
//! Compressed data only postpones forgetting if predicates can run on it
//! without a full decode. Every codec therefore exposes a fused
//! `filter_range_masks(data, lo, hi, out)` that evaluates `lo <= v < hi`
//! *inside* the decoder loop and appends packed 64-bit selection words to
//! `out` — bit `i` of word `i / 64` is set iff row `i` of the block
//! matches, LSB-first, with the unused tail bits of the last word clear.
//! That is byte-for-byte the mask layout of the engine's batch kernels
//! and of [`ActivityMap::words`](crate::activity::ActivityMap::words), so
//! a block's masks AND directly with its slice of activity words and flow
//! into the same `trailing_zeros` emit loops — no row is ever
//! materialized to be rejected. Each codec exploits its own structure:
//!
//! * **rle** compares once per *run* and fans the verdict out into whole
//!   mask words ([`rle::filter_range_masks`]),
//! * **dict** translates the value range into a contiguous *code* range
//!   via two binary searches over the sorted dictionary and compares
//!   bit-packed codes, never reconstructing values
//!   ([`dict::filter_range_masks`]),
//! * **forpack** rebases the predicate constants into offset space once
//!   and compares raw unpacked offsets ([`forpack::filter_range_masks`]),
//! * **delta** fuses the compare into the sequential prefix-sum walk
//!   ([`delta::filter_range_masks`]),
//! * **plain** is the batch kernel's compare over the raw words.
//!
//! [`EncodedBlock::filter_range_masks`] dispatches on the block's
//! encoding; equivalence with decode-then-test is pinned by each codec's
//! unit tests, the property tests below, and
//! `tests/kernel_equivalence.rs` at the engine level.

pub mod delta;
pub mod dict;
mod filter;
pub mod forpack;
pub mod rle;
pub mod varint;

use std::cell::Cell;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

pub(crate) use filter::bit_set;
pub use filter::BlockAgg;

use crate::types::Value;

thread_local! {
    /// Dense block decodes performed by this thread (see
    /// [`block_decodes`]).
    static BLOCK_DECODES: Cell<u64> = const { Cell::new(0) };
}

/// Number of dense [`EncodedBlock::decode`] calls this thread has made.
///
/// The fused kernels' whole bargain is that compressed blocks stay
/// queryable *without* materializing a `Vec<Value>`; this counter lets
/// tests and benches pin that bargain — snapshot it, run a tiered
/// operator, and assert the delta is zero. Thread-local on purpose:
/// concurrently running tests cannot pollute each other's deltas.
///
/// `amnesia-lint`'s `dense` rule is this counter's static twin: decode
/// calls are banned outside whitelisted seams over every line of
/// source, not just executed paths (see `CONTRIBUTING.md`).
pub fn block_decodes() -> u64 {
    BLOCK_DECODES.with(Cell::get)
}

/// Available encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Encoding {
    /// Raw 8-byte little-endian values.
    Plain,
    /// Run-length: (value, run) pairs. Wins on serial keys' epochs and
    /// low-cardinality data.
    Rle,
    /// Zigzag-varint deltas. Wins on sorted / slowly-changing sequences.
    Delta,
    /// Frame-of-reference + bit-packing. Wins on values in a narrow band.
    ForPack,
    /// Dictionary + bit-packed codes. Wins on skewed (zipfian) data.
    Dict,
}

impl Encoding {
    /// All encodings, for sweeps.
    pub const ALL: [Encoding; 5] = [
        Encoding::Plain,
        Encoding::Rle,
        Encoding::Delta,
        Encoding::ForPack,
        Encoding::Dict,
    ];

    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Rle => "rle",
            Encoding::Delta => "delta",
            Encoding::ForPack => "forpack",
            Encoding::Dict => "dict",
        }
    }

    /// Stable on-disk tag (snapshot format).
    pub fn tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Rle => 1,
            Encoding::Delta => 2,
            Encoding::ForPack => 3,
            Encoding::Dict => 4,
        }
    }

    /// Inverse of [`Encoding::tag`].
    pub fn from_tag(tag: u8) -> Option<Encoding> {
        Some(match tag {
            0 => Encoding::Plain,
            1 => Encoding::Rle,
            2 => Encoding::Delta,
            3 => Encoding::ForPack,
            4 => Encoding::Dict,
            _ => return None,
        })
    }
}

/// An immutable compressed block of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedBlock {
    encoding: Encoding,
    #[serde(with = "serde_bytes_compat")]
    data: Bytes,
    len: usize,
}

/// Minimal serde adapter for `bytes::Bytes` (`Vec<u8>` passthrough).
// The offline serde shim's no-op derive never references `with` helpers,
// so these are only exercised when building against real serde.
#[allow(dead_code)]
mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        b.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        Ok(Bytes::from(Vec::<u8>::deserialize(d)?))
    }
}

impl EncodedBlock {
    /// Encode `values` with a specific encoding.
    pub fn encode(values: &[Value], encoding: Encoding) -> Self {
        let data = match encoding {
            Encoding::Plain => plain_encode(values),
            Encoding::Rle => rle::encode(values),
            Encoding::Delta => delta::encode(values),
            Encoding::ForPack => forpack::encode(values),
            Encoding::Dict => dict::encode(values),
        };
        Self {
            encoding,
            data,
            len: values.len(),
        }
    }

    /// Encode with whichever encoding yields the fewest bytes.
    pub fn encode_auto(values: &[Value]) -> Self {
        Encoding::ALL
            .iter()
            .map(|&e| Self::encode(values, e))
            .min_by_key(|b| b.compressed_bytes())
            .expect("at least one encoding")
    }

    /// Decode back to the original values.
    ///
    /// This is the *dense materialization* path the fused kernels exist
    /// to avoid; every call bumps the thread's [`block_decodes`] counter
    /// so tests and benches can assert a tiered operator never took it.
    pub fn decode(&self) -> Vec<Value> {
        BLOCK_DECODES.with(|c| c.set(c.get() + 1));
        match self.encoding {
            Encoding::Plain => plain_decode(&self.data),
            Encoding::Rle => rle::decode(&self.data),
            Encoding::Delta => delta::decode(&self.data),
            Encoding::ForPack => forpack::decode(&self.data),
            Encoding::Dict => dict::decode(&self.data),
        }
    }

    /// Fused decode+filter: replace `out` with one selection-mask word
    /// per 64 encoded rows, bit `i` of word `i / 64` set iff
    /// `lo <= value[i] < hi` (see the module docs for the full mask
    /// contract). Runs inside the codec's decoder loop — values are never
    /// materialized — and costs O(compressed size), not O(rows), for
    /// codecs with exploitable structure (whole RLE runs and disjoint or
    /// fully-covered dictionaries collapse to constant fills).
    pub fn filter_range_masks(&self, lo: Value, hi: Value, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.len.div_ceil(64));
        match self.encoding {
            Encoding::Plain => plain_filter_range_masks(&self.data, lo, hi, out),
            Encoding::Rle => rle::filter_range_masks(&self.data, lo, hi, out),
            Encoding::Delta => delta::filter_range_masks(&self.data, lo, hi, out),
            Encoding::ForPack => forpack::filter_range_masks(&self.data, lo, hi, out),
            Encoding::Dict => dict::filter_range_masks(&self.data, lo, hi, out),
        }
        debug_assert_eq!(out.len(), self.len.div_ceil(64));
    }

    /// Value at row `i` without decoding the block — the point-access
    /// fast path behind `Table::value` on frozen rows. Dictionary and
    /// frame-of-reference blocks are random-access (one fixed-width
    /// unpack); RLE walks run headers and delta prefix-sums up to `i`;
    /// none of them allocate. Panics if `i >= len`.
    pub fn value_at(&self, i: usize) -> Value {
        assert!(
            i < self.len,
            "row {i} out of range for block of {} rows",
            self.len
        );
        match self.encoding {
            Encoding::Plain => {
                let bytes = &self.data[i * 8..i * 8 + 8];
                i64::from_le_bytes(bytes.try_into().expect("chunk of 8"))
            }
            Encoding::Rle => rle::value_at(&self.data, i),
            Encoding::Delta => delta::value_at(&self.data, i),
            Encoding::ForPack => forpack::value_at(&self.data, i),
            Encoding::Dict => dict::value_at(&self.data, i),
        }
    }

    /// Visit `(row, value)` for every block-local row whose bit is set in
    /// `active` (block-local selection words, LSB-first), in ascending
    /// row order, *without decoding the block*. Each codec walks in its
    /// own domain: RLE decodes a run's value once and fans it over the
    /// run's active bits, dict parses the dictionary once and unpacks
    /// only active codes, FOR rebases offsets with a word-hoisted walk
    /// (an all-forgotten 64-row word costs one load), delta reconstructs
    /// inside the prefix-sum walk. This is the streaming primitive the
    /// tiered hash-join build side feeds its hash table from.
    pub fn for_each_active(&self, active: &[u64], mut f: impl FnMut(usize, Value)) {
        match self.encoding {
            Encoding::Plain => {
                // Word-hoisted like the other fixed-width codecs: an
                // all-forgotten 64-row word costs one load.
                dict::for_each_active_fixed(self.len, active, |i| {
                    let bytes = &self.data[i * 8..i * 8 + 8];
                    f(i, i64::from_le_bytes(bytes.try_into().expect("chunk of 8")));
                });
            }
            Encoding::Rle => rle::for_each_active(&self.data, active, f),
            Encoding::Delta => delta::for_each_active(&self.data, active, f),
            Encoding::ForPack => forpack::for_each_active(&self.data, active, f),
            Encoding::Dict => dict::for_each_active(&self.data, active, f),
        }
    }

    /// Fused masked aggregate: fold COUNT/SUM/MIN/MAX of the rows whose
    /// bit is set in `active` (block-local selection words, LSB-first)
    /// and whose value passes the optional `[lo, hi)` filter, into `agg`
    /// — *without decoding the block*. Each codec folds in its own
    /// domain: RLE per run (one compare + one popcount-range), dict via a
    /// per-code histogram, FOR in rebased offset space, delta inside the
    /// prefix-sum walk. This is what lets frozen blocks answer aggregate
    /// queries at hot-path speed.
    pub fn fold_range_masked(
        &self,
        filter: Option<(Value, Value)>,
        active: &[u64],
        agg: &mut BlockAgg,
    ) {
        match self.encoding {
            Encoding::Plain => plain_fold_range_masked(&self.data, filter, active, agg),
            Encoding::Rle => rle::fold_range_masked(&self.data, filter, active, agg),
            Encoding::Delta => delta::fold_range_masked(&self.data, filter, active, agg),
            Encoding::ForPack => forpack::fold_range_masked(&self.data, filter, active, agg),
            Encoding::Dict => dict::fold_range_masked(&self.data, filter, active, agg),
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if zero values are encoded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The encoding in use.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Size of the compressed payload in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Plain size / compressed size (≥ 1 means the codec helped).
    pub fn compression_ratio(&self) -> f64 {
        if self.data.is_empty() {
            return 1.0;
        }
        (self.len * std::mem::size_of::<Value>()) as f64 / self.data.len() as f64
    }

    /// The raw compressed payload (snapshot writer).
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Reassemble a block from its on-disk parts (snapshot reader). The
    /// caller vouches that `data` was produced by `encoding` over `len`
    /// values; `decode` on a corrupted payload may produce garbage, which
    /// is why snapshots carry a checksum.
    pub fn from_parts(encoding: Encoding, len: usize, data: Bytes) -> Self {
        Self {
            encoding,
            data,
            len,
        }
    }
}

fn plain_encode(values: &[Value]) -> Bytes {
    use bytes::{BufMut, BytesMut};
    let mut buf = BytesMut::with_capacity(values.len() * 8);
    for &v in values {
        buf.put_i64_le(v);
    }
    buf.freeze()
}

fn plain_decode(data: &[u8]) -> Vec<Value> {
    data.chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Fused masked aggregate over raw little-endian values (trivial codec).
fn plain_fold_range_masked(
    data: &[u8],
    filter: Option<(Value, Value)>,
    active: &[u64],
    agg: &mut BlockAgg,
) {
    let (lo, width, filtered) = match filter {
        Some((lo, hi)) => (lo, (hi as i128 - lo as i128).max(0) as u64, true),
        None => (0, 0, false),
    };
    for (i, c) in data.chunks_exact(8).enumerate() {
        if bit_set(active, i) {
            let v = i64::from_le_bytes(c.try_into().expect("chunk of 8"));
            if !filtered || (v as u64).wrapping_sub(lo as u64) < width {
                agg.push(v);
            }
        }
    }
}

/// Fused filter over raw little-endian values (the trivial codec case).
fn plain_filter_range_masks(data: &[u8], lo: Value, hi: Value, out: &mut Vec<u64>) {
    let width = (hi as i128 - lo as i128).max(0) as u64;
    let mut word = 0u64;
    let mut filled = 0u32;
    for c in data.chunks_exact(8) {
        let v = i64::from_le_bytes(c.try_into().expect("chunk of 8"));
        word |= (((v as u64).wrapping_sub(lo as u64) < width) as u64) << filled;
        filled += 1;
        if filled == 64 {
            out.push(word);
            word = 0;
            filled = 0;
        }
    }
    if filled > 0 {
        out.push(word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[Value]) {
        for enc in Encoding::ALL {
            let block = EncodedBlock::encode(values, enc);
            assert_eq!(block.len(), values.len());
            assert_eq!(block.decode(), values, "round-trip failed for {:?}", enc);
        }
        let auto = EncodedBlock::encode_auto(values);
        assert_eq!(auto.decode(), values);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_basic_patterns() {
        roundtrip(&[0]);
        roundtrip(&[1, 1, 1, 1, 1]);
        roundtrip(&[1, 2, 3, 4, 5, 6, 7]);
        roundtrip(&[-5, 5, -5, 5]);
        roundtrip(&[i64::MIN, i64::MAX, 0, -1, 1]);
        roundtrip(&[1000, 1001, 1003, 1002, 1000]);
    }

    #[test]
    fn rle_wins_on_constant_runs() {
        let values = vec![42i64; 10_000];
        let auto = EncodedBlock::encode_auto(&values);
        assert_eq!(auto.encoding(), Encoding::Rle);
        assert!(auto.compression_ratio() > 100.0);
    }

    #[test]
    fn delta_or_forpack_wins_on_serial() {
        let values: Vec<i64> = (0..10_000).collect();
        let auto = EncodedBlock::encode_auto(&values);
        assert!(
            matches!(auto.encoding(), Encoding::Delta | Encoding::ForPack),
            "got {:?}",
            auto.encoding()
        );
        assert!(auto.compression_ratio() > 3.0);
    }

    #[test]
    fn dict_wins_on_low_cardinality_shuffled() {
        // 4 distinct large, far-apart values in random-ish order: deltas
        // are large, runs are short, FOR band is wide => dictionary wins.
        let vals = [1i64 << 40, -(1i64 << 50), 7, 1 << 61];
        let values: Vec<i64> = (0..8192).map(|i| vals[(i * 7 + i / 13) % 4]).collect();
        let auto = EncodedBlock::encode_auto(&values);
        assert_eq!(auto.encoding(), Encoding::Dict);
        assert!(auto.compression_ratio() > 10.0);
    }

    #[test]
    fn ratio_of_plain_is_one() {
        let values: Vec<i64> = (0..100).map(|i| i * 12345).collect();
        let plain = EncodedBlock::encode(&values, Encoding::Plain);
        assert!((plain.compression_ratio() - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn all_codecs_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..500)) {
            for enc in Encoding::ALL {
                let block = EncodedBlock::encode(&values, enc);
                prop_assert_eq!(block.decode(), values.clone());
            }
        }

        #[test]
        fn auto_never_loses(values in proptest::collection::vec(-1000i64..1000, 0..500)) {
            let auto = EncodedBlock::encode_auto(&values);
            prop_assert_eq!(auto.decode(), values.clone());
            // Auto must never be bigger than plain.
            let plain = EncodedBlock::encode(&values, Encoding::Plain);
            prop_assert!(auto.compressed_bytes() <= plain.compressed_bytes());
        }

        #[test]
        fn value_at_equals_decode_index(
            values in proptest::collection::vec(any::<i64>(), 1..300),
        ) {
            for enc in Encoding::ALL {
                let block = EncodedBlock::encode(&values, enc);
                let decoded = block.decode();
                for (i, &v) in decoded.iter().enumerate() {
                    prop_assert_eq!(block.value_at(i), v, "{:?} row {}", enc, i);
                }
            }
        }

        #[test]
        fn fold_masked_equals_decode_then_fold(
            values in proptest::collection::vec(-1000i64..1000, 0..300),
            lo in -1200i64..1200,
            width in 0i64..2500,
            active_seed in any::<u64>(),
        ) {
            let hi = lo.saturating_add(width);
            let nwords = values.len().div_ceil(64);
            // Deterministic pseudo-random activity words from the seed.
            let active: Vec<u64> = (0..nwords)
                .map(|i| active_seed.rotate_left(i as u32 * 7).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let set = |i: usize| active[i / 64] >> (i % 64) & 1 == 1;
            for filter in [None, Some((lo, hi))] {
                let mut want = BlockAgg::new();
                for (i, &v) in values.iter().enumerate() {
                    if set(i) && filter.is_none_or(|(lo, hi)| v >= lo && v < hi) {
                        want.push(v);
                    }
                }
                for enc in Encoding::ALL {
                    let block = EncodedBlock::encode(&values, enc);
                    let mut got = BlockAgg::new();
                    block.fold_range_masked(filter, &active, &mut got);
                    prop_assert_eq!(got, want, "{:?} filter {:?}", enc, filter);
                }
            }
        }

        #[test]
        fn for_each_active_equals_decode_then_filter(
            values in proptest::collection::vec(any::<i64>(), 0..300),
            active_seed in any::<u64>(),
        ) {
            let nwords = values.len().div_ceil(64);
            let active: Vec<u64> = (0..nwords)
                .map(|i| active_seed.rotate_left(i as u32 * 11).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let set = |i: usize| active[i / 64] >> (i % 64) & 1 == 1;
            let want: Vec<(usize, i64)> = values
                .iter()
                .enumerate()
                .filter(|&(i, _)| set(i))
                .map(|(i, &v)| (i, v))
                .collect();
            for enc in Encoding::ALL {
                let block = EncodedBlock::encode(&values, enc);
                let before = block_decodes();
                let mut got = Vec::new();
                block.for_each_active(&active, |row, v| got.push((row, v)));
                prop_assert_eq!(&got, &want, "{:?}", enc);
                prop_assert_eq!(block_decodes(), before, "{:?} must not decode", enc);
            }
        }

        #[test]
        fn fused_filter_equals_decode_then_test(
            values in proptest::collection::vec(-1000i64..1000, 0..300),
            lo in -1200i64..1200,
            width in 0i64..2500,
        ) {
            let hi = lo.saturating_add(width);
            let mut masks = Vec::new();
            for enc in Encoding::ALL {
                let block = EncodedBlock::encode(&values, enc);
                block.filter_range_masks(lo, hi, &mut masks);
                prop_assert_eq!(masks.len(), values.len().div_ceil(64));
                for (i, &v) in values.iter().enumerate() {
                    let bit = masks[i / 64] >> (i % 64) & 1;
                    prop_assert_eq!(bit == 1, v >= lo && v < hi, "{:?} row {}", enc, i);
                }
                // Tail bits beyond len stay clear (AND-safety with
                // activity words).
                if let Some(&last) = masks.last() {
                    let used = values.len() - (masks.len() - 1) * 64;
                    if used < 64 {
                        prop_assert_eq!(last >> used, 0, "{:?} tail", enc);
                    }
                }
            }
        }
    }
}
