//! Delta encoding: first value, then zigzag-varint differences.

use bytes::{Bytes, BytesMut};

use super::filter::{bit_set, in_range, range_width, BlockAgg, MaskWriter};
use super::varint::{read_signed, write_signed};
use crate::types::Value;

/// Encode as `v0, v1−v0, v2−v1, …` with zigzag varints.
pub fn encode(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::new();
    let mut prev = 0i64;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            write_signed(&mut buf, v);
        } else {
            write_signed(&mut buf, v.wrapping_sub(prev));
        }
        prev = v;
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`].
pub fn decode(data: &[u8]) -> Vec<Value> {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut prev = 0i64;
    let mut first = true;
    while pos < data.len() {
        let d = read_signed(data, &mut pos);
        let v = if first {
            first = false;
            d
        } else {
            prev.wrapping_add(d)
        };
        out.push(v);
        prev = v;
    }
    out
}

/// Fused decode+filter: append selection-mask words for `lo <= v < hi`.
///
/// Deltas force a sequential prefix-sum reconstruction, but the predicate
/// is rebased to nothing — each reconstructed value feeds the same
/// single unsigned compare as the batch kernels, and no `Vec<Value>` is
/// ever materialized.
pub fn filter_range_masks(data: &[u8], lo: Value, hi: Value, out: &mut Vec<u64>) {
    let width = range_width(lo, hi);
    let mut w = MaskWriter::new(out);
    let mut pos = 0;
    let mut prev = 0i64;
    let mut first = true;
    while pos < data.len() {
        let d = read_signed(data, &mut pos);
        let v = if first {
            first = false;
            d
        } else {
            prev.wrapping_add(d)
        };
        w.push_bit(in_range(v, lo, width));
        prev = v;
    }
    w.finish();
}

/// Value at row `i`: prefix-sum walk up to `i` (deltas force sequential
/// reconstruction, but nothing past row `i` is touched and no `Vec` is
/// allocated).
pub fn value_at(data: &[u8], i: usize) -> Value {
    let mut pos = 0;
    let mut prev = 0i64;
    let mut first = true;
    let mut row = 0usize;
    while pos < data.len() {
        let d = read_signed(data, &mut pos);
        let v = if first {
            first = false;
            d
        } else {
            prev.wrapping_add(d)
        };
        if row == i {
            return v;
        }
        prev = v;
        row += 1;
    }
    panic!("row {i} out of range for delta block of {row} rows");
}

/// Visit `(row, value)` for every row whose bit is set in `active`
/// (block-local selection words), in row order. Deltas force the full
/// prefix-sum walk, but inactive rows are reconstructed and skipped
/// without a callback, and nothing is materialized — the tiered join
/// kernels' per-row path for delta blocks.
pub fn for_each_active(data: &[u8], active: &[u64], mut f: impl FnMut(usize, Value)) {
    let mut pos = 0;
    let mut prev = 0i64;
    let mut first = true;
    let mut row = 0usize;
    while pos < data.len() {
        let d = read_signed(data, &mut pos);
        let v = if first {
            first = false;
            d
        } else {
            prev.wrapping_add(d)
        };
        if bit_set(active, row) {
            f(row, v);
        }
        prev = v;
        row += 1;
    }
}

/// Fused masked aggregate: the prefix-sum walk feeds each reconstructed
/// value straight into the accumulator when its `active` bit is set and
/// the optional `[lo, hi)` filter passes — no materialization.
pub fn fold_range_masked(
    data: &[u8],
    filter: Option<(Value, Value)>,
    active: &[u64],
    agg: &mut BlockAgg,
) {
    let (lo, width, filtered) = match filter {
        Some((lo, hi)) => (lo, range_width(lo, hi), true),
        None => (0, 0, false),
    };
    let mut pos = 0;
    let mut prev = 0i64;
    let mut first = true;
    let mut row = 0usize;
    while pos < data.len() {
        let d = read_signed(data, &mut pos);
        let v = if first {
            first = false;
            d
        } else {
            prev.wrapping_add(d)
        };
        if bit_set(active, row) && (!filtered || in_range(v, lo, width)) {
            agg.push(v);
        }
        prev = v;
        row += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_sequences_compress_well() {
        let values: Vec<i64> = (1_000_000..1_010_000).collect();
        let data = encode(&values);
        // one varint for the base + 1 byte per unit delta
        assert!(data.len() < values.len() * 2, "got {} bytes", data.len());
        assert_eq!(decode(&data), values);
    }

    #[test]
    fn unsorted_roundtrip() {
        let values = vec![5i64, -100, 42, 0, 7];
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn wrapping_deltas_roundtrip() {
        let values = vec![i64::MIN, i64::MAX, i64::MIN + 1, -1, 1];
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(decode(&encode(&[])).is_empty());
        assert_eq!(decode(&encode(&[99])), vec![99]);
    }

    #[test]
    fn fused_filter_matches_decode_then_test() {
        let values: Vec<i64> = (0..200).map(|i| i * 3 - 100).collect();
        let data = encode(&values);
        let mut masks = Vec::new();
        filter_range_masks(&data, -20, 70, &mut masks);
        assert_eq!(masks.len(), values.len().div_ceil(64));
        for (i, &v) in values.iter().enumerate() {
            let bit = masks[i / 64] >> (i % 64) & 1;
            assert_eq!(bit == 1, (-20..70).contains(&v), "row {i}");
        }
    }

    #[test]
    fn value_at_prefix_walk() {
        let values = vec![i64::MIN, i64::MAX, -7, 0, 42, 41];
        let data = encode(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(value_at(&data, i), v, "row {i}");
        }
    }

    #[test]
    fn fold_range_masked_matches_reference() {
        let values: Vec<i64> = (0..150).map(|i| i * 5 - 300).collect();
        let data = encode(&values);
        let mut active = vec![0u64; values.len().div_ceil(64)];
        for i in (0..values.len()).filter(|i| i % 4 != 1) {
            active[i / 64] |= 1 << (i % 64);
        }
        for filter in [None, Some((-100i64, 200i64)), Some((10_000, 20_000))] {
            let mut got = BlockAgg::new();
            fold_range_masked(&data, filter, &active, &mut got);
            let mut want = BlockAgg::new();
            for (i, &v) in values.iter().enumerate() {
                if i % 4 != 1 && filter.is_none_or(|(lo, hi)| (lo..hi).contains(&v)) {
                    want.push(v);
                }
            }
            assert_eq!(got, want, "filter {filter:?}");
        }
    }
}
