//! LEB128 varints with zigzag signed mapping — the wire primitives shared
//! by the RLE, delta and dictionary codecs.

use bytes::{BufMut, BytesMut};

/// Map a signed value to an unsigned one with small magnitudes staying
/// small: 0→0, −1→1, 1→2, −2→3 …
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` as an LEB128 varint.
pub fn write_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an LEB128 varint starting at `*pos`, advancing it.
///
/// Panics on truncated input (codecs own their buffers, so corruption is a
/// programming error, not an I/O condition).
pub fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = data[*pos];
        *pos += 1;
        result |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return result;
        }
        shift += 7;
        assert!(shift < 64 + 7, "varint too long");
    }
}

/// Append a zigzag-encoded signed varint.
pub fn write_signed(buf: &mut BytesMut, v: i64) {
    write_varint(buf, zigzag_encode(v));
}

/// Read a zigzag-encoded signed varint.
pub fn read_signed(data: &[u8], pos: &mut usize) -> i64 {
    zigzag_decode(read_varint(data, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_pairs() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in [-1000i64, -1, 0, 1, 1000, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let data = buf.freeze();
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&data, &mut pos), v);
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn signed_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        for &v in &values {
            write_signed(&mut buf, v);
        }
        let data = buf.freeze();
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_signed(&data, &mut pos), v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = BytesMut::new();
        write_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        write_varint(&mut buf, 128);
        assert_eq!(buf.len(), 3);
    }
}
