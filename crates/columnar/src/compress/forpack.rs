//! Frame-of-reference + bit-packing.
//!
//! Stores the block minimum once, then every value as `(v − min)` packed
//! at the minimal common bit width. The codec of choice for values
//! confined to a narrow band (normal data, recent epochs).

use bytes::{BufMut, Bytes, BytesMut};

use super::filter::{unpack_fixed, BlockAgg, MaskWriter};
use super::varint::{read_signed, read_varint, write_signed, write_varint};
use crate::types::Value;

/// Bits needed to represent `x`.
fn bits_for(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// Encode with frame-of-reference bit-packing.
///
/// Layout: `count varint | min zigzag-varint | width u8 | packed words`.
pub fn encode(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::new();
    write_varint(&mut buf, values.len() as u64);
    if values.is_empty() {
        return buf.freeze();
    }
    let min = *values.iter().min().expect("non-empty");
    let max = *values.iter().max().expect("non-empty");
    // The offset fits u64 even for full i64 span.
    let span = (max as i128 - min as i128) as u64;
    let width = bits_for(span).max(1);
    write_signed(&mut buf, min);
    buf.put_u8(width as u8);

    let mut word = 0u64;
    let mut filled = 0u32;
    for &v in values {
        let off = (v as i128 - min as i128) as u64;
        // Write `width` bits of `off`, LSB first across words.
        let mut remaining = width;
        let mut chunk = off;
        while remaining > 0 {
            let take = remaining.min(64 - filled);
            word |= (chunk & ones(take)) << filled;
            filled += take;
            chunk >>= take - 1;
            chunk >>= 1; // two-step shift: `take` may be 64
            remaining -= take;
            if filled == 64 {
                buf.put_u64_le(word);
                word = 0;
                filled = 0;
            }
        }
    }
    if filled > 0 {
        buf.put_u64_le(word);
    }
    buf.freeze()
}

#[inline]
fn ones(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Decode a buffer produced by [`encode`].
pub fn decode(data: &[u8]) -> Vec<Value> {
    let mut pos = 0;
    let count = read_varint(data, &mut pos) as usize;
    if count == 0 {
        return Vec::new();
    }
    let min = read_signed(data, &mut pos);
    let width = data[pos] as u32;
    pos += 1;

    let words: Vec<u64> = data[pos..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();

    let mut out = Vec::with_capacity(count);
    let mut bit_pos = 0usize;
    for _ in 0..count {
        let mut off = 0u64;
        let mut got = 0u32;
        while got < width {
            let word_idx = bit_pos / 64;
            let in_word = (bit_pos % 64) as u32;
            let take = (width - got).min(64 - in_word);
            let bits = (words[word_idx] >> in_word) & ones(take);
            off |= bits << got;
            got += take;
            bit_pos += take as usize;
        }
        out.push((min as i128 + off as i128) as i64);
    }
    out
}

/// Fused decode+filter: append selection-mask words for `lo <= v < hi`.
///
/// The predicate is rebased once into offset space — `v` matches iff its
/// packed offset falls in `[lo − min, hi − min)` — so the loop compares
/// raw unpacked offsets and never adds `min` back. When the rebased
/// interval covers the whole representable band the compare degenerates
/// to constant true/false per word.
pub fn filter_range_masks(data: &[u8], lo: Value, hi: Value, out: &mut Vec<u64>) {
    let mut pos = 0;
    let count = read_varint(data, &mut pos) as usize;
    if count == 0 {
        return;
    }
    let min = read_signed(data, &mut pos);
    let width = data[pos] as u32;
    pos += 1;
    // Offset-space bounds, clamped to the non-negative u64 domain the
    // packed offsets live in (u128 math: `hi − min` may exceed u64::MAX).
    let off_lo = (lo as i128 - min as i128).clamp(0, 1 << 64) as u128;
    let off_hi = (hi as i128 - min as i128).clamp(0, 1 << 64) as u128;
    let span = off_hi.saturating_sub(off_lo);
    let words: Vec<u64> = data[pos..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    let mut w = MaskWriter::new(out);
    let mut bit_pos = 0usize;
    for _ in 0..count {
        let mut off = 0u64;
        let mut got = 0u32;
        while got < width {
            let word_idx = bit_pos / 64;
            let in_word = (bit_pos % 64) as u32;
            let take = (width - got).min(64 - in_word);
            let bits = (words[word_idx] >> in_word) & ones(take);
            off |= bits << got;
            got += take;
            bit_pos += take as usize;
        }
        w.push_bit((off as u128).wrapping_sub(off_lo) < span);
    }
    w.finish();
}

/// Parse the header, returning `(count, min, width, packed region)`.
/// The region is *borrowed* — point reads and folds unpack straight
/// from it ([`unpack_fixed`]), no `Vec<u64>` is materialized.
fn parse_header(data: &[u8]) -> (usize, Value, u32, &[u8]) {
    let mut pos = 0;
    let count = read_varint(data, &mut pos) as usize;
    if count == 0 {
        return (0, 0, 0, &[]);
    }
    let min = read_signed(data, &mut pos);
    let width = data[pos] as u32;
    pos += 1;
    (count, min, width, &data[pos..])
}

/// Value at row `i`: one direct fixed-width unpack — frame-of-reference
/// is a random-access format, so point reads cost O(1) with no
/// allocation.
pub fn value_at(data: &[u8], i: usize) -> Value {
    let (count, min, width, region) = parse_header(data);
    assert!(
        i < count,
        "row {i} out of range for forpack block of {count} rows"
    );
    (min as i128 + unpack_fixed(region, width, i) as i128) as i64
}

/// Visit `(row, value)` for every row whose bit is set in `active`
/// (block-local selection words), in row order: one header parse, then a
/// word-hoisted walk unpacking only the *active* rows in offset space —
/// an all-forgotten 64-row word costs one load, and no `Vec<Value>` is
/// ever materialized. This is the tiered join kernels' per-row path for
/// frame-of-reference blocks.
pub fn for_each_active(data: &[u8], active: &[u64], mut f: impl FnMut(usize, Value)) {
    let (count, min, width, region) = parse_header(data);
    super::dict::for_each_active_fixed(count, active, |row| {
        f(
            row,
            (min as i128 + unpack_fixed(region, width, row) as i128) as i64,
        );
    });
}

/// Fused masked aggregate in *offset space*: the filter is rebased to
/// `[lo − min, hi − min)` once, and the frame base is added back exactly
/// once at the end — values are never reconstructed per row. Fixed-width
/// packing is random-access, so the fold hoists each 64-row activity
/// word and unpacks only the *active* rows (an all-forgotten word costs
/// one load); offsets accumulate in a `u64` that spills to `u128` on the
/// practically-never-taken overflow branch.
pub fn fold_range_masked(
    data: &[u8],
    filter: Option<(Value, Value)>,
    active: &[u64],
    agg: &mut BlockAgg,
) {
    let (count, min, width, region) = parse_header(data);
    if count == 0 {
        return;
    }
    let (off_lo, span, filtered) = match filter {
        Some((lo, hi)) => {
            let off_lo = (lo as i128 - min as i128).clamp(0, 1 << 64) as u128;
            let off_hi = (hi as i128 - min as i128).clamp(0, 1 << 64) as u128;
            (off_lo, off_hi.saturating_sub(off_lo), true)
        }
        None => (0, 0, false),
    };
    let mut n = 0u64;
    let mut off_sum = 0u64;
    let mut off_spill = 0u128;
    let mut off_min = u64::MAX;
    let mut off_max = 0u64;
    for (g, &aw) in active.iter().enumerate().take(count.div_ceil(64)) {
        let base_row = g * 64;
        let rows = (count - base_row).min(64);
        let w = if rows == 64 {
            aw
        } else {
            aw & ((1u64 << rows) - 1)
        };
        // Only the active rows are unpacked (fixed-width packing makes
        // point unpacks one branchless two-word read), so an
        // all-forgotten word costs one load and heavy forgetting keeps
        // making the fold cheaper.
        let mut w = w;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            let off = unpack_fixed(region, width, base_row + bit);
            if !filtered || (off as u128).wrapping_sub(off_lo) < span {
                n += 1;
                match off_sum.checked_add(off) {
                    Some(s) => off_sum = s,
                    None => {
                        off_spill += off_sum as u128;
                        off_sum = off;
                    }
                }
                off_min = off_min.min(off);
                off_max = off_max.max(off);
            }
        }
    }
    if n > 0 {
        let base = min as i128;
        agg.count += n;
        agg.sum += base * n as i128 + (off_spill + off_sum as u128) as i128;
        agg.min = agg.min.min((base + off_min as i128) as i64);
        agg.max = agg.max.max((base + off_max as i128) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_band_compresses() {
        let values: Vec<i64> = (0..8192).map(|i| 1_000_000 + (i % 16)).collect();
        let data = encode(&values);
        // 4-bit width: 8192 * 4 bits = 4 KiB + header, vs 64 KiB plain.
        assert!(data.len() < 5000, "got {} bytes", data.len());
        assert_eq!(decode(&data), values);
    }

    #[test]
    fn full_span_roundtrip() {
        let values = vec![i64::MIN, i64::MAX, 0, -1, 1, 42];
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn constant_block_uses_width_one() {
        let values = vec![123i64; 100];
        let data = encode(&values);
        assert!(data.len() < 32, "got {} bytes", data.len());
        assert_eq!(decode(&data), values);
    }

    #[test]
    fn empty_and_single() {
        assert!(decode(&encode(&[])).is_empty());
        assert_eq!(decode(&encode(&[-7])), vec![-7]);
    }

    #[test]
    fn negative_band() {
        let values: Vec<i64> = (-500..-400).collect();
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn fused_filter_matches_decode_then_test() {
        let values: Vec<i64> = (0..300).map(|i| 1_000_000 + (i * 13) % 97).collect();
        let data = encode(&values);
        for (lo, hi) in [
            (1_000_010, 1_000_050),
            (i64::MIN, i64::MAX),   // band wider than the block
            (0, 10),                // entirely below
            (2_000_000, 3_000_000), // entirely above
        ] {
            let mut masks = Vec::new();
            filter_range_masks(&data, lo, hi, &mut masks);
            assert_eq!(masks.len(), values.len().div_ceil(64));
            for (i, &v) in values.iter().enumerate() {
                let bit = masks[i / 64] >> (i % 64) & 1;
                assert_eq!(bit == 1, (lo..hi).contains(&v), "row {i} [{lo},{hi})");
            }
        }
    }

    #[test]
    fn fused_filter_full_span_block() {
        let values = vec![i64::MIN, -1, 0, 1, i64::MAX];
        let data = encode(&values);
        let mut masks = Vec::new();
        filter_range_masks(&data, -1, 2, &mut masks);
        assert_eq!(masks, vec![0b01110]);
    }

    #[test]
    fn value_at_direct_unpack() {
        let values: Vec<i64> = (0..130).map(|i| -1000 + (i * 37) % 255).collect();
        let data = encode(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(value_at(&data, i), v, "row {i}");
        }
        let extremes = vec![i64::MIN, 0, i64::MAX];
        let data = encode(&extremes);
        for (i, &v) in extremes.iter().enumerate() {
            assert_eq!(value_at(&data, i), v, "extreme row {i}");
        }
    }

    #[test]
    fn fold_range_masked_matches_reference() {
        let values: Vec<i64> = (0..180).map(|i| 1_000_000 + (i * 13) % 97).collect();
        let data = encode(&values);
        let mut active = vec![0u64; values.len().div_ceil(64)];
        for i in (0..values.len()).filter(|i| i % 5 != 2) {
            active[i / 64] |= 1 << (i % 64);
        }
        for filter in [
            None,
            Some((1_000_010i64, 1_000_050i64)),
            Some((i64::MIN, i64::MAX)),
            Some((0, 10)),
        ] {
            let mut got = BlockAgg::new();
            fold_range_masked(&data, filter, &active, &mut got);
            let mut want = BlockAgg::new();
            for (i, &v) in values.iter().enumerate() {
                if i % 5 != 2 && filter.is_none_or(|(lo, hi)| (lo..hi).contains(&v)) {
                    want.push(v);
                }
            }
            assert_eq!(got, want, "filter {filter:?}");
        }
    }
}
