//! Run-length encoding: (value, run-length) pairs, both varint-coded.

use bytes::{Bytes, BytesMut};

use amnesia_util::bitmap::{count_set_bits_in, for_each_set_bit_in};

use super::filter::{in_range, range_width, BlockAgg, MaskWriter};
use super::varint::{read_signed, read_varint, write_signed, write_varint};
use crate::types::Value;

/// Encode as a sequence of `(zigzag value, run length)` varint pairs.
pub fn encode(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::new();
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1u64;
        while i + (run as usize) < values.len() && values[i + run as usize] == v {
            run += 1;
        }
        write_signed(&mut buf, v);
        write_varint(&mut buf, run);
        i += run as usize;
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`].
pub fn decode(data: &[u8]) -> Vec<Value> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let v = read_signed(data, &mut pos);
        let run = read_varint(data, &mut pos);
        out.extend(std::iter::repeat_n(v, run as usize));
    }
    out
}

/// Fused decode+filter: append selection-mask words for `lo <= v < hi`
/// without materializing values. The run structure is the whole win here:
/// one compare per *run*, fanned out into mask words — a constant block
/// costs a handful of instructions regardless of its length.
pub fn filter_range_masks(data: &[u8], lo: Value, hi: Value, out: &mut Vec<u64>) {
    let width = range_width(lo, hi);
    let mut w = MaskWriter::new(out);
    let mut pos = 0;
    while pos < data.len() {
        let v = read_signed(data, &mut pos);
        let run = read_varint(data, &mut pos);
        w.push_run(in_range(v, lo, width), run as usize);
    }
    w.finish();
}

/// Value at row `i` without decoding the block: walk the run headers
/// (varints forbid random access) until the cumulative length covers `i`.
/// O(runs before `i`) — for the long runs RLE wins on, that is far fewer
/// steps than rows, and no `Vec` is ever allocated.
pub fn value_at(data: &[u8], i: usize) -> Value {
    let mut pos = 0;
    let mut covered = 0usize;
    while pos < data.len() {
        let v = read_signed(data, &mut pos);
        let run = read_varint(data, &mut pos) as usize;
        covered += run;
        if i < covered {
            return v;
        }
    }
    panic!("row {i} out of range for rle block of {covered} rows");
}

/// Visit every run as `(value, first_row, run_len)` in row order — the
/// structural primitive behind the tiered join kernels: a hash probe or
/// build touches the hash table once per *run*, then fans the verdict out
/// over the run's active rows.
pub fn for_each_run(data: &[u8], mut f: impl FnMut(Value, usize, usize)) {
    let mut pos = 0;
    let mut row = 0usize;
    while pos < data.len() {
        let v = read_signed(data, &mut pos);
        let run = read_varint(data, &mut pos) as usize;
        f(v, row, run);
        row += run;
    }
}

/// Visit `(row, value)` for every row whose bit is set in `active`
/// (block-local selection words), in row order. The run value is decoded
/// once per run; an all-forgotten run costs two varint reads.
pub fn for_each_active(data: &[u8], active: &[u64], mut f: impl FnMut(usize, Value)) {
    for_each_run(data, |v, start, len| {
        for_each_set_bit_in(active, start, start + len, |row| f(row, v));
    });
}

/// Fused masked aggregate: fold COUNT/SUM/MIN/MAX of the rows whose bit is
/// set in `active` (block-local selection words) and whose value passes
/// the optional `[lo, hi)` filter — one compare plus one popcount-range
/// per *run*, never materializing values.
pub fn fold_range_masked(
    data: &[u8],
    filter: Option<(Value, Value)>,
    active: &[u64],
    agg: &mut BlockAgg,
) {
    let mut pos = 0;
    let mut row = 0usize;
    while pos < data.len() {
        let v = read_signed(data, &mut pos);
        let run = read_varint(data, &mut pos) as usize;
        let matches = match filter {
            Some((lo, hi)) => in_range(v, lo, range_width(lo, hi)),
            None => true,
        };
        if matches {
            agg.push_repeated(v, count_set_bits_in(active, row, row + run) as u64);
        }
        row += run;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_compress() {
        let values = vec![7i64; 1000];
        let data = encode(&values);
        assert!(data.len() < 8, "1000 identical values fit in a few bytes");
        assert_eq!(decode(&data), values);
    }

    #[test]
    fn alternating_values_roundtrip() {
        let values: Vec<i64> = (0..100).map(|i| i % 2).collect();
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn empty_input() {
        assert!(encode(&[]).is_empty());
        assert!(decode(&[]).is_empty());
    }

    #[test]
    fn extreme_values() {
        let values = vec![i64::MIN, i64::MIN, i64::MAX];
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn fused_filter_matches_decode_then_test() {
        let values: Vec<i64> = (0..300)
            .flat_map(|i| std::iter::repeat_n(i % 7, (i as usize % 5) + 1))
            .collect();
        let data = encode(&values);
        let mut masks = Vec::new();
        filter_range_masks(&data, 2, 5, &mut masks);
        assert_eq!(masks.len(), values.len().div_ceil(64));
        for (i, &v) in values.iter().enumerate() {
            let bit = masks[i / 64] >> (i % 64) & 1;
            assert_eq!(bit == 1, (2..5).contains(&v), "row {i}");
        }
    }

    #[test]
    fn value_at_walks_runs() {
        let values: Vec<i64> = (0..50)
            .flat_map(|i| std::iter::repeat_n(i * 3, (i as usize % 4) + 1))
            .collect();
        let data = encode(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(value_at(&data, i), v, "row {i}");
        }
    }

    #[test]
    fn fold_range_masked_matches_reference() {
        let values: Vec<i64> = (0..200)
            .flat_map(|i| std::iter::repeat_n(i % 9 - 4, (i as usize % 3) + 1))
            .collect();
        let data = encode(&values);
        // Every third row active.
        let mut active = vec![0u64; values.len().div_ceil(64)];
        for i in (0..values.len()).step_by(3) {
            active[i / 64] |= 1 << (i % 64);
        }
        for filter in [None, Some((-2i64, 3i64)), Some((100, 200))] {
            let mut got = BlockAgg::new();
            fold_range_masked(&data, filter, &active, &mut got);
            let mut want = BlockAgg::new();
            for (i, &v) in values.iter().enumerate() {
                let ok = i % 3 == 0 && filter.is_none_or(|(lo, hi)| (lo..hi).contains(&v));
                if ok {
                    want.push(v);
                }
            }
            assert_eq!(got, want, "filter {filter:?}");
        }
    }
}
