//! Run-length encoding: (value, run-length) pairs, both varint-coded.

use bytes::{Bytes, BytesMut};

use super::filter::{in_range, range_width, MaskWriter};
use super::varint::{read_signed, read_varint, write_signed, write_varint};
use crate::types::Value;

/// Encode as a sequence of `(zigzag value, run length)` varint pairs.
pub fn encode(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::new();
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1u64;
        while i + (run as usize) < values.len() && values[i + run as usize] == v {
            run += 1;
        }
        write_signed(&mut buf, v);
        write_varint(&mut buf, run);
        i += run as usize;
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`].
pub fn decode(data: &[u8]) -> Vec<Value> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let v = read_signed(data, &mut pos);
        let run = read_varint(data, &mut pos);
        out.extend(std::iter::repeat_n(v, run as usize));
    }
    out
}

/// Fused decode+filter: append selection-mask words for `lo <= v < hi`
/// without materializing values. The run structure is the whole win here:
/// one compare per *run*, fanned out into mask words — a constant block
/// costs a handful of instructions regardless of its length.
pub fn filter_range_masks(data: &[u8], lo: Value, hi: Value, out: &mut Vec<u64>) {
    let width = range_width(lo, hi);
    let mut w = MaskWriter::new(out);
    let mut pos = 0;
    while pos < data.len() {
        let v = read_signed(data, &mut pos);
        let run = read_varint(data, &mut pos);
        w.push_run(in_range(v, lo, width), run as usize);
    }
    w.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_compress() {
        let values = vec![7i64; 1000];
        let data = encode(&values);
        assert!(data.len() < 8, "1000 identical values fit in a few bytes");
        assert_eq!(decode(&data), values);
    }

    #[test]
    fn alternating_values_roundtrip() {
        let values: Vec<i64> = (0..100).map(|i| i % 2).collect();
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn empty_input() {
        assert!(encode(&[]).is_empty());
        assert!(decode(&[]).is_empty());
    }

    #[test]
    fn extreme_values() {
        let values = vec![i64::MIN, i64::MIN, i64::MAX];
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn fused_filter_matches_decode_then_test() {
        let values: Vec<i64> = (0..300)
            .flat_map(|i| std::iter::repeat_n(i % 7, (i as usize % 5) + 1))
            .collect();
        let data = encode(&values);
        let mut masks = Vec::new();
        filter_range_masks(&data, 2, 5, &mut masks);
        assert_eq!(masks.len(), values.len().div_ceil(64));
        for (i, &v) in values.iter().enumerate() {
            let bit = masks[i / 64] >> (i % 64) & 1;
            assert_eq!(bit == 1, (2..5).contains(&v), "row {i}");
        }
    }
}
