//! Run-length encoding: (value, run-length) pairs, both varint-coded.

use bytes::{Bytes, BytesMut};

use super::varint::{read_signed, read_varint, write_signed, write_varint};
use crate::types::Value;

/// Encode as a sequence of `(zigzag value, run length)` varint pairs.
pub fn encode(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::new();
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1u64;
        while i + (run as usize) < values.len() && values[i + run as usize] == v {
            run += 1;
        }
        write_signed(&mut buf, v);
        write_varint(&mut buf, run);
        i += run as usize;
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`].
pub fn decode(data: &[u8]) -> Vec<Value> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let v = read_signed(data, &mut pos);
        let run = read_varint(data, &mut pos);
        out.extend(std::iter::repeat_n(v, run as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_compress() {
        let values = vec![7i64; 1000];
        let data = encode(&values);
        assert!(data.len() < 8, "1000 identical values fit in a few bytes");
        assert_eq!(decode(&data), values);
    }

    #[test]
    fn alternating_values_roundtrip() {
        let values: Vec<i64> = (0..100).map(|i| i % 2).collect();
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn empty_input() {
        assert!(encode(&[]).is_empty());
        assert!(decode(&[]).is_empty());
    }

    #[test]
    fn extreme_values() {
        let values = vec![i64::MIN, i64::MIN, i64::MAX];
        assert_eq!(decode(&encode(&values)), values);
    }
}
