//! Dictionary encoding: sorted distinct values + bit-packed codes.
//!
//! Wins on skewed (zipfian) data where a handful of hot values dominate.

use bytes::{BufMut, Bytes, BytesMut};

use super::filter::{unpack_fixed, BlockAgg, MaskWriter};
use super::varint::{read_signed, read_varint, write_signed, write_varint};
use crate::types::Value;

fn bits_for(x: u64) -> u32 {
    64 - x.leading_zeros()
}

#[inline]
fn ones(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Encode with a sorted dictionary.
///
/// Layout: `count varint | dict_len varint | dict entries (delta-coded
/// zigzag varints) | code width u8 | packed codes`.
pub fn encode(values: &[Value]) -> Bytes {
    let mut buf = BytesMut::new();
    write_varint(&mut buf, values.len() as u64);
    if values.is_empty() {
        return buf.freeze();
    }
    let mut dict: Vec<Value> = values.to_vec();
    dict.sort_unstable();
    dict.dedup();
    write_varint(&mut buf, dict.len() as u64);
    let mut prev = 0i64;
    for (i, &v) in dict.iter().enumerate() {
        if i == 0 {
            write_signed(&mut buf, v);
        } else {
            write_signed(&mut buf, v.wrapping_sub(prev));
        }
        prev = v;
    }
    let width = bits_for((dict.len() - 1) as u64).max(1);
    buf.put_u8(width as u8);

    let mut word = 0u64;
    let mut filled = 0u32;
    for &v in values {
        let code = dict.binary_search(&v).expect("value is in dict") as u64;
        let take = width; // width <= 64 always; codes fit in one push
        debug_assert!(take <= 64 - filled || take <= 64);
        let mut remaining = take;
        let mut chunk = code;
        while remaining > 0 {
            let t = remaining.min(64 - filled);
            word |= (chunk & ones(t)) << filled;
            filled += t;
            chunk >>= t - 1;
            chunk >>= 1;
            remaining -= t;
            if filled == 64 {
                buf.put_u64_le(word);
                word = 0;
                filled = 0;
            }
        }
    }
    if filled > 0 {
        buf.put_u64_le(word);
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`].
pub fn decode(data: &[u8]) -> Vec<Value> {
    let mut pos = 0;
    let count = read_varint(data, &mut pos) as usize;
    if count == 0 {
        return Vec::new();
    }
    let dict_len = read_varint(data, &mut pos) as usize;
    let mut dict = Vec::with_capacity(dict_len);
    let mut prev = 0i64;
    for i in 0..dict_len {
        let d = read_signed(data, &mut pos);
        let v = if i == 0 { d } else { prev.wrapping_add(d) };
        dict.push(v);
        prev = v;
    }
    let width = data[pos] as u32;
    pos += 1;
    let words: Vec<u64> = data[pos..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();

    let mut out = Vec::with_capacity(count);
    let mut bit_pos = 0usize;
    for _ in 0..count {
        let mut code = 0u64;
        let mut got = 0u32;
        while got < width {
            let word_idx = bit_pos / 64;
            let in_word = (bit_pos % 64) as u32;
            let take = (width - got).min(64 - in_word);
            let bits = (words[word_idx] >> in_word) & ones(take);
            code |= bits << got;
            got += take;
            bit_pos += take as usize;
        }
        out.push(dict[code as usize]);
    }
    out
}

/// Fused decode+filter: append selection-mask words for `lo <= v < hi`.
///
/// The dictionary is sorted, so the value predicate translates into a
/// *contiguous code range* `[c_lo, c_hi)` found with two binary-search
/// partition points over the (tiny) dictionary. The packed codes are then
/// tested with one unsigned compare each — values are never
/// reconstructed. An all-covered or disjoint dictionary short-circuits to
/// constant-fill masks without touching the code stream at all.
pub fn filter_range_masks(data: &[u8], lo: Value, hi: Value, out: &mut Vec<u64>) {
    let mut pos = 0;
    let count = read_varint(data, &mut pos) as usize;
    if count == 0 {
        return;
    }
    let dict_len = read_varint(data, &mut pos) as usize;
    let mut dict = Vec::with_capacity(dict_len);
    let mut prev = 0i64;
    for i in 0..dict_len {
        let d = read_signed(data, &mut pos);
        let v = if i == 0 { d } else { prev.wrapping_add(d) };
        dict.push(v);
        prev = v;
    }
    // Code-space translation of the value range (dict is sorted+deduped).
    let c_lo = dict.partition_point(|&v| v < lo) as u64;
    let c_hi = dict.partition_point(|&v| v < hi) as u64;
    let mut w = MaskWriter::new(out);
    if c_lo >= c_hi || c_lo == 0 && c_hi == dict_len as u64 {
        // No code matches, or every code does: the code stream is
        // irrelevant.
        w.push_run(c_lo < c_hi, count);
        w.finish();
        return;
    }
    let code_span = c_hi - c_lo;
    let width = data[pos] as u32;
    pos += 1;
    let words: Vec<u64> = data[pos..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    let mut bit_pos = 0usize;
    for _ in 0..count {
        let mut code = 0u64;
        let mut got = 0u32;
        while got < width {
            let word_idx = bit_pos / 64;
            let in_word = (bit_pos % 64) as u32;
            let take = (width - got).min(64 - in_word);
            let bits = (words[word_idx] >> in_word) & ones(take);
            code |= bits << got;
            got += take;
            bit_pos += take as usize;
        }
        w.push_bit(code.wrapping_sub(c_lo) < code_span);
    }
    w.finish();
}

/// Parse the header, returning `(count, dict, width, packed code
/// region)`. The region is *borrowed* — point reads and folds unpack
/// straight from it ([`unpack_fixed`]), no `Vec<u64>` is materialized.
fn parse_header(data: &[u8]) -> (usize, Vec<Value>, u32, &[u8]) {
    let mut pos = 0;
    let count = read_varint(data, &mut pos) as usize;
    if count == 0 {
        return (0, Vec::new(), 0, &[]);
    }
    let dict_len = read_varint(data, &mut pos) as usize;
    let mut dict = Vec::with_capacity(dict_len);
    let mut prev = 0i64;
    for i in 0..dict_len {
        let d = read_signed(data, &mut pos);
        let v = if i == 0 { d } else { prev.wrapping_add(d) };
        dict.push(v);
        prev = v;
    }
    let width = data[pos] as u32;
    pos += 1;
    (count, dict, width, &data[pos..])
}

/// The sorted distinct values of a dictionary block. This is the join
/// kernels' entry point: a hash build inserts each distinct value *once*
/// and fans row ids out by code, and a hash probe translates the whole
/// lookup into a per-code match table computed with `dict_len` probes
/// instead of one per row.
pub fn read_dictionary(data: &[u8]) -> Vec<Value> {
    parse_header(data).1
}

/// Visit `(row, code)` for every row whose bit is set in `active`
/// (block-local selection words), in row order. The header is parsed
/// once; each visit is one branchless fixed-width unpack, and the walk
/// hoists whole 64-row activity words so an all-forgotten word costs one
/// load. Pairs with [`read_dictionary`] to keep join probes in code
/// space.
pub fn for_each_active_code(data: &[u8], active: &[u64], mut f: impl FnMut(usize, u64)) {
    let (count, _, width, region) = parse_header(data);
    for_each_active_fixed(count, active, |row| {
        f(row, unpack_fixed(region, width, row))
    });
}

/// Visit `(row, value)` for active rows in row order: one dictionary
/// parse, then fixed-width unpacks of only the active rows.
pub fn for_each_active(data: &[u8], active: &[u64], mut f: impl FnMut(usize, Value)) {
    let (count, dict, width, region) = parse_header(data);
    for_each_active_fixed(count, active, |row| {
        f(row, dict[unpack_fixed(region, width, row) as usize]);
    });
}

/// Shared word-hoisted walk over the active rows of a `count`-row block.
pub(super) fn for_each_active_fixed(count: usize, active: &[u64], mut f: impl FnMut(usize)) {
    for (g, &aw) in active.iter().enumerate().take(count.div_ceil(64)) {
        let base_row = g * 64;
        let rows = (count - base_row).min(64);
        let mut w = if rows == 64 {
            aw
        } else {
            aw & ((1u64 << rows) - 1)
        };
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            f(base_row + bit);
        }
    }
}

/// Value at row `i`: one direct fixed-width code unpack plus a dictionary
/// lookup — dictionary blocks are random-access, so point reads cost
/// O(dict) parse + O(1) access, with no allocation beyond the (tiny)
/// dictionary itself.
pub fn value_at(data: &[u8], i: usize) -> Value {
    let (count, dict, width, region) = parse_header(data);
    assert!(
        i < count,
        "row {i} out of range for dict block of {count} rows"
    );
    dict[unpack_fixed(region, width, i) as usize]
}

/// Fused masked aggregate in *code space*: matching active rows are
/// histogrammed per code (`counts[code] += 1` — the dictionary is tiny),
/// then COUNT/SUM/MIN/MAX fall out of `counts[c] * dict[c]` with one pass
/// over the dictionary. Values are never reconstructed per row, the
/// sorted dictionary turns the filter into a contiguous code interval,
/// and fixed-width codes are random-access, so the fold hoists each
/// 64-row activity word and unpacks only the *active* rows — an
/// all-forgotten word costs one load.
pub fn fold_range_masked(
    data: &[u8],
    filter: Option<(Value, Value)>,
    active: &[u64],
    agg: &mut BlockAgg,
) {
    let (count, dict, width, region) = parse_header(data);
    if count == 0 {
        return;
    }
    let (c_lo, c_hi) = match filter {
        Some((lo, hi)) => (
            dict.partition_point(|&v| v < lo) as u64,
            dict.partition_point(|&v| v < hi) as u64,
        ),
        None => (0, dict.len() as u64),
    };
    if c_lo >= c_hi {
        return;
    }
    let code_span = c_hi - c_lo;
    let mut counts = vec![0u64; code_span as usize];
    for (g, &aw) in active.iter().enumerate().take(count.div_ceil(64)) {
        let base_row = g * 64;
        let rows = (count - base_row).min(64);
        let w = if rows == 64 {
            aw
        } else {
            aw & ((1u64 << rows) - 1)
        };
        // Only the active rows are unpacked (fixed-width codes make
        // point unpacks one branchless two-word read), so an
        // all-forgotten word costs one load.
        let mut w = w;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            let rebased = unpack_fixed(region, width, base_row + bit).wrapping_sub(c_lo);
            if rebased < code_span {
                counts[rebased as usize] += 1;
            }
        }
    }
    for (slot, &n) in counts.iter().enumerate() {
        if n > 0 {
            agg.push_repeated(dict[c_lo as usize + slot], n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_cardinality_compresses() {
        let vals = [10i64, 20, 30, 40];
        let values: Vec<i64> = (0..4096).map(|i| vals[i % 4]).collect();
        let data = encode(&values);
        // 2-bit codes: 4096*2 bits = 1 KiB + tiny dict.
        assert!(data.len() < 1200, "got {} bytes", data.len());
        assert_eq!(decode(&data), values);
    }

    #[test]
    fn high_cardinality_still_roundtrips() {
        let values: Vec<i64> = (0..1000).map(|i| i * 7919).collect();
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn extremes_roundtrip() {
        let values = vec![i64::MIN, i64::MAX, i64::MIN, 0];
        assert_eq!(decode(&encode(&values)), values);
    }

    #[test]
    fn empty_and_single() {
        assert!(decode(&encode(&[])).is_empty());
        assert_eq!(decode(&encode(&[5])), vec![5]);
    }

    #[test]
    fn single_distinct_value() {
        let values = vec![99i64; 512];
        let data = encode(&values);
        assert_eq!(decode(&data), values);
        assert!(data.len() < 100);
    }

    #[test]
    fn fused_filter_matches_decode_then_test() {
        let vals = [10i64, 20, 30, 40, 50];
        let values: Vec<i64> = (0..400).map(|i| vals[(i * 3 + i / 7) % 5]).collect();
        let data = encode(&values);
        for (lo, hi) in [
            (20, 45),       // interior code range
            (0, 100),       // covers every code: constant-fill fast path
            (60, 90),       // disjoint: constant-fill fast path
            (30, 31),       // single value
            (i64::MIN, 25), // open-ended below
        ] {
            let mut masks = Vec::new();
            filter_range_masks(&data, lo, hi, &mut masks);
            assert_eq!(masks.len(), values.len().div_ceil(64));
            for (i, &v) in values.iter().enumerate() {
                let bit = masks[i / 64] >> (i % 64) & 1;
                assert_eq!(bit == 1, (lo..hi).contains(&v), "row {i} [{lo},{hi})");
            }
        }
    }

    #[test]
    fn value_at_direct_lookup() {
        let vals = [i64::MIN, -3, 7, 1 << 50];
        let values: Vec<i64> = (0..200).map(|i| vals[(i * 11 + i / 3) % 4]).collect();
        let data = encode(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(value_at(&data, i), v, "row {i}");
        }
    }

    #[test]
    fn fold_range_masked_matches_reference() {
        let vals = [10i64, 20, 30, 40, 50];
        let values: Vec<i64> = (0..300).map(|i| vals[(i * 3 + i / 7) % 5]).collect();
        let data = encode(&values);
        let mut active = vec![0u64; values.len().div_ceil(64)];
        for i in (0..values.len()).filter(|i| i % 2 == 0) {
            active[i / 64] |= 1 << (i % 64);
        }
        for filter in [None, Some((20i64, 45i64)), Some((60, 90)), Some((0, 100))] {
            let mut got = BlockAgg::new();
            fold_range_masked(&data, filter, &active, &mut got);
            let mut want = BlockAgg::new();
            for (i, &v) in values.iter().enumerate() {
                if i % 2 == 0 && filter.is_none_or(|(lo, hi)| (lo..hi).contains(&v)) {
                    want.push(v);
                }
            }
            assert_eq!(got, want, "filter {filter:?}");
        }
    }
}
