//! Block-range index (zone map / BRIN).
//!
//! Paper §4.4 points at "partial indices, such as Block-Range-Indices" as
//! the natural index form for an amnesiac store: per-block min/max over the
//! *active* tuples lets range scans skip blocks that are entirely forgotten
//! or entirely outside the predicate. Forgetting makes entries stale in a
//! benign direction (bounds may be wider than necessary — never narrower),
//! so maintenance can be deferred and batched.

use serde::{Deserialize, Serialize};

use amnesia_util::{Bitmap, WORD_BITS};

use crate::table::Table;
use crate::types::{RowId, Value, DEFAULT_BLOCK_ROWS};

/// Min/max/count summary of one block of rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    /// Minimum active value (undefined when `active == 0`).
    pub min: Value,
    /// Maximum active value (undefined when `active == 0`).
    pub max: Value,
    /// Number of active rows in the block.
    pub active: usize,
}

/// A zone map over one column of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneMap {
    col: usize,
    block_rows: usize,
    zones: Vec<Zone>,
    dirty: Bitmap,
    covered_rows: usize,
    stale_forgets: usize,
}

impl ZoneMap {
    /// Build a fresh zone map over `col` with the default block size.
    pub fn build(table: &Table, col: usize) -> Self {
        Self::build_with_block_rows(table, col, DEFAULT_BLOCK_ROWS)
    }

    /// Build with an explicit block size.
    pub fn build_with_block_rows(table: &Table, col: usize, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block size must be positive");
        let mut zm = Self {
            col,
            block_rows,
            zones: Vec::new(),
            dirty: Bitmap::new(),
            covered_rows: 0,
            stale_forgets: 0,
        };
        zm.sync(table);
        zm
    }

    /// The column this map covers.
    pub fn column(&self) -> usize {
        self.col
    }

    /// Rows per block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.zones.len()
    }

    /// Zone for a given block.
    pub fn zone(&self, block: usize) -> &Zone {
        &self.zones[block]
    }

    /// Physical row range `[lo, hi)` of a block.
    pub fn block_range(&self, block: usize) -> (usize, usize) {
        let lo = block * self.block_rows;
        let hi = (lo + self.block_rows).min(self.covered_rows);
        (lo, hi)
    }

    /// Recompute one block from the table.
    fn recompute_block(&mut self, table: &Table, block: usize) {
        let (lo, hi) = self.block_range(block);
        let mut min = Value::MAX;
        let mut max = Value::MIN;
        let mut active = 0usize;
        let activity = table.activity();
        for row in lo..hi {
            let id = RowId::from(row);
            if activity.is_active(id) {
                let v = table.value(self.col, id);
                min = min.min(v);
                max = max.max(v);
                active += 1;
            }
        }
        self.zones[block] = Zone { min, max, active };
    }

    /// Extend coverage to newly appended rows and rebuild dirty blocks.
    ///
    /// Cheap when nothing changed; O(dirty blocks + new rows) otherwise.
    pub fn sync(&mut self, table: &Table) {
        let n = table.num_rows();
        // Grow the zone vector to cover all rows.
        let needed_blocks = n.div_ceil(self.block_rows);
        if needed_blocks > self.zones.len() {
            // The previously-last block may have been partial: mark dirty.
            if !self.zones.is_empty() {
                self.dirty.set(self.zones.len() - 1, true);
            }
            while self.zones.len() < needed_blocks {
                self.zones.push(Zone {
                    min: Value::MAX,
                    max: Value::MIN,
                    active: 0,
                });
                self.dirty.push(true);
            }
        }
        self.covered_rows = n;
        // Rebuild dirty blocks.
        let dirty_blocks: Vec<usize> = self.dirty.iter_ones().collect();
        for b in dirty_blocks {
            self.recompute_block(table, b);
            self.dirty.set(b, false);
        }
        self.stale_forgets = 0;
    }

    /// Record that `row` was forgotten; its block becomes stale.
    ///
    /// Stale zones remain *safe* for pruning (bounds only ever shrink on
    /// rebuild), so queries stay correct between [`Self::sync`] calls.
    pub fn note_forget(&mut self, row: RowId) {
        let b = row.as_usize() / self.block_rows;
        if b < self.zones.len() {
            if self.zones[b].active > 0 {
                self.zones[b].active -= 1;
            }
            self.dirty.set(b, true);
            self.stale_forgets += 1;
        }
    }

    /// Number of forgets since the last sync (staleness measure).
    pub fn stale_forgets(&self) -> usize {
        self.stale_forgets
    }

    /// Blocks whose zone intersects `[lo, hi]` and contains active rows.
    ///
    /// This is the pruning step: blocks not returned cannot contain any
    /// active match.
    pub fn candidate_blocks(&self, lo: Value, hi: Value) -> Vec<usize> {
        self.zones
            .iter()
            .enumerate()
            .filter(|(_, z)| z.active > 0 && z.min <= hi && z.max >= lo)
            .map(|(b, _)| b)
            .collect()
    }

    /// Fraction of blocks pruned for a predicate (1.0 = everything pruned).
    pub fn prune_fraction(&self, lo: Value, hi: Value) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        1.0 - self.candidate_blocks(lo, hi).len() as f64 / self.zones.len() as f64
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.zones.capacity() * std::mem::size_of::<Zone>()
            + self.dirty.memory_bytes()
            + std::mem::size_of::<Self>()
    }
}

/// Word-granularity zone map: one [`Zone`] per 64-row *activity word*.
///
/// Where [`ZoneMap`] prunes at block granularity (1024 rows) for the
/// planner, this map feeds min/max straight into the batch kernels' word
/// loop: a word whose zone cannot intersect the predicate is skipped
/// before its values are ever loaded, composing with the packed activity
/// words so fully-forgotten words stay free. At 16 bytes per 64 rows the
/// map costs 3 % of the column it covers — the price of turning a sorted
/// or clustered column's selective scans into pure metadata walks.
///
/// Forgetting keeps entries *safe* rather than tight (bounds only shrink
/// on [`WordZoneMap::sync`]), exactly like the block-level map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WordZoneMap {
    col: usize,
    zones: Vec<Zone>,
}

impl WordZoneMap {
    /// Build over column `col` from the table's values and activity words.
    pub fn build(table: &Table, col: usize) -> Self {
        let mut zm = Self {
            col,
            zones: Vec::new(),
        };
        zm.sync(table);
        zm
    }

    /// The column this map covers.
    pub fn column(&self) -> usize {
        self.col
    }

    /// One zone per activity word, in word order. This is the slice the
    /// engine's zoned batch kernels consume.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Number of covered words.
    pub fn num_words(&self) -> usize {
        self.zones.len()
    }

    /// Record a forget: the word's active count drops so fully-forgotten
    /// words prune immediately; bounds stay (safely) stale until `sync`.
    pub fn note_forget(&mut self, row: RowId) {
        let w = row.as_usize() / WORD_BITS;
        if let Some(z) = self.zones.get_mut(w) {
            z.active = z.active.saturating_sub(1);
        }
    }

    /// Rebuild every word zone from the table (O(rows); word zones are
    /// cheap enough that partial-rebuild bookkeeping is not worth it).
    /// Tier-aware: frozen columns are materialized once for the rebuild.
    pub fn sync(&mut self, table: &Table) {
        let values = table.col_values_dense(self.col);
        let values = values.as_ref();
        let words = table.activity_words();
        self.zones.clear();
        self.zones.reserve(values.len().div_ceil(WORD_BITS));
        for (wi, &word) in words.iter().enumerate() {
            let base = wi * WORD_BITS;
            if base >= values.len() {
                break;
            }
            let chunk = &values[base..values.len().min(base + WORD_BITS)];
            let mut zone = Zone {
                min: Value::MAX,
                max: Value::MIN,
                active: 0,
            };
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                if bit >= chunk.len() {
                    break;
                }
                let v = chunk[bit];
                zone.min = zone.min.min(v);
                zone.max = zone.max.max(v);
                zone.active += 1;
            }
            self.zones.push(zone);
        }
    }

    /// Fraction of words provably skippable for `[lo, hi]` (inclusive
    /// bounds; 1.0 = the whole column is pruned away).
    pub fn prune_fraction(&self, lo: Value, hi: Value) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        let live = self
            .zones
            .iter()
            .filter(|z| z.active > 0 && z.min <= hi && z.max >= lo)
            .count();
        1.0 - live as f64 / self.zones.len() as f64
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.zones.capacity() * std::mem::size_of::<Zone>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table_with(values: &[Value]) -> Table {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(values, 0).unwrap();
        t
    }

    #[test]
    fn build_computes_bounds() {
        let t = table_with(&[5, 1, 9, 3, 100, 42, 7, 8]);
        let zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.num_blocks(), 2);
        assert_eq!(zm.zone(0).min, 1);
        assert_eq!(zm.zone(0).max, 9);
        assert_eq!(zm.zone(0).active, 4);
        assert_eq!(zm.zone(1).min, 7);
        assert_eq!(zm.zone(1).max, 100);
    }

    #[test]
    fn candidate_blocks_prune() {
        let t = table_with(&[1, 2, 3, 4, 100, 101, 102, 103]);
        let zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.candidate_blocks(0, 10), vec![0]);
        assert_eq!(zm.candidate_blocks(100, 200), vec![1]);
        assert_eq!(zm.candidate_blocks(0, 200), vec![0, 1]);
        assert!(zm.candidate_blocks(50, 60).is_empty());
        assert!((zm.prune_fraction(50, 60) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forgetting_whole_block_prunes_it_after_sync() {
        let mut t = table_with(&[1, 2, 3, 4, 100, 101, 102, 103]);
        let mut zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        for r in 0..4u64 {
            t.forget(RowId(r), 1).unwrap();
            zm.note_forget(RowId(r));
        }
        // Active count already reflects the forgets (prunes by activity).
        assert!(zm.candidate_blocks(0, 10).is_empty());
        assert_eq!(zm.stale_forgets(), 4);
        zm.sync(&t);
        assert_eq!(zm.stale_forgets(), 0);
        assert!(zm.candidate_blocks(0, 10).is_empty());
    }

    #[test]
    fn bounds_tighten_after_sync() {
        let mut t = table_with(&[1, 2, 3, 1000]);
        let mut zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.zone(0).max, 1000);
        t.forget(RowId(3), 1).unwrap();
        zm.note_forget(RowId(3));
        // Stale but safe: still matches [900, 1100] until synced.
        assert_eq!(zm.candidate_blocks(900, 1100), vec![0]);
        zm.sync(&t);
        assert_eq!(zm.zone(0).max, 3);
        assert!(zm.candidate_blocks(900, 1100).is_empty());
    }

    #[test]
    fn sync_covers_appends() {
        let mut t = table_with(&[1, 2]);
        let mut zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.num_blocks(), 1);
        t.insert_batch(&[3, 4, 5, 6, 7], 1).unwrap();
        zm.sync(&t);
        assert_eq!(zm.num_blocks(), 2);
        assert_eq!(zm.zone(0).max, 4);
        assert_eq!(zm.zone(1).min, 5);
        assert_eq!(zm.zone(1).active, 3);
    }

    #[test]
    fn block_range_clips_last_block() {
        let t = table_with(&[1, 2, 3, 4, 5, 6]);
        let zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.block_range(0), (0, 4));
        assert_eq!(zm.block_range(1), (4, 6));
    }

    #[test]
    fn word_zones_cover_words() {
        let values: Vec<Value> = (0..130).collect();
        let t = table_with(&values);
        let wz = WordZoneMap::build(&t, 0);
        assert_eq!(wz.num_words(), 3);
        assert_eq!(wz.zones()[0].min, 0);
        assert_eq!(wz.zones()[0].max, 63);
        assert_eq!(wz.zones()[1].min, 64);
        assert_eq!(wz.zones()[1].max, 127);
        assert_eq!(wz.zones()[2].active, 2);
        assert_eq!(wz.zones()[2].min, 128);
        assert_eq!(wz.zones()[2].max, 129);
    }

    #[test]
    fn word_zones_track_forgets() {
        let values: Vec<Value> = (0..128).collect();
        let mut t = table_with(&values);
        let mut wz = WordZoneMap::build(&t, 0);
        for r in 0..64u64 {
            t.forget(RowId(r), 1).unwrap();
            wz.note_forget(RowId(r));
        }
        // Word 0 prunes by active count before any sync.
        assert_eq!(wz.zones()[0].active, 0);
        assert!((wz.prune_fraction(0, 63) - 1.0).abs() < 1e-12);
        // Stale bounds are safe, never narrower: [100, 120] still hits
        // word 1 only.
        assert!((wz.prune_fraction(100, 120) - 0.5).abs() < 1e-12);
        wz.sync(&t);
        assert_eq!(wz.zones()[0].active, 0);
        assert_eq!(wz.zones()[1].active, 64);
    }

    #[test]
    fn word_zones_prune_sorted_column_hard() {
        let values: Vec<Value> = (0..64_000).collect();
        let t = table_with(&values);
        let wz = WordZoneMap::build(&t, 0);
        // ~1 % selectivity on a sorted column: ≥ 99 % of words prune.
        assert!(wz.prune_fraction(10_000, 10_640) > 0.98);
    }
}
