//! Block-range index (zone map / BRIN).
//!
//! Paper §4.4 points at "partial indices, such as Block-Range-Indices" as
//! the natural index form for an amnesiac store: per-block min/max over the
//! *active* tuples lets range scans skip blocks that are entirely forgotten
//! or entirely outside the predicate. Forgetting makes entries stale in a
//! benign direction (bounds may be wider than necessary — never narrower),
//! so maintenance can be deferred and batched.

use serde::{Deserialize, Serialize};

use amnesia_util::Bitmap;

use crate::table::Table;
use crate::types::{RowId, Value, DEFAULT_BLOCK_ROWS};

/// Min/max/count summary of one block of rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    /// Minimum active value (undefined when `active == 0`).
    pub min: Value,
    /// Maximum active value (undefined when `active == 0`).
    pub max: Value,
    /// Number of active rows in the block.
    pub active: usize,
}

/// A zone map over one column of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneMap {
    col: usize,
    block_rows: usize,
    zones: Vec<Zone>,
    dirty: Bitmap,
    covered_rows: usize,
    stale_forgets: usize,
}

impl ZoneMap {
    /// Build a fresh zone map over `col` with the default block size.
    pub fn build(table: &Table, col: usize) -> Self {
        Self::build_with_block_rows(table, col, DEFAULT_BLOCK_ROWS)
    }

    /// Build with an explicit block size.
    pub fn build_with_block_rows(table: &Table, col: usize, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block size must be positive");
        let mut zm = Self {
            col,
            block_rows,
            zones: Vec::new(),
            dirty: Bitmap::new(),
            covered_rows: 0,
            stale_forgets: 0,
        };
        zm.sync(table);
        zm
    }

    /// The column this map covers.
    pub fn column(&self) -> usize {
        self.col
    }

    /// Rows per block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.zones.len()
    }

    /// Zone for a given block.
    pub fn zone(&self, block: usize) -> &Zone {
        &self.zones[block]
    }

    /// Physical row range `[lo, hi)` of a block.
    pub fn block_range(&self, block: usize) -> (usize, usize) {
        let lo = block * self.block_rows;
        let hi = (lo + self.block_rows).min(self.covered_rows);
        (lo, hi)
    }

    /// Recompute one block from the table.
    fn recompute_block(&mut self, table: &Table, block: usize) {
        let (lo, hi) = self.block_range(block);
        let mut min = Value::MAX;
        let mut max = Value::MIN;
        let mut active = 0usize;
        let activity = table.activity();
        for row in lo..hi {
            let id = RowId::from(row);
            if activity.is_active(id) {
                let v = table.value(self.col, id);
                min = min.min(v);
                max = max.max(v);
                active += 1;
            }
        }
        self.zones[block] = Zone { min, max, active };
    }

    /// Extend coverage to newly appended rows and rebuild dirty blocks.
    ///
    /// Cheap when nothing changed; O(dirty blocks + new rows) otherwise.
    pub fn sync(&mut self, table: &Table) {
        let n = table.num_rows();
        // Grow the zone vector to cover all rows.
        let needed_blocks = n.div_ceil(self.block_rows);
        if needed_blocks > self.zones.len() {
            // The previously-last block may have been partial: mark dirty.
            if !self.zones.is_empty() {
                self.dirty.set(self.zones.len() - 1, true);
            }
            while self.zones.len() < needed_blocks {
                self.zones.push(Zone {
                    min: Value::MAX,
                    max: Value::MIN,
                    active: 0,
                });
                self.dirty.push(true);
            }
        }
        self.covered_rows = n;
        // Rebuild dirty blocks.
        let dirty_blocks: Vec<usize> = self.dirty.iter_ones().collect();
        for b in dirty_blocks {
            self.recompute_block(table, b);
            self.dirty.set(b, false);
        }
        self.stale_forgets = 0;
    }

    /// Record that `row` was forgotten; its block becomes stale.
    ///
    /// Stale zones remain *safe* for pruning (bounds only ever shrink on
    /// rebuild), so queries stay correct between [`Self::sync`] calls.
    pub fn note_forget(&mut self, row: RowId) {
        let b = row.as_usize() / self.block_rows;
        if b < self.zones.len() {
            if self.zones[b].active > 0 {
                self.zones[b].active -= 1;
            }
            self.dirty.set(b, true);
            self.stale_forgets += 1;
        }
    }

    /// Number of forgets since the last sync (staleness measure).
    pub fn stale_forgets(&self) -> usize {
        self.stale_forgets
    }

    /// Blocks whose zone intersects `[lo, hi]` and contains active rows.
    ///
    /// This is the pruning step: blocks not returned cannot contain any
    /// active match.
    pub fn candidate_blocks(&self, lo: Value, hi: Value) -> Vec<usize> {
        self.zones
            .iter()
            .enumerate()
            .filter(|(_, z)| z.active > 0 && z.min <= hi && z.max >= lo)
            .map(|(b, _)| b)
            .collect()
    }

    /// Fraction of blocks pruned for a predicate (1.0 = everything pruned).
    pub fn prune_fraction(&self, lo: Value, hi: Value) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        1.0 - self.candidate_blocks(lo, hi).len() as f64 / self.zones.len() as f64
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.zones.capacity() * std::mem::size_of::<Zone>()
            + self.dirty.memory_bytes()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table_with(values: &[Value]) -> Table {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(values, 0).unwrap();
        t
    }

    #[test]
    fn build_computes_bounds() {
        let t = table_with(&[5, 1, 9, 3, 100, 42, 7, 8]);
        let zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.num_blocks(), 2);
        assert_eq!(zm.zone(0).min, 1);
        assert_eq!(zm.zone(0).max, 9);
        assert_eq!(zm.zone(0).active, 4);
        assert_eq!(zm.zone(1).min, 7);
        assert_eq!(zm.zone(1).max, 100);
    }

    #[test]
    fn candidate_blocks_prune() {
        let t = table_with(&[1, 2, 3, 4, 100, 101, 102, 103]);
        let zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.candidate_blocks(0, 10), vec![0]);
        assert_eq!(zm.candidate_blocks(100, 200), vec![1]);
        assert_eq!(zm.candidate_blocks(0, 200), vec![0, 1]);
        assert!(zm.candidate_blocks(50, 60).is_empty());
        assert!((zm.prune_fraction(50, 60) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forgetting_whole_block_prunes_it_after_sync() {
        let mut t = table_with(&[1, 2, 3, 4, 100, 101, 102, 103]);
        let mut zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        for r in 0..4u64 {
            t.forget(RowId(r), 1).unwrap();
            zm.note_forget(RowId(r));
        }
        // Active count already reflects the forgets (prunes by activity).
        assert!(zm.candidate_blocks(0, 10).is_empty());
        assert_eq!(zm.stale_forgets(), 4);
        zm.sync(&t);
        assert_eq!(zm.stale_forgets(), 0);
        assert!(zm.candidate_blocks(0, 10).is_empty());
    }

    #[test]
    fn bounds_tighten_after_sync() {
        let mut t = table_with(&[1, 2, 3, 1000]);
        let mut zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.zone(0).max, 1000);
        t.forget(RowId(3), 1).unwrap();
        zm.note_forget(RowId(3));
        // Stale but safe: still matches [900, 1100] until synced.
        assert_eq!(zm.candidate_blocks(900, 1100), vec![0]);
        zm.sync(&t);
        assert_eq!(zm.zone(0).max, 3);
        assert!(zm.candidate_blocks(900, 1100).is_empty());
    }

    #[test]
    fn sync_covers_appends() {
        let mut t = table_with(&[1, 2]);
        let mut zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.num_blocks(), 1);
        t.insert_batch(&[3, 4, 5, 6, 7], 1).unwrap();
        zm.sync(&t);
        assert_eq!(zm.num_blocks(), 2);
        assert_eq!(zm.zone(0).max, 4);
        assert_eq!(zm.zone(1).min, 5);
        assert_eq!(zm.zone(1).active, 3);
    }

    #[test]
    fn block_range_clips_last_block() {
        let t = table_with(&[1, 2, 3, 4, 5, 6]);
        let zm = ZoneMap::build_with_block_rows(&t, 0, 4);
        assert_eq!(zm.block_range(0), (0, 4));
        assert_eq!(zm.block_range(1), (4, 6));
    }
}
