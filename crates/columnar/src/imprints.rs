//! Column imprints: cacheline-grained bit-vector filters.
//!
//! The paper's §4.4 points at lightweight secondary structures (zone maps
//! / Block-Range-Indices) as the natural index family for an amnesiac
//! store; *column imprints* (Sidirourgos & Kersten, SIGMOD 2013 — the
//! same authors) are MonetDB's refinement: for every block of values keep
//! a small bitmask recording which value-histogram bins occur in the
//! block. A range query probes blocks whose mask intersects the query's
//! bin mask — strictly finer than min/max zone maps on multi-modal data
//! (a block holding values {1, 999} prunes a query for 500, which a zone
//! map cannot).
//!
//! Like every auxiliary structure here, imprints are droppable and
//! staleness-tolerant: forgetting only ever leaves masks *over*-inclusive
//! (safe), and [`Imprints::rebuild`] tightens them again.

use serde::{Deserialize, Serialize};

use crate::table::Table;
use crate::types::{RowId, Value};

/// Number of histogram bins = bits per imprint word.
const BINS: usize = 64;

/// Imprint index over one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Imprints {
    col: usize,
    block_rows: usize,
    /// Bin boundaries: `bounds[i]` is the inclusive upper bound of bin
    /// `i`; derived from min/max at build time.
    lo: Value,
    hi: Value,
    /// One 64-bit mask per block: bit `b` set ⇔ some *active* value of
    /// the block falls in bin `b`.
    masks: Vec<u64>,
    covered_rows: usize,
    stale_forgets: usize,
}

impl Imprints {
    /// Build over `col` with the given block size (rows per imprint).
    pub fn build(table: &Table, col: usize, block_rows: usize) -> Self {
        assert!(block_rows > 0, "block size must be positive");
        let lo = table.min_seen(col).unwrap_or(0);
        let hi = table.max_seen(col).unwrap_or(0).max(lo);
        let mut imp = Self {
            col,
            block_rows,
            lo,
            hi,
            masks: Vec::new(),
            covered_rows: 0,
            stale_forgets: 0,
        };
        imp.rebuild(table);
        imp
    }

    /// Bin of a value (clamped to the build-time range).
    #[inline]
    fn bin_of(&self, v: Value) -> usize {
        let v = v.clamp(self.lo, self.hi);
        let span = (self.hi - self.lo + 1) as u128;
        ((v - self.lo) as u128 * BINS as u128 / span) as usize
    }

    /// Mask with bits for every bin intersecting `[lo, hi]`.
    fn range_mask(&self, lo: Value, hi: Value) -> u64 {
        if hi < lo {
            return 0;
        }
        // Values outside the built range land in edge bins by clamping,
        // so a query past the edge still probes those bins.
        let b_lo = self.bin_of(lo) as u32;
        let b_hi = self.bin_of(hi) as u32;
        let width = b_hi - b_lo + 1;
        if width >= 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << b_lo
        }
    }

    /// Recompute all masks from the table's active rows.
    pub fn rebuild(&mut self, table: &Table) {
        let n = table.num_rows();
        // Keep the original bin geometry unless the value range grew.
        let new_lo = table.min_seen(self.col).unwrap_or(self.lo);
        let new_hi = table.max_seen(self.col).unwrap_or(self.hi);
        if new_lo < self.lo || new_hi > self.hi {
            self.lo = new_lo.min(self.lo);
            self.hi = new_hi.max(self.hi);
        }
        let blocks = n.div_ceil(self.block_rows);
        self.masks = vec![0u64; blocks];
        let activity = table.activity();
        for r in 0..n {
            let id = RowId::from(r);
            if activity.is_active(id) {
                let bin = self.bin_of(table.value(self.col, id));
                self.masks[r / self.block_rows] |= 1u64 << bin;
            }
        }
        self.covered_rows = n;
        self.stale_forgets = 0;
    }

    /// Record a forget; the mask stays over-inclusive (safe) until the
    /// next rebuild.
    pub fn note_forget(&mut self, _row: RowId) {
        self.stale_forgets += 1;
    }

    /// Forgets since the last rebuild.
    pub fn stale_forgets(&self) -> usize {
        self.stale_forgets
    }

    /// Rows per block.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of blocks covered.
    pub fn num_blocks(&self) -> usize {
        self.masks.len()
    }

    /// Blocks whose imprint intersects `[lo, hi]` — candidates for a
    /// range scan; blocks not returned cannot contain an active match
    /// (as of the last rebuild).
    pub fn candidate_blocks(&self, lo: Value, hi: Value) -> Vec<usize> {
        let qmask = self.range_mask(lo, hi);
        self.masks
            .iter()
            .enumerate()
            .filter(|(_, &m)| m & qmask != 0)
            .map(|(b, _)| b)
            .collect()
    }

    /// Fraction of blocks pruned for a predicate.
    pub fn prune_fraction(&self, lo: Value, hi: Value) -> f64 {
        if self.masks.is_empty() {
            return 0.0;
        }
        1.0 - self.candidate_blocks(lo, hi).len() as f64 / self.masks.len() as f64
    }

    /// Heap footprint: one u64 per block — an order of magnitude below a
    /// sorted index.
    pub fn memory_bytes(&self) -> usize {
        self.masks.capacity() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table_with(values: &[Value]) -> Table {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(values, 0).unwrap();
        t
    }

    /// Reference: blocks that actually contain an active match.
    fn true_blocks(t: &Table, lo: Value, hi: Value, block_rows: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for b in 0..t.num_rows().div_ceil(block_rows) {
            let start = b * block_rows;
            let end = (start + block_rows).min(t.num_rows());
            let has = (start..end).any(|r| {
                let id = RowId::from(r);
                t.activity().is_active(id) && (lo..=hi).contains(&t.value(0, id))
            });
            if has {
                out.push(b);
            }
        }
        out
    }

    #[test]
    fn never_misses_a_matching_block() {
        let values: Vec<i64> = (0..1000).map(|i| (i * 37) % 997).collect();
        let t = table_with(&values);
        let imp = Imprints::build(&t, 0, 32);
        for (lo, hi) in [(0i64, 50i64), (500, 600), (990, 996), (0, 996)] {
            let candidates = imp.candidate_blocks(lo, hi);
            for b in true_blocks(&t, lo, hi, 32) {
                assert!(candidates.contains(&b), "missed block {b} for [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn prunes_multimodal_blocks_that_zonemaps_cannot() {
        // Every block holds values near 0 AND near 10_000: min/max zone
        // maps prune nothing for a mid-range query, imprints prune all.
        let mut values = Vec::new();
        for _ in 0..64 {
            for i in 0..16 {
                values.push(i); // low mode
                values.push(10_000 - i); // high mode
            }
        }
        let t = table_with(&values);
        let imp = Imprints::build(&t, 0, 32);
        let zm = crate::zonemap::ZoneMap::build_with_block_rows(&t, 0, 32);
        let (lo, hi) = (4000i64, 6000i64);
        assert_eq!(
            zm.candidate_blocks(lo, hi).len(),
            zm.num_blocks(),
            "zone map can't prune"
        );
        assert!(
            imp.candidate_blocks(lo, hi).is_empty(),
            "imprints prune everything"
        );
        assert!((imp.prune_fraction(lo, hi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rebuild_tightens_after_forgets() {
        let values: Vec<i64> = (0..640).collect();
        let mut t = table_with(&values);
        let mut imp = Imprints::build(&t, 0, 64);
        // Forget all values < 320 (the first five blocks).
        for r in 0..320u64 {
            t.forget(RowId(r), 1).unwrap();
            imp.note_forget(RowId(r));
        }
        // Stale: still over-inclusive (safe).
        assert!(!imp.candidate_blocks(0, 100).is_empty());
        assert_eq!(imp.stale_forgets(), 320);
        imp.rebuild(&t);
        assert!(imp.candidate_blocks(0, 300).is_empty(), "tightened");
        assert_eq!(imp.stale_forgets(), 0);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let t = table_with(&[1, 2, 3]);
        let imp = Imprints::build(&t, 0, 2);
        assert!(imp.candidate_blocks(10, 5).is_empty());
        assert_eq!(imp.num_blocks(), 2);
    }

    #[test]
    fn memory_is_one_word_per_block() {
        let values: Vec<i64> = (0..64_000).collect();
        let t = table_with(&values);
        let imp = Imprints::build(&t, 0, 64);
        assert_eq!(imp.num_blocks(), 1000);
        assert!(imp.memory_bytes() < 1000 * 8 + 256);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::schema::Schema;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn imprints_are_always_safe(
            values in proptest::collection::vec(0i64..10_000, 1..500),
            forget in proptest::collection::vec(0usize..500, 0..100),
            lo in 0i64..10_000,
            width in 0i64..5_000,
        ) {
            let mut t = Table::new(Schema::single("a"));
            t.insert_batch(&values, 0).unwrap();
            let mut imp = Imprints::build(&t, 0, 16);
            for &f in &forget {
                let r = RowId((f % values.len()) as u64);
                if t.activity().is_active(r) {
                    t.forget(r, 1).unwrap();
                    imp.note_forget(r);
                }
            }
            let hi = lo + width;
            let candidates = imp.candidate_blocks(lo, hi);
            // Safety: every active match lives in a candidate block.
            for r in t.iter_active() {
                let v = t.value(0, r);
                if (lo..=hi).contains(&v) {
                    let b = r.as_usize() / 16;
                    prop_assert!(candidates.contains(&b), "missed block {b}");
                }
            }
        }
    }
}
