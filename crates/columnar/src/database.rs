//! Multi-table databases with referential amnesia.
//!
//! Paper §5: "Semantic database integrity creates another challenge for
//! amnesia strategies. For example, foreign key relationships put a hard
//! boundary on what we can forget. Should forgetting a key value be
//! forbidden unless it is not referenced any more? Or should we cascade
//! by forgetting all related tuples?"
//!
//! [`Database`] implements both answers: [`ReferentialAction::Restrict`]
//! refuses to forget a key tuple while active references exist (unless a
//! duplicate active key remains), and [`ReferentialAction::Cascade`]
//! transitively forgets every referencing tuple.

use amnesia_util::{storage_err, Result};

use crate::schema::Schema;
use crate::table::Table;
use crate::types::{Epoch, RowId, Value};

/// A value-based foreign key: `child_table.child_col` references
/// `parent_table.parent_col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table id.
    pub child_table: usize,
    /// Referencing column index.
    pub child_col: usize,
    /// Referenced table id.
    pub parent_table: usize,
    /// Referenced (key) column index.
    pub parent_col: usize,
}

/// What forgetting does when references exist (paper §5's two options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferentialAction {
    /// Forbid forgetting a key tuple while it is still referenced (and no
    /// other active tuple carries the same key value).
    Restrict,
    /// Transitively forget every active tuple that references the key.
    Cascade,
}

/// A tuple location: `(table id, row id)`.
pub type TupleRef = (usize, RowId);

/// A collection of amnesiac tables linked by foreign keys.
#[derive(Debug, Default)]
pub struct Database {
    tables: Vec<Table>,
    names: Vec<String>,
    fks: Vec<ForeignKey>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table; returns its id.
    pub fn add_table(&mut self, name: impl Into<String>, schema: Schema) -> usize {
        self.tables.push(Table::new(schema));
        self.names.push(name.into());
        self.tables.len() - 1
    }

    /// Declare a foreign key. Validates table/column indices.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        let check = |t: usize, c: usize| -> Result<()> {
            let table = self
                .tables
                .get(t)
                .ok_or_else(|| storage_err!("table {t} does not exist"))?;
            if c >= table.schema().arity() {
                return Err(storage_err!("column {c} out of range for table {t}"));
            }
            Ok(())
        };
        check(fk.child_table, fk.child_col)?;
        check(fk.parent_table, fk.parent_col)?;
        self.fks.push(fk);
        Ok(())
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Table by id.
    pub fn table(&self, id: usize) -> &Table {
        &self.tables[id]
    }

    /// Mutable table by id (inserts go through here).
    pub fn table_mut(&mut self, id: usize) -> &mut Table {
        &mut self.tables[id]
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Table name by id.
    pub fn table_name(&self, id: usize) -> Option<&str> {
        self.names.get(id).map(String::as_str)
    }

    /// Declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.fks
    }

    /// Active rows of `fk.child_table` referencing key value `key`.
    fn active_referents(&self, fk: &ForeignKey, key: Value) -> Vec<RowId> {
        let child = &self.tables[fk.child_table];
        child
            .iter_active()
            .filter(|&r| child.value(fk.child_col, r) == key)
            .collect()
    }

    /// Is there another *active* row in the parent table carrying the same
    /// key value (so the reference target survives)?
    fn duplicate_key_survives(&self, fk: &ForeignKey, key: Value, dying: RowId) -> bool {
        let parent = &self.tables[fk.parent_table];
        parent
            .iter_active()
            .any(|r| r != dying && parent.value(fk.parent_col, r) == key)
    }

    /// Forget a tuple under referential semantics.
    ///
    /// Returns every tuple actually forgotten — the requested one plus,
    /// under `Cascade`, the transitive closure of its referents. Under
    /// `Restrict`, errs (forgetting nothing) if any foreign key would
    /// dangle.
    pub fn forget(
        &mut self,
        table: usize,
        row: RowId,
        epoch: Epoch,
        action: ReferentialAction,
    ) -> Result<Vec<TupleRef>> {
        if table >= self.tables.len() {
            return Err(storage_err!("table {table} does not exist"));
        }
        if !self.tables[table].activity().is_active(row) {
            return Ok(Vec::new()); // already forgotten: no-op
        }

        // Worklist of tuples to forget; grows under cascade.
        let mut pending: Vec<TupleRef> = vec![(table, row)];
        let mut planned: std::collections::HashSet<TupleRef> = pending.iter().copied().collect();
        let mut order: Vec<TupleRef> = Vec::new();

        while let Some((t, r)) = pending.pop() {
            order.push((t, r));
            // For every FK where `t` is the parent, examine referents.
            let fks: Vec<ForeignKey> = self
                .fks
                .iter()
                .copied()
                .filter(|fk| fk.parent_table == t)
                .collect();
            for fk in fks {
                let key = self.tables[t].value(fk.parent_col, r);
                if self.duplicate_key_survives(&fk, key, r) {
                    continue; // the key value remains resolvable
                }
                let referents: Vec<RowId> = self
                    .active_referents(&fk, key)
                    .into_iter()
                    .filter(|&cr| !planned.contains(&(fk.child_table, cr)))
                    .collect();
                if referents.is_empty() {
                    continue;
                }
                match action {
                    ReferentialAction::Restrict => {
                        return Err(storage_err!(
                            "cannot forget {}[{r}]: key {key} referenced by {} active row(s) \
                             of {} (restrict)",
                            self.names[t],
                            referents.len(),
                            self.names[fk.child_table]
                        ));
                    }
                    ReferentialAction::Cascade => {
                        for cr in referents {
                            if planned.insert((fk.child_table, cr)) {
                                pending.push((fk.child_table, cr));
                            }
                        }
                    }
                }
            }
        }

        // All checks passed: apply the forgets.
        for &(t, r) in &order {
            self.tables[t].forget(r, epoch)?;
        }
        Ok(order)
    }

    /// Check that no active child row references a missing (forgotten or
    /// absent) parent key. Returns the dangling references.
    pub fn dangling_references(&self) -> Vec<(ForeignKey, RowId, Value)> {
        let mut dangling = Vec::new();
        for fk in &self.fks {
            let parent = &self.tables[fk.parent_table];
            let keys: std::collections::HashSet<Value> = parent
                .iter_active()
                .map(|r| parent.value(fk.parent_col, r))
                .collect();
            let child = &self.tables[fk.child_table];
            for r in child.iter_active() {
                let key = child.value(fk.child_col, r);
                if !keys.contains(&key) {
                    dangling.push((*fk, r, key));
                }
            }
        }
        dangling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// customers(id) ← orders(customer_id, amount)
    fn shop() -> (Database, usize, usize) {
        let mut db = Database::new();
        let customers = db.add_table("customers", Schema::single("id"));
        let orders = db.add_table("orders", Schema::new(vec!["customer_id", "amount"]));
        db.add_foreign_key(ForeignKey {
            child_table: orders,
            child_col: 0,
            parent_table: customers,
            parent_col: 0,
        })
        .unwrap();
        // customers 100, 200, 300
        for id in [100i64, 200, 300] {
            db.table_mut(customers).insert(&[id], 0).unwrap();
        }
        // orders: 2 for customer 100, 1 for 200, none for 300
        db.table_mut(orders).insert(&[100, 5], 0).unwrap();
        db.table_mut(orders).insert(&[100, 7], 0).unwrap();
        db.table_mut(orders).insert(&[200, 9], 0).unwrap();
        (db, customers, orders)
    }

    #[test]
    fn restrict_blocks_referenced_keys() {
        let (mut db, customers, orders) = shop();
        let err = db
            .forget(customers, RowId(0), 1, ReferentialAction::Restrict)
            .unwrap_err();
        assert!(err.to_string().contains("restrict"), "{err}");
        // Nothing was forgotten.
        assert_eq!(db.table(customers).active_rows(), 3);
        assert_eq!(db.table(orders).active_rows(), 3);
        assert!(db.dangling_references().is_empty());
    }

    #[test]
    fn restrict_allows_unreferenced_keys() {
        let (mut db, customers, _) = shop();
        // Customer 300 has no orders: forgettable.
        let forgotten = db
            .forget(customers, RowId(2), 1, ReferentialAction::Restrict)
            .unwrap();
        assert_eq!(forgotten, vec![(customers, RowId(2))]);
        assert!(db.dangling_references().is_empty());
    }

    #[test]
    fn restrict_allows_duplicate_keys() {
        let (mut db, customers, _) = shop();
        // A second active row with key 100: the reference target survives.
        db.table_mut(customers).insert(&[100], 1).unwrap();
        let forgotten = db
            .forget(customers, RowId(0), 1, ReferentialAction::Restrict)
            .unwrap();
        assert_eq!(forgotten.len(), 1);
        assert!(db.dangling_references().is_empty());
    }

    #[test]
    fn cascade_forgets_referents() {
        let (mut db, customers, orders) = shop();
        let mut forgotten = db
            .forget(customers, RowId(0), 1, ReferentialAction::Cascade)
            .unwrap();
        forgotten.sort();
        assert_eq!(
            forgotten,
            vec![
                (customers, RowId(0)),
                (orders, RowId(0)),
                (orders, RowId(1)),
            ]
        );
        assert_eq!(db.table(orders).active_rows(), 1);
        assert!(db.dangling_references().is_empty());
    }

    #[test]
    fn cascade_is_transitive() {
        // customers ← orders ← line_items
        let (mut db, customers, orders) = shop();
        let items = db.add_table("line_items", Schema::new(vec!["order_amount", "qty"]));
        // Link items to orders via the amount column (toy key).
        db.add_foreign_key(ForeignKey {
            child_table: items,
            child_col: 0,
            parent_table: orders,
            parent_col: 1,
        })
        .unwrap();
        db.table_mut(items).insert(&[5, 1], 0).unwrap(); // → order amount 5
        db.table_mut(items).insert(&[7, 2], 0).unwrap(); // → order amount 7
        db.table_mut(items).insert(&[9, 3], 0).unwrap(); // → order amount 9

        let forgotten = db
            .forget(customers, RowId(0), 2, ReferentialAction::Cascade)
            .unwrap();
        // customer 100 → orders (100,5) and (100,7) → items 5 and 7.
        assert_eq!(forgotten.len(), 5);
        assert!(db.dangling_references().is_empty());
        assert_eq!(db.table(items).active_rows(), 1);
    }

    #[test]
    fn forgetting_children_is_unrestricted() {
        let (mut db, _, orders) = shop();
        let forgotten = db
            .forget(orders, RowId(0), 1, ReferentialAction::Restrict)
            .unwrap();
        assert_eq!(forgotten.len(), 1);
    }

    #[test]
    fn double_forget_is_noop() {
        let (mut db, customers, _) = shop();
        db.forget(customers, RowId(2), 1, ReferentialAction::Cascade)
            .unwrap();
        let again = db
            .forget(customers, RowId(2), 2, ReferentialAction::Cascade)
            .unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn dangling_detector_catches_raw_forgets() {
        let (mut db, customers, _) = shop();
        // Bypass referential checking (raw table forget).
        db.table_mut(customers).forget(RowId(0), 1).unwrap();
        let dangling = db.dangling_references();
        assert_eq!(dangling.len(), 2, "both orders of customer 100 dangle");
        assert!(dangling.iter().all(|(_, _, key)| *key == 100));
    }

    #[test]
    fn invalid_fk_rejected() {
        let mut db = Database::new();
        let t = db.add_table("t", Schema::single("a"));
        assert!(db
            .add_foreign_key(ForeignKey {
                child_table: t,
                child_col: 5,
                parent_table: t,
                parent_col: 0,
            })
            .is_err());
        assert!(db
            .add_foreign_key(ForeignKey {
                child_table: 9,
                child_col: 0,
                parent_table: t,
                parent_col: 0,
            })
            .is_err());
    }
}
