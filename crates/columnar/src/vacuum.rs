//! Physical removal of forgotten tuples.
//!
//! The most radical answer to "what happens to forgotten data" (paper §1):
//! delete it. Marking keeps the simulator's metrics exact, but a real
//! deployment must eventually reclaim the space — the temporal-database
//! literature calls this *vacuuming* (paper §5, \[9\]). `vacuum` compacts a
//! table down to its active tuples and returns a row-id remapping so
//! auxiliary structures (indexes, policy state) can migrate.

use crate::table::Table;
use crate::types::RowId;

/// Outcome of a vacuum pass.
#[derive(Debug)]
pub struct VacuumResult {
    /// The compacted table: only previously-active rows, same schema,
    /// insertion epochs and access statistics preserved.
    pub table: Table,
    /// `remap[old_row] = Some(new_row)` for survivors, `None` for removed.
    pub remap: Vec<Option<RowId>>,
    /// Number of physically removed rows.
    pub removed: usize,
    /// Bytes reclaimed (approximate, based on heap accounting).
    pub reclaimed_bytes: usize,
}

/// Compact `table` by dropping all forgotten rows.
///
/// Tier-aware: the source may hold frozen compressed blocks (survivor
/// values read through the codec point-access paths), and the compacted
/// table comes out fully hot with the same block size — the store's
/// freeze scheduling re-freezes its cold prefix at the next batch
/// boundary.
pub fn vacuum(table: &Table) -> VacuumResult {
    let mut compacted = Table::with_block_rows(table.schema().clone(), table.block_rows());
    let n = table.num_rows();
    let mut remap: Vec<Option<RowId>> = vec![None; n];

    // Materialize each column once: survivor reads are then plain
    // indexing instead of a codec point-read per value on frozen blocks.
    let columns: Vec<_> = (0..table.schema().arity())
        .map(|c| table.col_values_dense(c))
        .collect();
    let mut values = vec![0i64; columns.len()];
    for old in table.iter_active() {
        for (slot, col) in values.iter_mut().zip(&columns) {
            *slot = col[old.as_usize()];
        }
        let new_id = compacted
            .insert(&values, table.insert_epoch(old))
            .expect("arity matches by construction");
        compacted.access_mut().restore(
            new_id,
            table.access().frequency(old),
            table.access().last_access(old),
        );
        remap[old.as_usize()] = Some(new_id);
    }

    let removed = n - compacted.num_rows();
    let reclaimed_bytes = table
        .memory_bytes()
        .saturating_sub(compacted.memory_bytes());
    VacuumResult {
        table: compacted,
        remap,
        removed,
        reclaimed_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn build() -> Table {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[10, 20, 30, 40, 50], 0).unwrap();
        t.insert_batch(&[60, 70], 3).unwrap();
        t.forget(RowId(1), 1).unwrap();
        t.forget(RowId(3), 2).unwrap();
        t.access_mut().touch(RowId(4), 2);
        t.access_mut().touch(RowId(4), 2);
        t
    }

    #[test]
    fn survivors_keep_values_epochs_and_stats() {
        let t = build();
        let result = vacuum(&t);
        let c = &result.table;
        assert_eq!(result.removed, 2);
        assert_eq!(c.num_rows(), 5);
        assert_eq!(c.active_rows(), 5, "vacuumed table is fully active");
        // Value order preserved: 10, 30, 50, 60, 70.
        let values: Vec<i64> = (0..5).map(|i| c.value(0, RowId(i as u64))).collect();
        assert_eq!(values, vec![10, 30, 50, 60, 70]);
        // Epochs preserved.
        assert_eq!(c.insert_epoch(RowId(3)), 3);
        // Access stats migrated: old row 4 (value 50) became new row 2.
        assert_eq!(c.access().frequency(RowId(2)), 2.0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn remap_is_consistent() {
        let t = build();
        let result = vacuum(&t);
        assert_eq!(result.remap.len(), 7);
        assert_eq!(result.remap[0], Some(RowId(0)));
        assert_eq!(result.remap[1], None);
        assert_eq!(result.remap[2], Some(RowId(1)));
        assert_eq!(result.remap[3], None);
        assert_eq!(result.remap[4], Some(RowId(2)));
        // Every survivor maps to the row holding the same value.
        for old in t.iter_active() {
            let new = result.remap[old.as_usize()].unwrap();
            assert_eq!(t.value(0, old), result.table.value(0, new));
        }
    }

    #[test]
    fn vacuum_of_fully_active_table_is_identity_shaped() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[1, 2, 3], 0).unwrap();
        let result = vacuum(&t);
        assert_eq!(result.removed, 0);
        assert_eq!(result.table.num_rows(), 3);
        assert!(result.remap.iter().all(Option::is_some));
    }

    #[test]
    fn vacuum_of_fully_forgotten_table_is_empty() {
        let mut t = Table::new(Schema::single("a"));
        t.insert_batch(&[1, 2], 0).unwrap();
        t.forget(RowId(0), 1).unwrap();
        t.forget(RowId(1), 1).unwrap();
        let result = vacuum(&t);
        assert_eq!(result.removed, 2);
        assert_eq!(result.table.num_rows(), 0);
    }

    #[test]
    fn vacuum_reads_through_frozen_blocks() {
        let mut t = Table::with_block_rows(Schema::single("a"), 64);
        t.insert_batch(&(0..300).collect::<Vec<i64>>(), 0).unwrap();
        for r in (0..300u64).step_by(3) {
            t.forget(RowId(r), 1).unwrap();
        }
        t.freeze_upto(300);
        assert!(t.has_frozen());
        let result = vacuum(&t);
        assert_eq!(result.removed, 100);
        assert!(!result.table.has_frozen(), "compacted table is fully hot");
        assert_eq!(result.table.block_rows(), 64, "block size preserved");
        for old in t.iter_active() {
            let new = result.remap[old.as_usize()].unwrap();
            assert_eq!(t.value(0, old), result.table.value(0, new));
        }
    }

    #[test]
    fn multi_column_values_survive() {
        let mut t = Table::new(Schema::new(vec!["a", "b"]));
        t.insert(&[1, 100], 0).unwrap();
        t.insert(&[2, 200], 0).unwrap();
        t.insert(&[3, 300], 0).unwrap();
        t.forget(RowId(1), 1).unwrap();
        let result = vacuum(&t);
        assert_eq!(result.table.row_values(RowId(0)), vec![1, 100]);
        assert_eq!(result.table.row_values(RowId(1)), vec![3, 300]);
    }
}
