//! Columnar storage substrate for the amnesia system.
//!
//! The paper's simulator is "a skeleton of a columnar DBMS" (§2.1): tables
//! of integer columns where every tuple carries an *active/forgotten* mark
//! at single-record granularity, an insertion epoch (which update batch it
//! arrived in) and an access-frequency counter (for query-based rot, §3.2).
//! This crate provides that skeleton plus the storage machinery a real
//! deployment of amnesia would lean on, all referenced in the paper:
//!
//! * [`table::Table`] — the central amnesiac table,
//! * [`activity::ActivityMap`] — per-tuple active/forgotten marking,
//! * [`access::AccessStats`] — per-tuple access frequency / recency,
//! * [`zonemap::ZoneMap`] — block-range (BRIN-style) min/max pruning
//!   (§4.4 "partial indices, such as Block-Range-Indices"),
//! * [`index::SortedIndex`] — a droppable, re-creatable secondary index
//!   (§4.4 "indices … can be easily dropped, and recreated upon need"),
//! * [`compress`] — RLE / delta / frame-of-reference / dictionary codecs
//!   (§4.4 "data compression can be called upon to postpone the decisions
//!   to forget data"),
//! * [`tier`] — tiered column storage: cold full blocks live *compressed
//!   in place* (hot → frozen → recompressed → dropped) with cached
//!   per-block zone metadata, so compression is the table's resting
//!   state rather than a side-car snapshot,
//! * [`coldstore`] — where forgotten tuples can be moved instead of
//!   deleted (§1, §5),
//! * [`summary`] — aggregate summaries of forgotten data (§1 "keep a
//!   summary, i.e., a few aggregated values (min, max, avg)"),
//! * [`vacuum`] — physical removal of forgotten tuples.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod activity;
pub mod coldstore;
pub mod column;
pub mod compress;
pub mod database;
pub mod imprints;
pub mod index;
pub mod micromodel;
pub mod persist;
pub mod schema;
pub mod segment;
pub mod summary;
pub mod table;
pub mod tier;
pub mod types;
pub mod vacuum;
pub mod zonemap;

pub use access::AccessStats;
pub use activity::ActivityMap;
pub use coldstore::{ColdStore, FileColdStore, MemoryColdStore};
pub use column::Column;
pub use database::{Database, ForeignKey, ReferentialAction};
pub use imprints::Imprints;
pub use index::SortedIndex;
pub use micromodel::{Estimate, MicroModel, ModelStore, ValueRange};
pub use persist::{
    DurabilityHook, DurableLog, FaultVfs, PersistentTable, SharedVfs, StdVfs, SyncPolicy, Vfs, Wal,
    WalRecord, WalStats,
};
pub use schema::{ColumnDef, Schema};
pub use segment::SegmentedColumn;
pub use summary::{SummaryCell, SummaryStore};
pub use table::Table;
pub use tier::{BlockMeta, BlockState, FrozenBlock, TieredColumn};
pub use types::{Epoch, RowId, Value, DEFAULT_BLOCK_ROWS};
pub use zonemap::{WordZoneMap, Zone, ZoneMap};
