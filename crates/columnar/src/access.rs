//! Per-tuple access statistics.
//!
//! Query-based amnesia (paper §3.2) extends tables "with the frequency of
//! access for each tuple"; after each batch of inserts, tuples are
//! forgotten with probability related to that frequency. We also track the
//! last-access epoch so policies can combine frequency with recency, and
//! provide exponential decay so ancient popularity fades ("no data should
//! continue to appear in a result set, if that data has not been curated").

use serde::{Deserialize, Serialize};

use crate::types::{Epoch, RowId};

/// Access frequency and recency for every row of a table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessStats {
    freq: Vec<f64>,
    last_access: Vec<Epoch>,
}

impl AccessStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `n` new rows with zero frequency.
    pub fn push_rows(&mut self, n: usize) {
        self.freq.resize(self.freq.len() + n, 0.0);
        self.last_access.resize(self.last_access.len() + n, 0);
    }

    /// Number of tracked rows.
    pub fn len(&self) -> usize {
        self.freq.len()
    }

    /// True if no rows are tracked.
    pub fn is_empty(&self) -> bool {
        self.freq.is_empty()
    }

    /// Record one access of `row` at `epoch`.
    #[inline]
    pub fn touch(&mut self, row: RowId, epoch: Epoch) {
        let i = row.as_usize();
        self.freq[i] += 1.0;
        self.last_access[i] = epoch;
    }

    /// Record accesses for many rows at once (a query result).
    pub fn touch_all(&mut self, rows: &[RowId], epoch: Epoch) {
        for &r in rows {
            self.touch(r, epoch);
        }
    }

    /// Access frequency of a row (decayed count).
    #[inline]
    pub fn frequency(&self, row: RowId) -> f64 {
        self.freq[row.as_usize()]
    }

    /// Epoch of the last access (0 if never accessed).
    pub fn last_access(&self, row: RowId) -> Epoch {
        self.last_access[row.as_usize()]
    }

    /// Multiply all frequencies by `factor` (exponential decay between
    /// batches). `factor` must be in `(0, 1]`.
    pub fn decay(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "decay factor {factor}");
        if factor == 1.0 {
            return;
        }
        for f in &mut self.freq {
            *f *= factor;
        }
    }

    /// Raw frequency vector (for vectorized policy scoring).
    pub fn frequencies(&self) -> &[f64] {
        &self.freq
    }

    /// Overwrite a row's statistics (used by vacuum when migrating state
    /// to the compacted table).
    pub fn restore(&mut self, row: RowId, frequency: f64, last_access: Epoch) {
        let i = row.as_usize();
        self.freq[i] = frequency;
        self.last_access[i] = last_access;
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.freq.capacity() * std::mem::size_of::<f64>()
            + self.last_access.capacity() * std::mem::size_of::<Epoch>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_accumulates() {
        let mut s = AccessStats::new();
        s.push_rows(5);
        s.touch(RowId(2), 1);
        s.touch(RowId(2), 3);
        s.touch_all(&[RowId(0), RowId(2)], 4);
        assert_eq!(s.frequency(RowId(2)), 3.0);
        assert_eq!(s.frequency(RowId(0)), 1.0);
        assert_eq!(s.frequency(RowId(1)), 0.0);
        assert_eq!(s.last_access(RowId(2)), 4);
        assert_eq!(s.last_access(RowId(1)), 0);
    }

    #[test]
    fn decay_scales() {
        let mut s = AccessStats::new();
        s.push_rows(2);
        s.touch(RowId(0), 1);
        s.touch(RowId(0), 1);
        s.decay(0.5);
        assert_eq!(s.frequency(RowId(0)), 1.0);
        s.decay(1.0); // no-op
        assert_eq!(s.frequency(RowId(0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn invalid_decay_rejected() {
        let mut s = AccessStats::new();
        s.decay(0.0);
    }

    #[test]
    fn grows_with_rows() {
        let mut s = AccessStats::new();
        assert!(s.is_empty());
        s.push_rows(3);
        s.push_rows(2);
        assert_eq!(s.len(), 5);
        assert_eq!(s.frequencies().len(), 5);
    }
}
