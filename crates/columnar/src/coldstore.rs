//! Cold storage for forgotten tuples.
//!
//! The paper's cost-effective option for forgotten data: "move forgotten
//! data to cheap slow cold-storage" (§1). Unlike classical hot/cold tiering
//! (anti-caching et al., §5), amnesia's cold data *never* appears in query
//! results — it is only reachable through an explicit recovery action,
//! which [`ColdStore::fetch`] models.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use amnesia_util::Result;

use crate::types::{RowId, Value};

/// Destination for forgotten tuples.
pub trait ColdStore: Send {
    /// Archive a tuple's values under its row id.
    fn archive(&mut self, row: RowId, values: &[Value]) -> Result<()>;

    /// Explicitly recover a tuple (the paper's "user takes the action and
    /// recovers … from cold storage explicitly"). `None` if never archived.
    fn fetch(&mut self, row: RowId) -> Result<Option<Vec<Value>>>;

    /// Whether a tuple has been archived.
    fn contains(&self, row: RowId) -> bool;

    /// Number of archived tuples.
    fn len(&self) -> usize;

    /// True when nothing is archived.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes consumed by the archive.
    fn bytes_used(&self) -> u64;

    /// Implementation name for reports.
    fn name(&self) -> &'static str;
}

/// In-memory cold store (tests / small simulations).
#[derive(Debug, Default)]
pub struct MemoryColdStore {
    rows: HashMap<RowId, Vec<Value>>,
    bytes: u64,
}

impl MemoryColdStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ColdStore for MemoryColdStore {
    fn archive(&mut self, row: RowId, values: &[Value]) -> Result<()> {
        self.bytes += std::mem::size_of_val(values) as u64;
        self.rows.insert(row, values.to_vec());
        Ok(())
    }

    fn fetch(&mut self, row: RowId) -> Result<Option<Vec<Value>>> {
        Ok(self.rows.get(&row).cloned())
    }

    fn contains(&self, row: RowId) -> bool {
        self.rows.contains_key(&row)
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn bytes_used(&self) -> u64 {
        self.bytes
    }

    fn name(&self) -> &'static str {
        "memory"
    }
}

/// File-backed cold store: append-only record log + in-memory offset map.
///
/// Record layout: `row_id u64 LE | arity u32 LE | values i64 LE ×arity`.
pub struct FileColdStore {
    writer: BufWriter<File>,
    reader: File,
    offsets: HashMap<RowId, (u64, u32)>,
    next_offset: u64,
}

impl std::fmt::Debug for FileColdStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileColdStore")
            .field("rows", &self.offsets.len())
            .field("bytes", &self.next_offset)
            .finish()
    }
}

impl FileColdStore {
    /// Create (truncating) a cold store at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let write_file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let reader = OpenOptions::new().read(true).open(path)?;
        Ok(Self {
            writer: BufWriter::new(write_file),
            reader,
            offsets: HashMap::new(),
            next_offset: 0,
        })
    }
}

impl ColdStore for FileColdStore {
    fn archive(&mut self, row: RowId, values: &[Value]) -> Result<()> {
        use bytes::BufMut;
        let mut record = bytes::BytesMut::with_capacity(12 + values.len() * 8);
        record.put_u64_le(row.0);
        record.put_u32_le(values.len() as u32);
        for &v in values {
            record.put_i64_le(v);
        }
        self.writer.write_all(&record)?;
        self.offsets
            .insert(row, (self.next_offset, values.len() as u32));
        self.next_offset += record.len() as u64;
        Ok(())
    }

    fn fetch(&mut self, row: RowId) -> Result<Option<Vec<Value>>> {
        let Some(&(offset, arity)) = self.offsets.get(&row) else {
            return Ok(None);
        };
        self.writer.flush()?;
        self.reader.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; 12];
        self.reader.read_exact(&mut header)?;
        let stored_row = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
        debug_assert_eq!(stored_row, row.0, "offset map corruption");
        let mut payload = vec![0u8; arity as usize * 8];
        self.reader.read_exact(&mut payload)?;
        Ok(Some(
            payload
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect(),
        ))
    }

    fn contains(&self, row: RowId) -> bool {
        self.offsets.contains_key(&row)
    }

    fn len(&self) -> usize {
        self.offsets.len()
    }

    fn bytes_used(&self) -> u64 {
        self.next_offset
    }

    fn name(&self) -> &'static str {
        "file"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn ColdStore) {
        assert!(store.is_empty());
        store.archive(RowId(10), &[1, 2, 3]).unwrap();
        store.archive(RowId(20), &[-7]).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.contains(RowId(10)));
        assert!(!store.contains(RowId(11)));
        assert_eq!(store.fetch(RowId(10)).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(store.fetch(RowId(20)).unwrap(), Some(vec![-7]));
        assert_eq!(store.fetch(RowId(99)).unwrap(), None);
        assert!(store.bytes_used() > 0);
    }

    #[test]
    fn memory_store_roundtrip() {
        let mut store = MemoryColdStore::new();
        exercise(&mut store);
        assert_eq!(store.name(), "memory");
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join("amnesia-coldstore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cold.log");
        let mut store = FileColdStore::create(&path).unwrap();
        exercise(&mut store);
        assert_eq!(store.name(), "file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_interleaved_write_read() {
        let dir = std::env::temp_dir().join("amnesia-coldstore-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cold2.log");
        let mut store = FileColdStore::create(&path).unwrap();
        for i in 0..100u64 {
            store.archive(RowId(i), &[i as i64 * 3]).unwrap();
            if i % 7 == 0 {
                // Read something archived earlier while writes continue.
                let got = store.fetch(RowId(i / 2)).unwrap();
                assert_eq!(got, Some(vec![(i / 2) as i64 * 3]));
            }
        }
        assert_eq!(store.len(), 100);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rearchive_overwrites_mapping() {
        let mut store = MemoryColdStore::new();
        store.archive(RowId(1), &[1]).unwrap();
        store.archive(RowId(1), &[2]).unwrap();
        assert_eq!(store.fetch(RowId(1)).unwrap(), Some(vec![2]));
        assert_eq!(store.len(), 1);
    }
}
