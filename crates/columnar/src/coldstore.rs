//! Cold storage for forgotten tuples.
//!
//! The paper's cost-effective option for forgotten data: "move forgotten
//! data to cheap slow cold-storage" (§1). Unlike classical hot/cold tiering
//! (anti-caching et al., §5), amnesia's cold data *never* appears in query
//! results — it is only reachable through an explicit recovery action,
//! which [`ColdStore::fetch`] models.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use amnesia_util::fixed::{le_i64, le_u32, le_u64};
use amnesia_util::{crc32, storage_err, Result};

use crate::types::{RowId, Value};

/// Destination for forgotten tuples.
pub trait ColdStore: Send {
    /// Archive a tuple's values under its row id.
    fn archive(&mut self, row: RowId, values: &[Value]) -> Result<()>;

    /// Explicitly recover a tuple (the paper's "user takes the action and
    /// recovers … from cold storage explicitly"). `None` if never archived.
    fn fetch(&mut self, row: RowId) -> Result<Option<Vec<Value>>>;

    /// Whether a tuple has been archived.
    fn contains(&self, row: RowId) -> bool;

    /// Number of archived tuples.
    fn len(&self) -> usize;

    /// True when nothing is archived.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes consumed by the archive.
    fn bytes_used(&self) -> u64;

    /// Implementation name for reports.
    fn name(&self) -> &'static str;
}

/// In-memory cold store (tests / small simulations).
#[derive(Debug, Default)]
pub struct MemoryColdStore {
    rows: HashMap<RowId, Vec<Value>>,
    bytes: u64,
}

impl MemoryColdStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ColdStore for MemoryColdStore {
    fn archive(&mut self, row: RowId, values: &[Value]) -> Result<()> {
        self.bytes += std::mem::size_of_val(values) as u64;
        self.rows.insert(row, values.to_vec());
        Ok(())
    }

    fn fetch(&mut self, row: RowId) -> Result<Option<Vec<Value>>> {
        Ok(self.rows.get(&row).cloned())
    }

    fn contains(&self, row: RowId) -> bool {
        self.rows.contains_key(&row)
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn bytes_used(&self) -> u64 {
        self.bytes
    }

    fn name(&self) -> &'static str {
        "memory"
    }
}

/// File-backed cold store: append-only record log + in-memory offset map.
///
/// Records use the WAL's length+CRC framing so bit rot in the (rarely
/// read, cheaply stored) archive is detected rather than silently served:
///
/// ```text
/// u32 frame_len LE | frame | u32 crc32(frame) LE
/// frame = row_id u64 LE | arity u32 LE | values i64 LE ×arity
/// ```
///
/// [`FileColdStore::open`] rebuilds the offset map by scanning frames and
/// tolerates a torn tail (a crash mid-archive) by truncating the file back
/// to the last whole record.
pub struct FileColdStore {
    writer: BufWriter<File>,
    reader: File,
    offsets: HashMap<RowId, (u64, u32)>,
    next_offset: u64,
}

/// `frame_len` prefix plus trailing CRC around each frame.
const FRAME_OVERHEAD: u64 = 8;

impl std::fmt::Debug for FileColdStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileColdStore")
            .field("rows", &self.offsets.len())
            .field("bytes", &self.next_offset)
            .finish()
    }
}

impl FileColdStore {
    /// Create (truncating) a cold store at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let write_file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let reader = OpenOptions::new().read(true).open(path)?;
        Ok(Self {
            writer: BufWriter::new(write_file),
            reader,
            offsets: HashMap::new(),
            next_offset: 0,
        })
    }

    /// Reopen an existing cold store, rebuilding the offset map from the
    /// record frames. A torn tail (partial last record after a crash) is
    /// cut back to the last whole record; later duplicates of a row id win,
    /// matching re-archive semantics.
    pub fn open(path: &Path) -> Result<Self> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Self::create(path),
            Err(e) => return Err(e.into()),
        };
        let mut offsets = HashMap::new();
        let mut pos = 0u64;
        // Every read below is checked (`le_*` returns `None` on a short
        // slice) and every mismatch breaks out as a torn tail — reopening
        // a damaged archive truncates, it never panics.
        loop {
            let rest = &bytes[pos as usize..];
            let Some(frame_len) = le_u32(rest).map(u64::from) else {
                break; // torn length prefix
            };
            if frame_len < 12 || (rest.len() as u64) < FRAME_OVERHEAD + frame_len {
                break; // torn or nonsense tail
            }
            let frame = &rest[4..4 + frame_len as usize];
            let Some(stored) = le_u32(&rest[4 + frame_len as usize..]) else {
                break; // torn checksum
            };
            if crc32(frame) != stored {
                break; // torn tail: partial flush of the frame body
            }
            let (Some(row), Some(arity)) = (le_u64(frame), le_u32(&frame[8..])) else {
                break; // unreachable given frame_len >= 12, but never panic
            };
            if frame_len != 12 + arity as u64 * 8 {
                break; // arity disagrees with the frame length: treat as torn
            }
            offsets.insert(RowId(row), (pos, arity));
            pos += FRAME_OVERHEAD + frame_len;
        }
        if pos < bytes.len() as u64 {
            // Cut the torn tail in place so appends resume on a clean edge.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(pos)?;
            f.sync_data()?;
        }
        let write_file = OpenOptions::new().append(true).open(path)?;
        let reader = OpenOptions::new().read(true).open(path)?;
        Ok(Self {
            writer: BufWriter::new(write_file),
            reader,
            offsets,
            next_offset: pos,
        })
    }
}

impl ColdStore for FileColdStore {
    fn archive(&mut self, row: RowId, values: &[Value]) -> Result<()> {
        use bytes::BufMut;
        let frame_len = 12 + values.len() * 8;
        let mut record = bytes::BytesMut::with_capacity(frame_len + 8);
        record.put_u32_le(frame_len as u32);
        record.put_u64_le(row.0);
        record.put_u32_le(values.len() as u32);
        for &v in values {
            record.put_i64_le(v);
        }
        let crc = crc32(&record[4..]);
        record.put_u32_le(crc);
        self.writer.write_all(&record)?;
        self.offsets
            .insert(row, (self.next_offset, values.len() as u32));
        self.next_offset += record.len() as u64;
        Ok(())
    }

    fn fetch(&mut self, row: RowId) -> Result<Option<Vec<Value>>> {
        let Some(&(offset, arity)) = self.offsets.get(&row) else {
            return Ok(None);
        };
        self.writer.flush()?;
        self.reader.seek(SeekFrom::Start(offset))?;
        let frame_len = 12 + arity as usize * 8;
        let mut record = vec![0u8; 4 + frame_len + 4];
        self.reader.read_exact(&mut record)?;
        let frame = &record[4..4 + frame_len];
        let corrupt = || storage_err!("cold store record for row {} is corrupt", row.0);
        let stored = le_u32(&record[4 + frame_len..]).ok_or_else(corrupt)?;
        if crc32(frame) != stored {
            return Err(storage_err!(
                "cold store record for row {} failed CRC validation",
                row.0
            ));
        }
        let stored_row = le_u64(frame).ok_or_else(corrupt)?;
        debug_assert_eq!(stored_row, row.0, "offset map corruption");
        let values: Option<Vec<Value>> = frame[12..].chunks_exact(8).map(le_i64).collect();
        Ok(Some(values.ok_or_else(corrupt)?))
    }

    fn contains(&self, row: RowId) -> bool {
        self.offsets.contains_key(&row)
    }

    fn len(&self) -> usize {
        self.offsets.len()
    }

    fn bytes_used(&self) -> u64 {
        self.next_offset
    }

    fn name(&self) -> &'static str {
        "file"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn ColdStore) {
        assert!(store.is_empty());
        store.archive(RowId(10), &[1, 2, 3]).unwrap();
        store.archive(RowId(20), &[-7]).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.contains(RowId(10)));
        assert!(!store.contains(RowId(11)));
        assert_eq!(store.fetch(RowId(10)).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(store.fetch(RowId(20)).unwrap(), Some(vec![-7]));
        assert_eq!(store.fetch(RowId(99)).unwrap(), None);
        assert!(store.bytes_used() > 0);
    }

    #[test]
    fn memory_store_roundtrip() {
        let mut store = MemoryColdStore::new();
        exercise(&mut store);
        assert_eq!(store.name(), "memory");
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join("amnesia-coldstore-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cold.log");
        let mut store = FileColdStore::create(&path).unwrap();
        exercise(&mut store);
        assert_eq!(store.name(), "file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_interleaved_write_read() {
        let dir = std::env::temp_dir().join("amnesia-coldstore-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cold2.log");
        let mut store = FileColdStore::create(&path).unwrap();
        for i in 0..100u64 {
            store.archive(RowId(i), &[i as i64 * 3]).unwrap();
            if i % 7 == 0 {
                // Read something archived earlier while writes continue.
                let got = store.fetch(RowId(i / 2)).unwrap();
                assert_eq!(got, Some(vec![(i / 2) as i64 * 3]));
            }
        }
        assert_eq!(store.len(), 100);
        std::fs::remove_file(&path).ok();
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("amnesia-coldstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn file_store_reopens_with_full_offset_map() {
        let path = tmp_path("reopen.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileColdStore::create(&path).unwrap();
            for i in 0..50u64 {
                store.archive(RowId(i), &[i as i64, -(i as i64)]).unwrap();
            }
            store.archive(RowId(7), &[999]).unwrap(); // re-archive: later wins
            store.writer.flush().unwrap();
        }
        let mut store = FileColdStore::open(&path).unwrap();
        assert_eq!(store.len(), 50);
        assert_eq!(store.fetch(RowId(3)).unwrap(), Some(vec![3, -3]));
        assert_eq!(store.fetch(RowId(7)).unwrap(), Some(vec![999]));
        // Appends continue after reopen.
        store.archive(RowId(100), &[1]).unwrap();
        assert_eq!(store.fetch(RowId(100)).unwrap(), Some(vec![1]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_tolerates_torn_tail_on_reopen() {
        let path = tmp_path("torn.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileColdStore::create(&path).unwrap();
            store.archive(RowId(1), &[11, 12]).unwrap();
            store.archive(RowId(2), &[21]).unwrap();
            store.writer.flush().unwrap();
        }
        let whole = std::fs::metadata(&path).unwrap().len();
        // Every cut strictly inside the second record loses only that record.
        let second_start = 8 + (12 + 16) as u64;
        for cut in second_start + 1..whole {
            std::fs::write(&path, {
                let mut full = std::fs::read(&path).unwrap();
                full.truncate(cut as usize);
                full
            })
            .unwrap();
            let mut store = FileColdStore::open(&path).unwrap();
            assert_eq!(store.len(), 1, "cut at {cut}");
            assert_eq!(store.fetch(RowId(1)).unwrap(), Some(vec![11, 12]));
            assert!(!store.contains(RowId(2)));
            // The torn tail was cut: a fresh archive round-trips.
            store.archive(RowId(2), &[22]).unwrap();
            assert_eq!(store.fetch(RowId(2)).unwrap(), Some(vec![22]));
            // Restore the full image for the next iteration.
            drop(store);
            let mut store = FileColdStore::create(&path).unwrap();
            store.archive(RowId(1), &[11, 12]).unwrap();
            store.archive(RowId(2), &[21]).unwrap();
            store.writer.flush().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fetch_detects_bit_rot() {
        let path = tmp_path("rot.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileColdStore::create(&path).unwrap();
            store.archive(RowId(5), &[0x1122_3344]).unwrap();
            store.writer.flush().unwrap();
        }
        // Flip a bit in the payload on disk, then fetch through a reopened
        // store that still trusts its (now stale) offset map.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0x40; // inside the value, not the CRC
        let mut store = FileColdStore::open(&path).unwrap();
        assert!(store.contains(RowId(5)));
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.fetch(RowId(5)).is_err(), "bit rot must not be served");
        std::fs::remove_file(&path).ok();
    }

    /// Append a hand-framed record with an arbitrary `arity` field and a
    /// *valid* CRC, so corruption tests can target exactly one check.
    fn append_raw(path: &std::path::Path, frame_len: u32, row: u64, arity: u32, vals: &[i64]) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&row.to_le_bytes());
        frame.extend_from_slice(&arity.to_le_bytes());
        for v in vals {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        let mut rec = frame_len.to_le_bytes().to_vec();
        rec.extend_from_slice(&frame);
        rec.extend_from_slice(&crc32(&frame).to_le_bytes());
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(path).unwrap();
        f.write_all(&rec).unwrap();
    }

    #[test]
    fn open_survives_nonsense_frame_len() {
        // Rule-2 regression for the `frame_len` read in `open`: a frame
        // length below the 12-byte header minimum is torn-tail, not a
        // panic, and the valid prefix stays readable.
        let path = tmp_path("badlen.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileColdStore::create(&path).unwrap();
            store.archive(RowId(1), &[7]).unwrap();
            store.writer.flush().unwrap();
        }
        append_raw(&path, 3, 2, 0, &[]);
        let mut store = FileColdStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.fetch(RowId(1)).unwrap(), Some(vec![7]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_survives_arity_frame_len_mismatch() {
        // Rule-2 regression for the `row`/`arity` reads in `open`: a
        // record whose arity disagrees with its frame length (CRC valid,
        // so only the structural check can catch it) is cut, not served.
        let path = tmp_path("badarity.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileColdStore::create(&path).unwrap();
            store.archive(RowId(1), &[7]).unwrap();
            store.writer.flush().unwrap();
        }
        append_raw(&path, 12 + 8, 2, 5, &[42]); // claims 5 values, holds 1
        let store = FileColdStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert!(!store.contains(RowId(2)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_survives_torn_checksum() {
        // Rule-2 regression for the frame/CRC slicing in `open`: a frame
        // whose length field promises more than the file holds (the CRC
        // trailer would sit past EOF) is cut at the length guard before
        // any slice is taken.
        let path = tmp_path("tornsum.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileColdStore::create(&path).unwrap();
            store.archive(RowId(1), &[7]).unwrap();
            store.writer.flush().unwrap();
        }
        // frame_len says 20 bytes of frame follow, but only 12 + a 1-byte
        // stump do: the CRC read runs off the end of the file.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&20u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 13]);
        std::fs::write(&path, &bytes).unwrap();
        let store = FileColdStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fetch_errors_on_truncated_file() {
        // Rule-2 regression for `fetch`'s framed reads: a file truncated
        // under a live offset map surfaces as `Err`, never a panic.
        let path = tmp_path("shrunk.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileColdStore::create(&path).unwrap();
            store.archive(RowId(5), &[1, 2, 3]).unwrap();
            store.writer.flush().unwrap();
        }
        let mut store = FileColdStore::open(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        assert!(
            store.fetch(RowId(5)).is_err(),
            "truncated record must be an Err, not a panic"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rearchive_overwrites_mapping() {
        let mut store = MemoryColdStore::new();
        store.archive(RowId(1), &[1]).unwrap();
        store.archive(RowId(1), &[2]).unwrap();
        assert_eq!(store.fetch(RowId(1)).unwrap(), Some(vec![2]));
        assert_eq!(store.len(), 1);
    }
}
