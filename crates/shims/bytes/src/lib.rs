//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: an immutable, cheaply
//! cloneable [`Bytes`] buffer, a growable [`BytesMut`] builder, and the
//! little-endian `put_*` writers of the [`BufMut`] trait. Backed by plain
//! `Vec<u8>`/`Arc<[u8]>` — no vtables, no pools — which is plenty for the
//! compression codecs and the persistence encoders here.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian writers over a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_writers() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(0x0102);
        b.put_u32_le(0x03040506);
        b.put_u64_le(0x0708090a0b0c0d0e);
        b.put_i64_le(-1);
        b.put_f64_le(1.5);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 8 + 8 + 3);
        assert_eq!(frozen[0], 7);
        assert_eq!(&frozen[1..3], &[0x02, 0x01]);
    }

    #[test]
    fn bytes_semantics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.as_ref(), &[1, 2, 3]);
        assert_eq!(Bytes::copy_from_slice(&[1, 2, 3]), b);
        assert!(Bytes::new().is_empty());
    }
}
