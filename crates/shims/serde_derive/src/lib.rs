//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The shim's traits are blanket-implemented in the `serde` facade crate,
//! so the derives have nothing to emit; they exist so `#[derive(Serialize,
//! Deserialize)]` and `#[serde(...)]` helper attributes parse.

use proc_macro::TokenStream;

/// Expands to nothing: `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
