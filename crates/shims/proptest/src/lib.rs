//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses, with
//! deterministic pseudo-random generation and **no shrinking**: failures
//! reproduce exactly (the RNG is seeded from the test name), they just
//! are not minimized. Supported surface:
//!
//! * [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::boxed`],
//! * numeric range strategies (`0usize..60`, `0.0f64..1.2`, inclusive
//!   variants), [`any`], [`Just`], tuple strategies up to arity 8,
//! * regex-lite string strategies (`"[a-z][a-z0-9_]{0,6}"`: literals,
//!   character classes, `{m,n}`/`{n}`/`?`/`*`/`+` quantifiers),
//! * [`collection::vec`] and [`option::of`],
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros, and [`ProptestConfig::with_cases`].

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Number-of-cases configuration (the only knob the shim honors).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic splitmix64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// RNG seeded from a test name (stable across runs and platforms).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test-data purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<V> {
    inner: std::rc::Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Uniform union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted union over `arms`; panics if empty or all-zero weight.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Self { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut k = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            if k < *w as u64 {
                return arm.generate(rng);
            }
            k -= *w as u64;
        }
        unreachable!("weight bookkeeping")
    }
}

/// Full-domain strategy for primitives, via [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy type returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly symmetric around zero, spanning many magnitudes.
        let mag = rng.f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            // The macro metavars double as local binding names, and they
            // are single capital letters (A, B, …) by construction.
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------
// Regex-lite string strategies: `"[a-z][a-z0-9_]{0,6}"`.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                // Collect the raw class body, then fold `x-y` runs into
                // ranges and everything else into singletons.
                let mut body = Vec::new();
                for d in chars.by_ref() {
                    if d == ']' {
                        break;
                    }
                    body.push(d);
                }
                let mut ranges = Vec::new();
                let mut i = 0;
                while i < body.len() {
                    if i + 2 < body.len() && body[i + 1] == '-' {
                        ranges.push((body[i], body[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((body[i], body[i]));
                        i += 1;
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().expect("escape target")),
            c => Atom::Literal(c),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Parse on every call: patterns are tiny and tests are not perf
        // sensitive.
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let reps = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..reps {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                            .sum();
                        let mut k = rng.below(total);
                        for &(lo, hi) in ranges {
                            let span = (hi as u64) - (lo as u64) + 1;
                            if k < span {
                                out.push(char::from_u32(lo as u32 + k as u32).expect("class char"));
                                break;
                            }
                            k -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a size specification for [`vec()`].
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy type returned by [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies.

    use super::{Strategy, TestRng};

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy type returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Choice among strategies yielding the same value type; arms are
/// uniform (`strat, strat`) or weighted (`3 => strat, 1 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<(u32, $crate::BoxedStrategy<_>)> =
            vec![$(($weight, $crate::Strategy::boxed($arm))),+];
        $crate::Union::weighted(arms)
    }};
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<$crate::BoxedStrategy<_>> =
            vec![$($crate::Strategy::boxed($arm)),+];
        $crate::Union::new(arms)
    }};
}

/// Property assertion (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (panics like `assert_eq!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular test running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let __strategies = ($($strat,)+);
                for __case in 0..config.cases {
                    let _ = __case;
                    let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10usize..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..1.5).generate(&mut rng);
            assert!((0.5..1.5).contains(&f));
            let i = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn regex_lite_generates_matching_strings() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            for c in cs {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_',
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(1i32), (10i32..20).prop_map(|v| v * 2),];
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn collections_and_options() {
        let mut rng = TestRng::new(4);
        let v = collection::vec(0u8..10, 5usize).generate(&mut rng);
        assert_eq!(v.len(), 5);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..100 {
            match option::of(0u8..10).generate(&mut rng) {
                None => saw_none = true,
                Some(x) => {
                    assert!(x < 10);
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(xs in collection::vec(0i64..100, 0..20), flag in any::<bool>()) {
            prop_assert!(xs.len() < 20);
            let _ = flag;
            prop_assert_eq!(xs.iter().filter(|&&x| x < 100).count(), xs.len());
        }
    }
}
