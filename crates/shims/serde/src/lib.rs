//! Offline stand-in for the `serde` facade.
//!
//! The workspace builds in environments with no crates.io access, so the
//! real `serde` cannot be fetched. Nothing in the repository actually
//! serializes through serde (persistence uses its own binary format in
//! `amnesia-columnar::persist`); the derives exist so types *could* be
//! wired to a wire format later. This shim keeps the trait surface and the
//! `#[derive(Serialize, Deserialize)]` attribute compiling:
//!
//! * [`Serialize`] is blanket-implemented for every type.
//! * [`Deserialize`] is blanket-implemented for every `Default` type.
//! * The derive macros (re-exported from `serde_derive`) expand to nothing
//!   and swallow `#[serde(...)]` helper attributes.
//!
//! No concrete [`Serializer`]/[`Deserializer`] exists, so the bodies here
//! can never run; they only have to typecheck.

pub use serde_derive::{Deserialize, Serialize};

/// Output sink for serialization (shape-compatible with serde's trait).
pub trait Serializer: Sized {
    /// Success value returned by the serializer.
    type Ok;
    /// Error type of the serializer.
    type Error;

    /// Serialize an opaque value (the shim collapses every data shape to
    /// this one entry point).
    fn serialize_opaque(self) -> Result<Self::Ok, Self::Error>;
}

/// Input source for deserialization (shape-compatible with serde's trait).
pub trait Deserializer<'de>: Sized {
    /// Error type of the deserializer.
    type Error;
}

/// A type that can be serialized. Blanket-implemented for everything.
pub trait Serialize {
    /// Serialize `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: ?Sized> Serialize for T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_opaque()
    }
}

/// A type that can be deserialized. Blanket-implemented for every
/// `Default` type (sufficient for the shim: no deserializer exists to
/// provide real data).
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de, T: Default> Deserialize<'de> for T {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Ok(T::default())
    }
}
