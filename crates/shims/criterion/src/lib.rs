//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the subset of the
//! criterion API the workspace's benches use: [`Criterion`] with
//! configuration builders, [`BenchmarkGroup`]s, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. No statistics beyond
//! median-of-samples, no plots, no baselines — it measures, prints one
//! line per benchmark, and exits. Results are for relative comparison
//! within one run, which is what the repo's before/after kernels need.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// CLI-argument configuration (accepted and ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(self, name, None, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Measurement budget for benches in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &name, self.throughput, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: Display, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &name, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Finish the group (purely cosmetic in the shim).
    pub fn finish(&mut self) {}
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, storing the median over the configured samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples.push(elapsed / self.iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn run_bench(
    config: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration pass: how long does one iteration take?
    let mut calib = Bencher {
        ns_per_iter: 0.0,
        iters_per_sample: 1,
        sample_size: 2,
    };
    f(&mut calib);
    let one_iter_ns = calib.ns_per_iter.max(1.0);

    // Warm-up.
    let warm_iters = (config.warm_up_time.as_nanos() as f64 / one_iter_ns).ceil() as u64;
    let mut warm = Bencher {
        ns_per_iter: 0.0,
        iters_per_sample: warm_iters.clamp(1, 1_000_000),
        sample_size: 1,
    };
    f(&mut warm);

    // Measurement: split the budget into `sample_size` samples.
    let budget_ns = config.measurement_time.as_nanos() as f64;
    let per_sample = budget_ns / config.sample_size as f64;
    let iters = (per_sample / one_iter_ns).ceil() as u64;
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        iters_per_sample: iters.clamp(1, 10_000_000),
        sample_size: config.sample_size,
    };
    f(&mut bencher);

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "  thrpt: {:>11} elem/s",
                human(n as f64 / (bencher.ns_per_iter / 1e9))
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  thrpt: {:>11} B/s",
                human(n as f64 / (bencher.ns_per_iter / 1e9))
            )
        }
        None => String::new(),
    };
    println!(
        "{name:<55} time: {:>12}/iter{rate}",
        human_ns(bencher.ns_per_iter)
    );
    append_json_record(name, &bencher, throughput);
}

/// Environment variable naming a file to append one JSON record per
/// benchmark to (JSON-lines). CI's bench-smoke job points this at a
/// `BENCH_*.json` artifact so the perf trajectory accumulates across
/// runs; unset means no file output.
pub const BENCH_JSON_ENV: &str = "AMNESIA_BENCH_JSON";

fn append_json_record(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    use std::io::Write;
    let Ok(path) = std::env::var(BENCH_JSON_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let elements = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => n,
        None => 0,
    };
    // Bench names are ASCII identifiers with '/'; escape the one JSON
    // metacharacter that could plausibly appear.
    let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
    let record = format!(
        "{{\"name\":\"{escaped}\",\"median_ns_per_iter\":{:.1},\"samples\":{},\"iters_per_sample\":{},\"throughput_per_iter\":{elements}}}\n",
        bencher.ns_per_iter, bencher.sample_size, bencher.iters_per_sample
    );
    let write = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    if let Err(e) = write {
        eprintln!("warning: could not append bench record to {path}: {e}");
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human(v: f64) -> String {
    if v < 1e3 {
        format!("{v:.1}")
    } else if v < 1e6 {
        format!("{:.2}K", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2}M", v / 1e6)
    } else {
        format!("{:.2}G", v / 1e9)
    }
}

/// Define a benchmark group: either `criterion_group!(name, targets...)`
/// or the long form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_shape() {
        // The record writer is exercised end-to-end by CI's bench-smoke;
        // here, pin the escaping rule.
        let b = Bencher {
            ns_per_iter: 12.5,
            iters_per_sample: 3,
            sample_size: 2,
        };
        // No env var set: must be a no-op (nothing to assert beyond "no
        // panic, no file").
        append_json_record("grp/\"quoted\"", &b, Some(Throughput::Elements(10)));
    }

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
    }
}
