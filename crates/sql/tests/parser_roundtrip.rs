//! Property test: any AST the grammar can express renders to SQL that
//! parses back to the identical AST (spans excluded from equality).

use amnesia_sql::ast::{
    AggFunc, CmpOp, ColumnRef, JoinClause, OrderBy, Predicate, Select, SelectItem, SortOrder,
    Statement, TableRef,
};
use amnesia_sql::error::Span;
use amnesia_sql::parse;
use proptest::prelude::*;

/// Identifiers that can never collide with keywords.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("c_{s}"))
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident()).prop_map(|(table, column)| ColumnRef {
        table,
        column,
        span: Span::default(),
    })
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        column_ref().prop_map(SelectItem::Column),
        (agg_func(), column_ref(), proptest::option::of(ident())).prop_map(|(func, arg, alias)| {
            SelectItem::Aggregate {
                func,
                arg: Some(arg),
                alias,
            }
        }),
        proptest::option::of(ident()).prop_map(|alias| SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: None,
            alias,
        }),
    ]
}

fn items() -> impl Strategy<Value = Vec<SelectItem>> {
    prop_oneof![
        Just(vec![SelectItem::Wildcard]),
        proptest::collection::vec(select_item(), 1..4),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Neq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (column_ref(), cmp_op(), any::<i32>()).prop_map(|(col, op, v)| Predicate::Compare {
            col,
            op,
            value: v as i64,
        }),
        (column_ref(), any::<i32>(), any::<i32>()).prop_map(|(col, lo, hi)| {
            Predicate::Between {
                col,
                lo: lo as i64,
                hi: hi as i64,
            }
        }),
    ]
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), proptest::option::of(ident())).prop_map(|(name, alias)| TableRef {
        name,
        alias,
        span: Span::default(),
    })
}

fn join_clause() -> impl Strategy<Value = JoinClause> {
    (table_ref(), column_ref(), column_ref()).prop_map(|(table, left, right)| JoinClause {
        table,
        left,
        right,
    })
}

fn order_by() -> impl Strategy<Value = OrderBy> {
    (
        column_ref(),
        prop_oneof![Just(SortOrder::Asc), Just(SortOrder::Desc)],
    )
        .prop_map(|(col, order)| OrderBy { col, order })
}

fn select() -> impl Strategy<Value = Select> {
    (
        items(),
        table_ref(),
        proptest::option::of(join_clause()),
        proptest::collection::vec(predicate(), 0..4),
        proptest::option::of(column_ref()),
        proptest::option::of(order_by()),
        proptest::option::of(0u64..10_000),
    )
        .prop_map(
            |(items, from, join, predicates, group_by, order_by, limit)| Select {
                items,
                from,
                join,
                predicates,
                group_by,
                order_by,
                limit,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_is_identity(s in select()) {
        let rendered = Statement::Select(s.clone()).to_string();
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("`{rendered}` failed to reparse: {e}"));
        prop_assert_eq!(Statement::Select(s), reparsed, "{}", rendered);
    }

    #[test]
    fn explain_round_trips_too(s in select()) {
        let rendered = Statement::Explain(s.clone()).to_string();
        let reparsed = parse(&rendered).unwrap();
        prop_assert_eq!(Statement::Explain(s), reparsed);
    }

    #[test]
    fn renders_are_stable_fixpoints(s in select()) {
        let once = Statement::Select(s).to_string();
        let twice = parse(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn fuzzish_inputs_never_panic() {
    // The parser must reject garbage gracefully (no panics/overflows).
    let inputs = [
        "",
        ";",
        "SELECT",
        "SELECT FROM",
        "SELECT * FROM",
        "SELECT * FROM t WHERE",
        "SELECT * FROM t WHERE a BETWEEN",
        "SELECT * FROM t GROUP",
        "SELECT * FROM t ORDER LIMIT",
        "SELECT ((( FROM t",
        "SELECT COUNT( FROM t",
        "JOIN JOIN JOIN",
        "SELECT * FROM t LIMIT 99999999999999999999",
        "SELECT * FROM t WHERE a = b",
        "\u{1F980} SELECT * FROM t",
    ];
    for input in inputs {
        let _ = parse(input); // must return, not panic
    }
}
