//! Abstract syntax for the amnesia SQL subset.
//!
//! The grammar covers the paper's §2.2 workload subspace — SELECT-PROJECT-
//! JOIN with range predicates and aggregates — plus GROUP BY / ORDER BY /
//! LIMIT, which the examples and benchmarks use. Every node renders back
//! to canonical SQL via [`std::fmt::Display`]; the parser round-trips
//! that rendering (property-tested).

use std::fmt;

use crate::error::Span;

/// A column reference, optionally table-qualified.
///
/// Equality ignores the span: two references to the same column are the
/// same reference wherever they were written.
#[derive(Debug, Clone, Eq)]
pub struct ColumnRef {
    /// Table name or alias (`None` = unqualified).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
    /// Source location.
    pub span: Span,
}

impl PartialEq for ColumnRef {
    fn eq(&self, other: &Self) -> bool {
        self.table == other.table && self.column == other.column
    }
}

impl ColumnRef {
    /// Unqualified reference (tests / builders).
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
            span: Span::default(),
        }
    }

    /// Qualified reference (tests / builders).
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
            span: Span::default(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Aggregate functions in projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(*) or COUNT(col).
    Count,
    /// SUM(col).
    Sum,
    /// AVG(col).
    Avg,
    /// MIN(col).
    Min,
    /// MAX(col).
    Max,
}

impl AggFunc {
    /// Canonical keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Plain column.
    Column(ColumnRef),
    /// Aggregate over a column (`None` = `COUNT(*)`).
    Aggregate {
        /// The function.
        func: AggFunc,
        /// Input column (`None` only for COUNT).
        arg: Option<ColumnRef>,
        /// Optional output alias.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate { func, arg, alias } => {
                match arg {
                    Some(c) => write!(f, "{}({c})", func.as_str())?,
                    None => write!(f, "{}(*)", func.as_str())?,
                }
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Canonical rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Apply to integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Neq => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `col op literal`.
    Compare {
        /// Left-hand column.
        col: ColumnRef,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: i64,
    },
    /// `col BETWEEN lo AND hi` (inclusive both ends, per SQL).
    Between {
        /// Tested column.
        col: ColumnRef,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl Predicate {
    /// The column the predicate constrains.
    pub fn column(&self) -> &ColumnRef {
        match self {
            Predicate::Compare { col, .. } | Predicate::Between { col, .. } => col,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { col, op, value } => {
                write!(f, "{col} {} {value}", op.as_str())
            }
            Predicate::Between { col, lo, hi } => {
                write!(f, "{col} BETWEEN {lo} AND {hi}")
            }
        }
    }
}

/// A table in FROM/JOIN, with an optional alias.
///
/// Equality ignores the span, like [`ColumnRef`].
#[derive(Debug, Clone, Eq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Alias (`FROM sales AS s`).
    pub alias: Option<String>,
    /// Source location.
    pub span: Span,
}

impl PartialEq for TableRef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.alias == other.alias
    }
}

impl TableRef {
    /// The name queries refer to this table by.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// `JOIN table ON left = right`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// Joined table.
    pub table: TableRef,
    /// Equi-join left side.
    pub left: ColumnRef,
    /// Equi-join right side.
    pub right: ColumnRef,
}

impl fmt::Display for JoinClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JOIN {} ON {} = {}", self.table, self.left, self.right)
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (SQL default).
    Asc,
    /// Descending.
    Desc,
}

/// `ORDER BY col [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderBy {
    /// Sort key (resolved against projection outputs first, then inputs).
    pub col: ColumnRef,
    /// Direction.
    pub order: SortOrder,
}

impl fmt::Display for OrderBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.col)?;
        if self.order == SortOrder::Desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// A full SELECT statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Select {
    /// Projection list (never empty).
    pub items: Vec<SelectItem>,
    /// Base table.
    pub from: TableRef,
    /// Optional equi-join.
    pub join: Option<JoinClause>,
    /// WHERE conjuncts (ANDed).
    pub predicates: Vec<Predicate>,
    /// Optional GROUP BY column.
    pub group_by: Option<ColumnRef>,
    /// Optional ORDER BY.
    pub order_by: Option<OrderBy>,
    /// Optional LIMIT.
    pub limit: Option<u64>,
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(j) = &self.join {
            write!(f, " {j}")?;
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if let Some(g) = &self.group_by {
            write!(f, " GROUP BY {g}")?;
        }
        if let Some(o) = &self.order_by {
            write!(f, " ORDER BY {o}")?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

/// A statement: a query or an EXPLAIN of one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// Run the query.
    Select(Select),
    /// Show the plan instead of running it.
    Explain(Select),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Select {
        Select {
            items: vec![
                SelectItem::Column(ColumnRef::qualified("s", "region")),
                SelectItem::Aggregate {
                    func: AggFunc::Avg,
                    arg: Some(ColumnRef::bare("amount")),
                    alias: Some("mean".into()),
                },
            ],
            from: TableRef {
                name: "sales".into(),
                alias: Some("s".into()),
                span: Span::default(),
            },
            join: None,
            predicates: vec![
                Predicate::Between {
                    col: ColumnRef::bare("amount"),
                    lo: 10,
                    hi: 100,
                },
                Predicate::Compare {
                    col: ColumnRef::bare("region"),
                    op: CmpOp::Neq,
                    value: 3,
                },
            ],
            group_by: Some(ColumnRef::qualified("s", "region")),
            order_by: Some(OrderBy {
                col: ColumnRef::bare("mean"),
                order: SortOrder::Desc,
            }),
            limit: Some(5),
        }
    }

    #[test]
    fn display_renders_canonical_sql() {
        assert_eq!(
            sample().to_string(),
            "SELECT s.region, AVG(amount) AS mean FROM sales AS s \
             WHERE amount BETWEEN 10 AND 100 AND region <> 3 \
             GROUP BY s.region ORDER BY mean DESC LIMIT 5"
        );
    }

    #[test]
    fn explain_prefixes() {
        let stmt = Statement::Explain(sample());
        assert!(stmt.to_string().starts_with("EXPLAIN SELECT"));
    }

    #[test]
    fn cmp_op_eval_table() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Neq.eval(3, 4));
        assert!(CmpOp::Lt.eval(3, 4));
        assert!(CmpOp::Le.eval(4, 4));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Ge.eval(4, 4));
        assert!(!CmpOp::Lt.eval(4, 4));
    }

    #[test]
    fn table_binding_prefers_alias() {
        let t = TableRef {
            name: "sales".into(),
            alias: Some("s".into()),
            span: Span::default(),
        };
        assert_eq!(t.binding(), "s");
        let t2 = TableRef {
            name: "sales".into(),
            alias: None,
            span: Span::default(),
        };
        assert_eq!(t2.binding(), "sales");
    }
}
