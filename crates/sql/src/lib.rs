//! SQL front-end for the amnesia DBMS skeleton.
//!
//! The paper frames its workload as a carved-out subspace of
//! SELECT-PROJECT-JOIN queries (§2.2). This crate gives that subspace a
//! concrete surface: a hand-written lexer and recursive-descent parser, a
//! binder with position-tagged errors, and an executor that evaluates
//! statements against [`amnesia_columnar::Database`] tables — seeing only
//! *active* tuples, because in an amnesiac store forgotten data "will
//! never show up in query results" (§1).
//!
//! Supported grammar: `SELECT` projections (columns, `COUNT/SUM/AVG/MIN/
//! MAX`, aliases, `*`), `FROM` with aliases, one `INNER JOIN … ON` equi-
//! join, `WHERE` conjunctions of comparisons and `BETWEEN`, `GROUP BY`,
//! `ORDER BY … [ASC|DESC]`, `LIMIT`, and `EXPLAIN`.
//!
//! ```
//! use amnesia_columnar::{Database, Schema};
//! use amnesia_sql::{run, QueryOutcome};
//!
//! let mut db = Database::new();
//! let sales = db.add_table("sales", Schema::new(vec!["region", "amount"]));
//! for (r, a) in [(1i64, 10i64), (1, 20), (2, 30)] {
//!     db.table_mut(sales).insert(&[r, a], 0).unwrap();
//! }
//! let out = run(&db, "SELECT region, SUM(amount) AS total FROM sales \
//!                     GROUP BY region ORDER BY total DESC").unwrap();
//! match out {
//!     QueryOutcome::Rows(rs) => {
//!         assert_eq!(rs.rows.len(), 2);
//!         assert_eq!(rs.rows[0][1].as_int(), Some(30));
//!     }
//!     QueryOutcome::Plan(_) => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod token;

pub use ast::{Select, Statement};
pub use error::{Span, SqlError, SqlResult};
pub use exec::{execute, run, Datum, QueryOutcome, QueryStats, ResultSet};
pub use parser::parse;
pub use plan::{bind, BoundQuery, Catalog};
