//! SQL front-end for the amnesia DBMS skeleton.
//!
//! The paper frames its workload as a carved-out subspace of
//! SELECT-PROJECT-JOIN queries (§2.2). This crate gives that subspace a
//! concrete surface: a hand-written lexer and recursive-descent parser,
//! a binder with position-tagged errors, and a thin driver that *lowers*
//! every statement onto the engine's physical-plan layer — seeing only
//! *active* tuples, because in an amnesiac store forgotten data "will
//! never show up in query results" (§1).
//!
//! # One execution API
//!
//! SQL does not interpret queries; it lowers them:
//!
//! ```text
//! SQL text ─parse─► Select ─bind─► BoundQuery ─lower─► PhysicalPlan
//!                                                        │ Executor::execute_plan
//!                                                        ▼
//!                                            rows + unified ExecStats
//! ```
//!
//! The [`amnesia_engine::PhysicalPlan`] runs the same tier-aware
//! vectorized operators as the workload driver and the benches: WHERE
//! conjunctions evaluate as 64-bit selection masks (fused over
//! compressed blocks, pruned by cached block metadata), joins build and
//! probe in compressed space, `GROUP BY` runs the vectorized hash
//! group-by — so a multi-predicate grouped query over a fully-frozen
//! table completes with zero block decodes. `EXPLAIN` prints that
//! physical tree with its access-path tags:
//!
//! ```text
//! Limit 3
//! └─ Sort mean DESC
//!    └─ GroupBy c.region [vectorized hash, compressed-block fold]
//!       └─ Project c.region, mean
//!          └─ HashJoin c.id = o.customer_id [hash build/probe]
//!             ├─ Scan customers AS c [active-only] plan=full-scan
//!             └─ Scan orders AS o [active-only] filter: o.amount > 100
//!                [64-bit selection masks] plan=full-scan
//! ```
//!
//! Supported grammar: `SELECT` projections (columns, `COUNT/SUM/AVG/MIN/
//! MAX`, aliases, `*`), `FROM` with aliases, one `INNER JOIN … ON` equi-
//! join, `WHERE` conjunctions of comparisons and `BETWEEN`, `GROUP BY`,
//! `ORDER BY … [ASC|DESC]`, `LIMIT`, and `EXPLAIN`.
//!
//! ```
//! use amnesia_columnar::{Database, Schema};
//! use amnesia_sql::{run, QueryOutcome};
//!
//! let mut db = Database::new();
//! let sales = db.add_table("sales", Schema::new(vec!["region", "amount"]));
//! for (r, a) in [(1i64, 10i64), (1, 20), (2, 30)] {
//!     db.table_mut(sales).insert(&[r, a], 0).unwrap();
//! }
//! let out = run(&db, "SELECT region, SUM(amount) AS total FROM sales \
//!                     GROUP BY region ORDER BY total DESC").unwrap();
//! match out {
//!     QueryOutcome::Rows(rs) => {
//!         assert_eq!(rs.rows.len(), 2);
//!         assert_eq!(rs.rows[0][1].as_int(), Some(30));
//!     }
//!     QueryOutcome::Plan(_) => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod token;

pub use amnesia_engine::ExecStats;
pub use ast::{Select, Statement};
pub use error::{Span, SqlError, SqlResult};
pub use exec::{execute, execute_with, run, run_with, Datum, QueryOutcome, ResultSet};
pub use parser::parse;
pub use plan::{bind, BoundQuery, Catalog};
