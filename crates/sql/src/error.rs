//! Position-tagged SQL errors.

use std::fmt;

/// Byte span `[start, end)` into the original statement text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the offending fragment.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// New span.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// Single-position span.
    pub fn at(pos: usize) -> Self {
        Self {
            start: pos,
            end: pos + 1,
        }
    }

    /// Smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// What went wrong, and where in the statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable description.
    pub message: String,
    /// Location in the statement text.
    pub span: Span,
}

impl SqlError {
    /// New error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
        }
    }

    /// Render the error with a caret line pointing into `source`:
    ///
    /// ```text
    /// error: unknown column `prize`
    ///   SELECT prize FROM sales
    ///          ^^^^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = format!("error: {}\n  {}\n  ", self.message, source.trim_end());
        let start = self.span.start.min(source.len());
        let end = self.span.end.clamp(start + 1, source.len().max(start + 1));
        for _ in 0..start {
            out.push(' ');
        }
        for _ in start..end {
            out.push('^');
        }
        out
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at byte {}..{}",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias.
pub type SqlResult<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn render_points_at_the_fragment() {
        let src = "SELECT prize FROM t";
        let err = SqlError::new("unknown column `prize`", Span::new(7, 12));
        let rendered = err.render(src);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "error: unknown column `prize`");
        assert_eq!(lines[1], "  SELECT prize FROM t");
        assert_eq!(lines[2], "         ^^^^^");
    }

    #[test]
    fn render_clamps_out_of_range_spans() {
        let err = SqlError::new("eof", Span::new(99, 104));
        let rendered = err.render("SELECT");
        assert!(rendered.contains('^'));
    }

    #[test]
    fn display_includes_positions() {
        let err = SqlError::new("boom", Span::new(1, 4));
        assert_eq!(err.to_string(), "boom at byte 1..4");
    }
}
