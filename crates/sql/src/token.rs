//! SQL tokenizer.
//!
//! Hand-rolled single-pass lexer producing spanned tokens. Keywords are
//! case-insensitive; identifiers preserve case. Only the integer subset
//! of SQL the amnesia store speaks is accepted (the paper's tables hold
//! integers in `0..DOMAIN`).

use crate::error::{Span, SqlError, SqlResult};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Keyword (uppercased during lexing).
    Keyword(Keyword),
    /// Identifier (table/column/alias name).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// Variant names *are* the keywords they tokenize; per-variant docs
// would only repeat them.
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Between,
    Join,
    Inner,
    On,
    As,
    Group,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Explain,
}

impl Keyword {
    fn parse(upper: &str) -> Option<Keyword> {
        Some(match upper {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "BETWEEN" => Keyword::Between,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "ON" => Keyword::On,
            "AS" => Keyword::As,
            "GROUP" => Keyword::Group,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "EXPLAIN" => Keyword::Explain,
            _ => return None,
        })
    }

    /// Canonical rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::And => "AND",
            Keyword::Between => "BETWEEN",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::On => "ON",
            Keyword::As => "AS",
            Keyword::Group => "GROUP",
            Keyword::Order => "ORDER",
            Keyword::By => "BY",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::Limit => "LIMIT",
            Keyword::Count => "COUNT",
            Keyword::Sum => "SUM",
            Keyword::Avg => "AVG",
            Keyword::Min => "MIN",
            Keyword::Max => "MAX",
            Keyword::Explain => "EXPLAIN",
        }
    }
}

/// A token plus its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

/// Tokenize a statement. Errors on unknown characters and malformed
/// numbers; an empty input produces an empty vector.
pub fn tokenize(input: &str) -> SqlResult<Vec<SpannedTok>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment: skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b',' => {
                toks.push(SpannedTok {
                    tok: Tok::Comma,
                    span: Span::at(i),
                });
                i += 1;
            }
            b'(' => {
                toks.push(SpannedTok {
                    tok: Tok::LParen,
                    span: Span::at(i),
                });
                i += 1;
            }
            b')' => {
                toks.push(SpannedTok {
                    tok: Tok::RParen,
                    span: Span::at(i),
                });
                i += 1;
            }
            b'*' => {
                toks.push(SpannedTok {
                    tok: Tok::Star,
                    span: Span::at(i),
                });
                i += 1;
            }
            b'.' => {
                toks.push(SpannedTok {
                    tok: Tok::Dot,
                    span: Span::at(i),
                });
                i += 1;
            }
            b';' => {
                toks.push(SpannedTok {
                    tok: Tok::Semicolon,
                    span: Span::at(i),
                });
                i += 1;
            }
            b'=' => {
                toks.push(SpannedTok {
                    tok: Tok::Eq,
                    span: Span::at(i),
                });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Neq,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    return Err(SqlError::new("expected `!=`", Span::at(i)));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Le,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(SpannedTok {
                        tok: Tok::Neq,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Lt,
                        span: Span::at(i),
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Ge,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Gt,
                        span: Span::at(i),
                    });
                    i += 1;
                }
            }
            b'0'..=b'9' | b'-' => {
                let start = i;
                if b == b'-' {
                    i += 1;
                    if !bytes.get(i).is_some_and(u8::is_ascii_digit) {
                        return Err(SqlError::new("expected digits after `-`", Span::at(start)));
                    }
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value: i64 = text.parse().map_err(|_| {
                    SqlError::new(
                        format!("integer literal `{text}` out of range"),
                        Span::new(start, i),
                    )
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Number(value),
                    span: Span::new(start, i),
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &input[start..i];
                let upper = text.to_ascii_uppercase();
                let tok = match Keyword::parse(&upper) {
                    Some(k) => Tok::Keyword(k),
                    None => Tok::Ident(text.to_string()),
                };
                toks.push(SpannedTok {
                    tok,
                    span: Span::new(start, i),
                });
            }
            other => {
                return Err(SqlError::new(
                    format!("unexpected character `{}`", other as char),
                    Span::at(i),
                ));
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Tok> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("select FROM WhErE"),
            vec![
                Tok::Keyword(Keyword::Select),
                Tok::Keyword(Keyword::From),
                Tok::Keyword(Keyword::Where),
            ]
        );
    }

    #[test]
    fn identifiers_keep_case_and_are_distinct_from_keywords() {
        assert_eq!(
            toks("selects Sales t_1"),
            vec![
                Tok::Ident("selects".into()),
                Tok::Ident("Sales".into()),
                Tok::Ident("t_1".into()),
            ]
        );
    }

    #[test]
    fn numbers_including_negative() {
        assert_eq!(
            toks("42 -17 0"),
            vec![Tok::Number(42), Tok::Number(-17), Tok::Number(0)]
        );
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            toks("= != <> < <= > >= , ( ) * . ;"),
            vec![
                Tok::Eq,
                Tok::Neq,
                Tok::Neq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Comma,
                Tok::LParen,
                Tok::RParen,
                Tok::Star,
                Tok::Dot,
                Tok::Semicolon,
            ]
        );
    }

    #[test]
    fn spans_point_into_the_source() {
        let ts = tokenize("SELECT a").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 6));
        assert_eq!(ts[1].span, Span::new(7, 8));
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- the projection\n a"),
            vec![Tok::Keyword(Keyword::Select), Tok::Ident("a".into())]
        );
    }

    #[test]
    fn unknown_character_errors_with_position() {
        let err = tokenize("SELECT ?").unwrap_err();
        assert!(err.message.contains('?'));
        assert_eq!(err.span.start, 7);
    }

    #[test]
    fn lone_bang_is_an_error() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn dangling_minus_is_an_error() {
        assert!(tokenize("a - b").is_err());
    }

    #[test]
    fn huge_literal_is_an_error() {
        let err = tokenize("99999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("   \n\t ").unwrap().is_empty());
    }
}
